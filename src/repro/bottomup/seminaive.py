"""Naive and semi-naive bottom-up fixpoints with stratified negation.

This is the evaluation style of CORAL and LDL (section 2 of the
paper): relations are computed a *set at a time*; within each stratum
the semi-naive fixpoint joins the per-iteration delta relations
against the accumulated full relations, so no derivation is repeated.
"""

from __future__ import annotations

from ..errors import SafetyError
from .datalog import CMP, IS, REL, UNIFY, Var, compare, eval_expr, match, substitute
from .relation import Relation

__all__ = ["evaluate", "evaluate_naive", "query", "EvaluationStats"]


class EvaluationStats:
    """Counters the ablation benches report."""

    __slots__ = ("iterations", "derivations", "duplicates")

    def __init__(self):
        self.iterations = 0
        self.derivations = 0
        self.duplicates = 0

    def __repr__(self):
        return (
            f"<EvaluationStats iters={self.iterations} "
            f"derived={self.derivations} dups={self.duplicates}>"
        )


def _as_relations(facts):
    relations = {}
    for (name, arity), rows in facts.items():
        relation = Relation(name, arity)
        relation.add_many(tuple(row) for row in rows)
        relations[(name, arity)] = relation
    return relations


def _rel(relations, key):
    relation = relations.get(key)
    if relation is None:
        relation = Relation(key[0], key[1])
        relations[key] = relation
    return relation


def _bound_probe(args, bindings):
    """Split literal args into (positions, key, patterns) for a probe."""
    positions = []
    key = []
    for i, arg in enumerate(args):
        if isinstance(arg, Var):
            value = bindings.get(arg)
            if value is not None:
                positions.append(i)
                key.append(value)
        elif isinstance(arg, tuple):
            continue  # compound patterns are matched after the probe
        else:
            positions.append(i)
            key.append(arg)
    return tuple(positions), tuple(key)


def _join(rule, index, relations, delta_key, delta_rel, stats, out):
    """Evaluate ``rule`` with body literal ``index`` ranging over the
    delta relation; emit derived head tuples into ``out``.

    The delta literal is evaluated *first* (standard semi-naive
    practice: every derivation must use at least one delta tuple, so
    driving the join from the delta bounds the work by the delta's
    size); the remaining literals are then ordered greedily by
    bound-variable connectivity — the sideways join ordering a
    bottom-up optimizer performs.
    """

    body = rule.body
    if 0 <= index < len(body):
        order = _delta_order(rule, index)
    else:
        order = list(range(len(body)))

    def walk(step, bindings):
        if step == len(body):
            row = tuple(substitute(arg, bindings) for arg in rule.head_args)
            stats.derivations += 1
            out.append(row)
            return
        position = order[step]
        literal = body[position]
        kind = literal[0]
        if kind == REL:
            _, pred, args, positive = literal
            key = (pred, len(args))
            if positive:
                if position == index:
                    candidates = delta_rel
                else:
                    source = relations.get(key) or ()
                    positions, probe_key = _bound_probe(args, bindings)
                    if isinstance(source, Relation):
                        candidates = source.probe(positions, probe_key)
                    else:
                        candidates = source
                for row in candidates:
                    added = _match_args(args, row, bindings)
                    if added is None:
                        continue
                    walk(step + 1, bindings)
                    for var in added:
                        del bindings[var]
            else:
                row = tuple(substitute(arg, bindings) for arg in args)
                relation = relations.get(key)
                if relation is None or row not in relation:
                    walk(step + 1, bindings)
            return
        if kind == CMP:
            _, op, left, right = literal
            if compare(op, left, right, bindings):
                walk(step + 1, bindings)
            return
        if kind == IS:
            _, target, expr = literal
            value = eval_expr(expr, bindings)
            added = match(target, value, bindings)
            if added is not None:
                walk(step + 1, bindings)
                for var in added:
                    del bindings[var]
            return
        if kind == UNIFY:
            _, left, right = literal
            try:
                value = substitute(right, bindings)
                added = match(left, value, bindings)
            except SafetyError:
                value = substitute(left, bindings)
                added = match(right, value, bindings)
            if added is not None:
                walk(step + 1, bindings)
                for var in added:
                    del bindings[var]
            return
        raise SafetyError(f"unknown literal kind {kind}")

    walk(0, {})


def _delta_order(rule, index):
    """Join order for a delta-driven rule evaluation.

    Starts from the delta literal, then repeatedly schedules the
    earliest literal that is *ready*: positive relational literals are
    ready when they share a bound variable (or have a ground argument);
    comparisons, assignments, unifications and negations are ready once
    the variables they need are bound.  Falls back to the earliest
    unscheduled positive literal when nothing is connected.
    """
    from .datalog import pattern_vars

    body = rule.body
    bound = set()
    for arg in body[index][2]:
        bound.update(pattern_vars(arg, []))
    order = [index]
    remaining = [i for i in range(len(body)) if i != index]

    def literal_vars(literal):
        out = []
        if literal[0] == REL:
            for arg in literal[2]:
                pattern_vars(arg, out)
        else:
            for part in literal[1:]:
                pattern_vars(part, out)
        return out

    def readiness(i):
        literal = body[i]
        kind = literal[0]
        variables = literal_vars(literal)
        if kind == REL and literal[3]:
            if not variables:
                return 2
            bound_count = sum(1 for v in variables if v in bound)
            return 2 if bound_count else 0
        # negation / cmp / is / unify: conservative — for IS and UNIFY
        # one side may be defined by the literal itself, so require the
        # other side's variables only.
        if kind == IS:
            needs = literal_vars((REL, "", (literal[2],), True))
            return 3 if all(v in bound for v in needs) else -1
        if kind == UNIFY:
            left_ok = all(v in bound for v in pattern_vars(literal[1], []))
            right_ok = all(v in bound for v in pattern_vars(literal[2], []))
            return 3 if left_ok or right_ok else -1
        return 3 if all(v in bound for v in variables) else -1

    while remaining:
        chosen = None
        best = -1
        for i in remaining:
            score = readiness(i)
            if score > best:
                best = score
                chosen = i
                if score >= 3:
                    break
        if best <= 0:
            # nothing connected: take the earliest positive literal to
            # make progress (original order ties are kept by the scan)
            positives = [
                i for i in remaining if body[i][0] == REL and body[i][3]
            ]
            chosen = positives[0] if positives else remaining[0]
        order.append(chosen)
        remaining.remove(chosen)
        bound.update(literal_vars(body[chosen]))
    return order


def _match_args(args, row, bindings):
    added = []
    from .datalog import _match  # reuse the pattern matcher

    for pattern, value in zip(args, row):
        if not _match(pattern, value, bindings, added):
            for var in added:
                del bindings[var]
            return None
    return added


def evaluate(program, facts, stats=None, max_iterations=None):
    """Semi-naive evaluation; returns {(&name, arity): Relation}.

    ``facts`` maps ``(name, arity)`` to an iterable of value tuples.
    Negation is evaluated stratum by stratum (stratified semantics);
    non-stratified programs raise SafetyError — use
    :mod:`repro.bottomup.wellfounded` for those.
    """
    if stats is None:
        stats = EvaluationStats()
    relations = _as_relations(facts)
    strata = program.stratify()
    idb = program.idb_predicates
    max_stratum = max(strata.values(), default=0)

    for level in range(max_stratum + 1):
        level_preds = {
            key for key in idb if strata.get(key, 0) == level
        }
        if not level_preds:
            continue
        rules = [
            rule
            for rule in program.rules
            if (rule.head_pred, len(rule.head_args)) in level_preds
        ]
        _fixpoint(rules, level_preds, relations, stats, max_iterations)
    return relations


def _fixpoint(rules, level_preds, relations, stats, max_iterations):
    # Seed pass: every rule once with no delta restriction (treating
    # the whole current database as the delta for literal -1).
    deltas = {key: Relation(*key) for key in level_preds}
    for rule in rules:
        derived = []
        _join(rule, -1, relations, None, None, stats, derived)
        head_key = (rule.head_pred, len(rule.head_args))
        full = _rel(relations, head_key)
        for row in derived:
            if full.add(row):
                deltas[head_key].add(row)
            else:
                stats.duplicates += 1

    while any(len(d) for d in deltas.values()):
        stats.iterations += 1
        if max_iterations is not None and stats.iterations > max_iterations:
            raise SafetyError("fixpoint iteration limit exceeded")
        new_deltas = {key: Relation(*key) for key in level_preds}
        for rule in rules:
            head_key = (rule.head_pred, len(rule.head_args))
            for index, literal in enumerate(rule.body):
                if literal[0] != REL or not literal[3]:
                    continue
                body_key = (literal[1], len(literal[2]))
                delta = deltas.get(body_key)
                if delta is None or not len(delta):
                    continue
                derived = []
                _join(rule, index, relations, body_key, delta, stats, derived)
                full = _rel(relations, head_key)
                for row in derived:
                    if full.add(row):
                        new_deltas[head_key].add(row)
                    else:
                        stats.duplicates += 1
        deltas = new_deltas


def evaluate_naive(program, facts, stats=None, max_iterations=10_000):
    """Naive evaluation: re-derives everything each round (ablation)."""
    if stats is None:
        stats = EvaluationStats()
    relations = _as_relations(facts)
    strata = program.stratify()
    idb = program.idb_predicates
    max_stratum = max(strata.values(), default=0)
    for level in range(max_stratum + 1):
        rules = [
            rule
            for rule in program.rules
            if strata.get((rule.head_pred, len(rule.head_args)), 0) == level
        ]
        if not rules:
            continue
        changed = True
        while changed:
            stats.iterations += 1
            if stats.iterations > max_iterations:
                raise SafetyError("fixpoint iteration limit exceeded")
            changed = False
            for rule in rules:
                derived = []
                _join(rule, -1, relations, None, None, stats, derived)
                full = _rel(relations, (rule.head_pred, len(rule.head_args)))
                for row in derived:
                    if full.add(row):
                        changed = True
                    else:
                        stats.duplicates += 1
    return relations


def query(program, facts, goal_pred, goal_args, rewrite="magic", stats=None):
    """Goal-directed bottom-up query: rewrite, evaluate, filter.

    ``goal_args`` may contain None for free positions.  ``rewrite`` is
    ``"magic"`` (the CORAL default), ``"magic+factoring"`` (CORAL-fac)
    or ``"none"`` (evaluate the whole program).
    Returns the list of matching tuples.
    """
    from .factoring import factor_program
    from .magic import magic_rewrite

    if rewrite == "none":
        relations = evaluate(program, facts, stats=stats)
        answer_key = (goal_pred, len(goal_args))
    else:
        rewritten, answer_pred = magic_rewrite(program, goal_pred, goal_args)
        if rewrite == "magic+factoring":
            rewritten = factor_program(rewritten)
        relations = evaluate(rewritten, facts, stats=stats)
        answer_key = (answer_pred, len(goal_args))
    relation = relations.get(answer_key)
    if relation is None:
        return []
    out = []
    for row in relation:
        if all(g is None or g == v for g, v in zip(goal_args, row)):
            out.append(row)
    return out
