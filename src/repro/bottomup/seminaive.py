"""Naive and semi-naive bottom-up fixpoints with stratified negation.

This is the evaluation style of CORAL and LDL (section 2 of the
paper): relations are computed a *set at a time*; within each stratum
the semi-naive fixpoint joins the per-iteration delta relations
against the accumulated full relations, so no derivation is repeated.
"""

from __future__ import annotations

from ..errors import SafetyError
from .datalog import (
    CMP,
    IS,
    REL,
    UNIFY,
    Var,
    _match,
    compare,
    eval_expr,
    match,
    substitute,
)
from .relation import Relation

__all__ = ["evaluate", "evaluate_naive", "prepare", "query",
           "EvaluationStats", "Prepared"]


class EvaluationStats:
    """Counters the ablation benches report."""

    __slots__ = ("iterations", "derivations", "duplicates")

    def __init__(self):
        self.iterations = 0
        self.derivations = 0
        self.duplicates = 0

    def __repr__(self):
        return (
            f"<EvaluationStats iters={self.iterations} "
            f"derived={self.derivations} dups={self.duplicates}>"
        )


def _as_relations(facts):
    relations = {}
    for (name, arity), rows in facts.items():
        if isinstance(rows, Relation):
            # Prebuilt relation: adopted as-is, indexes and all.  The
            # hybrid SLG bridge caches its EDB this way so repeated
            # subgoals against one plan skip the per-call copy (and
            # keep the hash indexes built by earlier evaluations).
            relations[(name, arity)] = rows
            continue
        relation = Relation(name, arity)
        relation.add_many(tuple(row) for row in rows)
        relations[(name, arity)] = relation
    return relations


def _rel(relations, key):
    relation = relations.get(key)
    if relation is None:
        relation = Relation(key[0], key[1])
        relations[key] = relation
    return relation


def _bound_probe(args, bindings):
    """Split literal args into (positions, key, patterns) for a probe."""
    positions = []
    key = []
    for i, arg in enumerate(args):
        if isinstance(arg, Var):
            value = bindings.get(arg)
            if value is not None:
                positions.append(i)
                key.append(value)
        elif isinstance(arg, tuple):
            continue  # compound patterns are matched after the probe
        else:
            positions.append(i)
            key.append(arg)
    return tuple(positions), tuple(key)


def _join(rule, index, relations, delta_key, delta_rel, stats, out, order=None):
    """Evaluate ``rule`` with body literal ``index`` ranging over the
    delta relation; emit derived head tuples into ``out``.

    The delta literal is evaluated *first* (standard semi-naive
    practice: every derivation must use at least one delta tuple, so
    driving the join from the delta bounds the work by the delta's
    size); the remaining literals are then ordered greedily by
    bound-variable connectivity — the sideways join ordering a
    bottom-up optimizer performs.  ``order`` may carry that join order
    precomputed (it depends only on the rule and the delta position, so
    the fixpoint driver computes it once per rule instead of once per
    iteration).
    """

    body = rule.body
    if order is None:
        if 0 <= index < len(body):
            order = _delta_order(rule, index)
        else:
            order = list(range(len(body)))

    def walk(step, bindings):
        if step == len(body):
            row = tuple(substitute(arg, bindings) for arg in rule.head_args)
            stats.derivations += 1
            out.append(row)
            return
        position = order[step]
        literal = body[position]
        kind = literal[0]
        if kind == REL:
            _, pred, args, positive = literal
            key = (pred, len(args))
            if positive:
                if position == index:
                    candidates = delta_rel
                else:
                    source = relations.get(key) or ()
                    positions, probe_key = _bound_probe(args, bindings)
                    if isinstance(source, Relation):
                        candidates = source.probe(positions, probe_key)
                    else:
                        candidates = source
                for row in candidates:
                    added = _match_args(args, row, bindings)
                    if added is None:
                        continue
                    walk(step + 1, bindings)
                    for var in added:
                        del bindings[var]
            else:
                row = tuple(substitute(arg, bindings) for arg in args)
                relation = relations.get(key)
                if relation is None or row not in relation:
                    walk(step + 1, bindings)
            return
        if kind == CMP:
            _, op, left, right = literal
            if compare(op, left, right, bindings):
                walk(step + 1, bindings)
            return
        if kind == IS:
            _, target, expr = literal
            value = eval_expr(expr, bindings)
            added = match(target, value, bindings)
            if added is not None:
                walk(step + 1, bindings)
                for var in added:
                    del bindings[var]
            return
        if kind == UNIFY:
            _, left, right = literal
            try:
                value = substitute(right, bindings)
                added = match(left, value, bindings)
            except SafetyError:
                value = substitute(left, bindings)
                added = match(right, value, bindings)
            if added is not None:
                walk(step + 1, bindings)
                for var in added:
                    del bindings[var]
            return
        raise SafetyError(f"unknown literal kind {kind}")

    walk(0, {})


def _delta_order(rule, index):
    """Join order for a delta-driven rule evaluation.

    Starts from the delta literal, then repeatedly schedules the
    earliest literal that is *ready*: positive relational literals are
    ready when they share a bound variable (or have a ground argument);
    comparisons, assignments, unifications and negations are ready once
    the variables they need are bound.  Falls back to the earliest
    unscheduled positive literal when nothing is connected.
    """
    from .datalog import pattern_vars

    body = rule.body
    bound = set()
    for arg in body[index][2]:
        bound.update(pattern_vars(arg, []))
    order = [index]
    remaining = [i for i in range(len(body)) if i != index]

    def literal_vars(literal):
        out = []
        if literal[0] == REL:
            for arg in literal[2]:
                pattern_vars(arg, out)
        else:
            for part in literal[1:]:
                pattern_vars(part, out)
        return out

    def readiness(i):
        literal = body[i]
        kind = literal[0]
        variables = literal_vars(literal)
        if kind == REL and literal[3]:
            if not variables:
                return 2
            bound_count = sum(1 for v in variables if v in bound)
            return 2 if bound_count else 0
        # negation / cmp / is / unify: conservative — for IS and UNIFY
        # one side may be defined by the literal itself, so require the
        # other side's variables only.
        if kind == IS:
            needs = literal_vars((REL, "", (literal[2],), True))
            return 3 if all(v in bound for v in needs) else -1
        if kind == UNIFY:
            left_ok = all(v in bound for v in pattern_vars(literal[1], []))
            right_ok = all(v in bound for v in pattern_vars(literal[2], []))
            return 3 if left_ok or right_ok else -1
        return 3 if all(v in bound for v in variables) else -1

    while remaining:
        chosen = None
        best = -1
        for i in remaining:
            score = readiness(i)
            if score > best:
                best = score
                chosen = i
                if score >= 3:
                    break
        if best <= 0:
            # nothing connected: take the earliest positive literal to
            # make progress (original order ties are kept by the scan)
            positives = [
                i for i in remaining if body[i][0] == REL and body[i][3]
            ]
            chosen = positives[0] if positives else remaining[0]
        order.append(chosen)
        remaining.remove(chosen)
        bound.update(literal_vars(body[chosen]))
    return order


# --------------------------------------------------------------------------
# compiled join plans
# --------------------------------------------------------------------------
#
# The generic ``_join``/``walk`` interpreter pays for its generality on
# every derived tuple: dict-based bindings, recursive pattern matching,
# per-argument substitution.  For the overwhelmingly common rule shape
# — every body literal a *positive relational* literal whose arguments
# are variables or ground constants — the join can instead be compiled
# once into a specialized nested-loop function: variables become Python
# locals, index probes become precaptured dict lookups, and the head
# tuple is built by a single expression.  The hybrid SLG bridge
# (repro.engine.hybrid) only ever produces this shape, so its fixpoints
# run entirely on compiled plans; rules with negation, comparisons,
# arithmetic or compound patterns keep the generic interpreter.

def _pattern_is_open(arg):
    """True when ``arg`` is a compound pattern containing variables."""
    from .datalog import pattern_vars

    return isinstance(arg, tuple) and bool(pattern_vars(arg, []))


# The generated source depends only on the rule/order *shape* — the
# captured values (index dicts, row lists, constants) enter as factory
# parameters — so one ``exec`` per shape serves every engine in the
# process.  Compiling a plan for a rule shape seen before is then a
# dict lookup plus a function call, which keeps first-call latency low
# for workloads that build many engines over the same program.
_PLAN_FACTORIES = {}


def _compile_plan(rule, order, relations):
    """A specialized join function for ``rule`` along ``order``, or None.

    The returned function has signature ``fn(delta_rows, out_append)``
    where ``delta_rows`` ranges over the literal at ``order[0]`` and
    every derived head tuple is passed to ``out_append``.  Index dicts
    and row lists are captured from the live :class:`Relation` objects
    at compile time; ``Relation.add`` maintains them in place, so the
    captures stay current across fixpoint iterations.
    """
    body = rule.body
    for literal in body:
        if literal[0] != REL or not literal[3]:
            return None
        for arg in literal[2]:
            if _pattern_is_open(arg):
                return None
    env = {"_EMPTY": ()}
    lines = ["def _plan(delta, out_append):"]
    bound = {}  # Var -> local name
    depth = 1
    for step, position in enumerate(order):
        _, pred, args, _ = body[position]
        row = f"r{step}"
        probed = frozenset()
        if step == 0:
            lines.append(f"{'    ' * depth}for {row} in delta:")
        else:
            positions = []
            key_parts = []
            for i, arg in enumerate(args):
                if isinstance(arg, Var):
                    local = bound.get(arg)
                    if local is not None:
                        positions.append(i)
                        key_parts.append(local)
                else:
                    positions.append(i)
                    name = f"c{step}_{i}"
                    env[name] = arg
                    key_parts.append(name)
            probed = frozenset(positions)
            relation = _rel(relations, (pred, len(args)))
            if positions:
                index_name = f"idx{step}"
                env[index_name] = relation.index_for(tuple(positions))
                key = ", ".join(key_parts)
                if len(key_parts) == 1:
                    key += ","
                lines.append(
                    f"{'    ' * depth}for {row} in "
                    f"{index_name}.get(({key}), _EMPTY):"
                )
            else:
                rows_name = f"rows{step}"
                env[rows_name] = relation.rows
                lines.append(f"{'    ' * depth}for {row} in {rows_name}:")
        depth += 1
        pad = "    " * depth
        for i, arg in enumerate(args):
            if i in probed:
                continue  # equality enforced by the index key
            if isinstance(arg, Var):
                local = bound.get(arg)
                if local is None:
                    local = f"v{len(bound)}"
                    bound[arg] = local
                    lines.append(f"{pad}{local} = {row}[{i}]")
                else:
                    lines.append(f"{pad}if {row}[{i}] != {local}: continue")
            else:
                name = f"c{step}_{i}"
                env[name] = arg
                lines.append(f"{pad}if {row}[{i}] != {name}: continue")
    parts = []
    for j, arg in enumerate(rule.head_args):
        if isinstance(arg, Var):
            local = bound.get(arg)
            if local is None:
                return None  # not range-restricted along this order
            parts.append(local)
        elif _pattern_is_open(arg):
            return None  # head builds structure: interpreter territory
        else:
            name = f"h{j}"
            env[name] = arg
            parts.append(name)
    head = ", ".join(parts)
    if len(parts) == 1:
        head += ","
    lines.append(f"{'    ' * depth}out_append(({head}))")
    source = "def _make({}):\n{}\n    return _plan".format(
        ", ".join(env), "\n".join("    " + line for line in lines)
    )
    factory = _PLAN_FACTORIES.get(source)
    if factory is None:
        namespace = {}
        exec(source, namespace)  # noqa: S102 - self-generated join code
        factory = _PLAN_FACTORIES[source] = namespace["_make"]
    return factory(*env.values())


def _match_args(args, row, bindings):
    added = []
    for pattern, value in zip(args, row):
        if not _match(pattern, value, bindings, added):
            for var in added:
                del bindings[var]
            return None
    return added


def evaluate(program, facts, stats=None, max_iterations=None):
    """Semi-naive evaluation; returns {(&name, arity): Relation}.

    ``facts`` maps ``(name, arity)`` to an iterable of value tuples.
    Negation is evaluated stratum by stratum (stratified semantics);
    non-stratified programs raise SafetyError — use
    :mod:`repro.bottomup.wellfounded` for those.
    """
    if stats is None:
        stats = EvaluationStats()
    relations = _as_relations(facts)
    strata = program.stratify()
    idb = program.idb_predicates
    max_stratum = max(strata.values(), default=0)

    for level in range(max_stratum + 1):
        level_preds = {
            key for key in idb if strata.get(key, 0) == level
        }
        if not level_preds:
            continue
        rules = [
            rule
            for rule in program.rules
            if (rule.head_pred, len(rule.head_args)) in level_preds
        ]
        _fixpoint(rules, level_preds, relations, stats, max_iterations)
    return relations


def _fixpoint(rules, level_preds, relations, stats, max_iterations):
    # Deltas are plain lists of rows, not Relations: a delta is only
    # ever *iterated* (it drives the join; the other literals probe
    # full relations), and its rows are unique by construction — they
    # were just admitted by ``full.add``.  Lists keep the per-iteration
    # constant small, which matters on long thin fixpoints (a chain of
    # length N takes N rounds of one-tuple deltas).

    # Seed pass: every rule once with no delta restriction — compiled
    # along an order driven from its first literal when the rule shape
    # allows, interpreted otherwise.  Non-recursive rules (the entire
    # program, for a single-stratum join query) do all their work here.
    deltas = {}
    for rule in rules:
        derived = []
        if rule.body:
            compiled = _compile_plan(rule, _delta_order(rule, 0), relations)
        else:
            compiled = _compile_plan(rule, [], relations)
        if compiled is not None:
            if rule.body:
                first = rule.body[0]
                seed_rows = _rel(relations, (first[1], len(first[2]))).rows
            else:
                seed_rows = ((),)  # emit the bodiless head once
            compiled(seed_rows, derived.append)
            stats.derivations += len(derived)
        else:
            _join(rule, -1, relations, None, None, stats, derived)
        head_key = (rule.head_pred, len(rule.head_args))
        full = _rel(relations, head_key)
        if derived:
            delta = deltas.get(head_key)
            if delta is None:
                delta = deltas[head_key] = []
            for row in derived:
                if full.add(row):
                    delta.append(row)
                else:
                    stats.duplicates += 1

    # The per-rule work of an iteration — which body literals can range
    # over a delta, the join order starting from each, the compiled
    # join (or its interpreted fallback), the head relation — depends
    # only on the (fixed) rule set, so it is computed once here instead
    # of once per iteration.  Plans are grouped by the delta predicate
    # that drives them: a round then visits only the plans of the
    # predicates that actually changed, instead of scanning every plan
    # against every delta (on a long thin fixpoint — a chain of length
    # N is N rounds of one-tuple deltas — the scan is the round).
    plans_by_delta = {}
    for rule in rules:
        head_key = (rule.head_pred, len(rule.head_args))
        full = _rel(relations, head_key)
        for index, literal in enumerate(rule.body):
            if literal[0] != REL or not literal[3]:
                continue
            body_key = (literal[1], len(literal[2]))
            if body_key not in level_preds:
                continue  # EDB or lower stratum: never has a delta
            order = _delta_order(rule, index)
            compiled = _compile_plan(rule, order, relations)
            plans_by_delta.setdefault(body_key, []).append(
                (rule, index, order, compiled, full, head_key)
            )

    _rounds(plans_by_delta, deltas, relations, stats, max_iterations)


def _rounds(plans_by_delta, deltas, relations, stats, max_iterations=None):
    # Empty deltas are dropped rather than stored, so the loop guard,
    # the plan-group lookups and the round's bookkeeping all scale
    # with the number of predicates that actually changed.
    deltas = {key: rows for key, rows in deltas.items() if rows}
    while deltas:
        stats.iterations += 1
        if max_iterations is not None and stats.iterations > max_iterations:
            raise SafetyError("fixpoint iteration limit exceeded")
        new_deltas = {}
        for body_key, delta in deltas.items():
            for rule, index, order, compiled, full, head_key in \
                    plans_by_delta.get(body_key, ()):
                derived = []
                if compiled is not None:
                    compiled(delta, derived.append)
                    stats.derivations += len(derived)
                else:
                    _join(rule, index, relations, body_key, delta, stats,
                          derived, order=order)
                if derived:
                    head_delta = new_deltas.get(head_key)
                    for row in derived:
                        if full.add(row):
                            if head_delta is None:
                                head_delta = new_deltas[head_key] = []
                            head_delta.append(row)
                        else:
                            stats.duplicates += 1
        deltas = new_deltas


class Prepared:
    """One definite program's semi-naive fixpoint, compiled for reruns.

    :func:`evaluate` pays per call for work that depends only on the
    program: join orders, compiled plans, the relation objects the
    plans capture.  For a caller that evaluates the *same* program many
    times with only small seed relations changing — the hybrid SLG
    bridge runs one magic-rewritten program per new subgoal of an
    adornment — :func:`prepare` does all of that once; :meth:`run` then
    clears the derived relations in place (the compiled plans keep
    their captured index dicts), installs the seed tuples and runs the
    seed pass plus delta rounds.

    Restrictions, checked by :func:`prepare`: no negative literals (a
    single stratum is assumed) and no base facts for rule-defined
    predicates (derived relations are cleared between runs, so initial
    IDB tuples would not survive).
    """

    __slots__ = ("relations", "_derived", "_seed_plans", "_plans_by_delta")

    def __init__(self, relations, derived, seed_plans, plans_by_delta):
        self.relations = relations
        self._derived = derived
        self._seed_plans = seed_plans
        self._plans_by_delta = plans_by_delta

    def run(self, seed_facts, stats=None):
        """Evaluate with ``seed_facts`` ({(name, arity): rows}) added.

        Returns the relations dict; derived relations in it are reused
        (and emptied) by the next :meth:`run`, so callers must copy any
        rows they keep.
        """
        if stats is None:
            stats = EvaluationStats()
        relations = self.relations
        for relation in self._derived:
            relation.clear()
        deltas = {}
        for key, rows in seed_facts.items():
            full = relations.get(key)
            if full is None:
                # A seed for a predicate no rule mentions: inert, but
                # it must still be cleared on the next run.
                full = relations[key] = Relation(key[0], key[1])
                self._derived.append(full)
            delta = [row for row in rows if full.add(row)]
            if delta:
                deltas[key] = delta
        for rule, compiled, seed_key, full, head_key in self._seed_plans:
            derived = []
            if compiled is not None:
                rows = relations[seed_key].rows if seed_key else ((),)
                compiled(rows, derived.append)
                stats.derivations += len(derived)
            else:
                _join(rule, -1, relations, None, None, stats, derived)
            if derived:
                delta = deltas.get(head_key)
                if delta is None:
                    delta = deltas[head_key] = []
                for row in derived:
                    if full.add(row):
                        delta.append(row)
                    else:
                        stats.duplicates += 1
        _rounds(self._plans_by_delta, deltas, relations, stats)
        return relations


def prepare(program, facts):
    """Compile ``program`` into a :class:`Prepared` fixpoint.

    ``facts`` maps ``(name, arity)`` to rows or prebuilt
    :class:`Relation` objects; prebuilt relations are adopted and
    shared (never cleared), exactly as in :func:`evaluate`.
    """
    relations = _as_relations(facts)
    base_keys = set(relations)
    derived = []

    def _derived_rel(key):
        relation = relations.get(key)
        if relation is None:
            relation = relations[key] = Relation(key[0], key[1])
            if key not in base_keys:
                derived.append(relation)
        return relation

    head_keys = set()
    for rule in program.rules:
        head_key = (rule.head_pred, len(rule.head_args))
        if head_key in base_keys:
            raise SafetyError(
                f"prepared program derives into base relation {head_key}"
            )
        head_keys.add(head_key)
        _derived_rel(head_key)
        for literal in rule.body:
            if literal[0] != REL:
                continue
            if not literal[3]:
                raise SafetyError("prepared evaluation requires a definite program")
            _derived_rel((literal[1], len(literal[2])))

    seed_plans = []
    plans_by_delta = {}
    for rule in program.rules:
        head_key = (rule.head_pred, len(rule.head_args))
        full = relations[head_key]
        if rule.body:
            seed_compiled = _compile_plan(rule, _delta_order(rule, 0), relations)
            first = rule.body[0]
            seed_key = (first[1], len(first[2]))
        else:
            seed_compiled = _compile_plan(rule, [], relations)
            seed_key = None
        seed_plans.append((rule, seed_compiled, seed_key, full, head_key))
        for index, literal in enumerate(rule.body):
            if literal[0] != REL:
                continue
            body_key = (literal[1], len(literal[2]))
            if body_key not in head_keys and body_key in base_keys:
                continue  # pure EDB: never has a delta
            order = _delta_order(rule, index)
            compiled = _compile_plan(rule, order, relations)
            plans_by_delta.setdefault(body_key, []).append(
                (rule, index, order, compiled, full, head_key)
            )
    return Prepared(relations, derived, seed_plans, plans_by_delta)


def evaluate_naive(program, facts, stats=None, max_iterations=10_000):
    """Naive evaluation: re-derives everything each round (ablation)."""
    if stats is None:
        stats = EvaluationStats()
    relations = _as_relations(facts)
    strata = program.stratify()
    idb = program.idb_predicates
    max_stratum = max(strata.values(), default=0)
    for level in range(max_stratum + 1):
        rules = [
            rule
            for rule in program.rules
            if strata.get((rule.head_pred, len(rule.head_args)), 0) == level
        ]
        if not rules:
            continue
        changed = True
        while changed:
            stats.iterations += 1
            if stats.iterations > max_iterations:
                raise SafetyError("fixpoint iteration limit exceeded")
            changed = False
            for rule in rules:
                derived = []
                _join(rule, -1, relations, None, None, stats, derived)
                full = _rel(relations, (rule.head_pred, len(rule.head_args)))
                for row in derived:
                    if full.add(row):
                        changed = True
                    else:
                        stats.duplicates += 1
    return relations


def query(program, facts, goal_pred, goal_args, rewrite="magic", stats=None):
    """Goal-directed bottom-up query: rewrite, evaluate, filter.

    ``goal_args`` may contain None for free positions.  ``rewrite`` is
    ``"magic"`` (the CORAL default), ``"magic+factoring"`` (CORAL-fac)
    or ``"none"`` (evaluate the whole program).
    Returns the list of matching tuples.
    """
    from .factoring import factor_program
    from .magic import magic_rewrite

    if rewrite == "none":
        relations = evaluate(program, facts, stats=stats)
        answer_key = (goal_pred, len(goal_args))
    else:
        rewritten, answer_pred = magic_rewrite(program, goal_pred, goal_args)
        if rewrite == "magic+factoring":
            rewritten = factor_program(rewritten)
        relations = evaluate(rewritten, facts, stats=stats)
        answer_key = (answer_pred, len(goal_args))
    relation = relations.get(answer_key)
    if relation is None:
        return []
    out = []
    for row in relation:
        if all(g is None or g == v for g, v in zip(goal_args, row)):
            out.append(row)
    return out
