"""Magic-sets rewriting with adornments (the CORAL/LDL/Aditi approach).

The rewrite makes bottom-up evaluation goal-directed: for a query
``p(c, X)`` the program is specialized to the adorned predicate
``p__bf`` guarded by a magic predicate ``m_p__bf`` holding the bound
argument values that are actually demanded.  Sideways information
passing is left-to-right, matching both the paper's SLG selection
order and CORAL's default.

Seki's result cited in section 2 — that QSQR-style top-down and
Alexander/magic-templates bottom-up are asymptotically equivalent on
definite programs — is what makes this the fair comparator for SLG:
the magic facts correspond to SLG's tabled subgoals, and the adorned
answers to SLG's answer clauses.  The constant factors between the two
are exactly what figure 5 measures.
"""

from __future__ import annotations

from ..analysis.adorn import adorned_name, adornment_of, magic_name  # noqa: F401
from ..errors import SafetyError
from .datalog import IS, REL, UNIFY, Program, Rule, pattern_vars

# The adornment vocabulary lives in repro.analysis.adorn (the registry
# reports mode summaries in the same notation); re-exported here for
# the rewrite's callers.
__all__ = ["magic_rewrite", "adornment_of", "adorned_name", "magic_name"]


def _literal_vars(args):
    out = []
    for arg in args:
        pattern_vars(arg, out)
    return out


def magic_rewrite(program, goal_pred, goal_args):
    """Rewrite ``program`` for the query ``goal_pred(goal_args)``.

    ``goal_args`` uses None for free positions and constants for bound
    ones.  Returns ``(rewritten_program, answer_predicate_name)``; the
    rewritten program contains the magic seed as a bodyless rule.
    """
    idb = program.idb_predicates
    goal_key = (goal_pred, len(goal_args))
    if goal_key not in idb:
        raise SafetyError(f"query predicate {goal_key} has no rules")

    root_adornment = adornment_of(goal_args)
    out_rules = []
    done = set()
    worklist = [(goal_pred, len(goal_args), root_adornment)]

    while worklist:
        pred, arity, adornment = worklist.pop()
        if (pred, arity, adornment) in done:
            continue
        done.add((pred, arity, adornment))
        for rule in program.rules_for(pred, arity):
            out_rules.extend(
                _adorn_rule(rule, adornment, idb, worklist)
            )

    # Magic seed: the bound constants of the query.
    bound_args = tuple(a for a in goal_args if a is not None)
    seed = Rule(magic_name(goal_pred, root_adornment), bound_args, [])
    out_rules.append(seed)
    rewritten = Program(out_rules, check_safety=False)
    return rewritten, adorned_name(goal_pred, root_adornment)


def _adorn_rule(rule, adornment, idb, worklist):
    """Adorn one rule; returns the guarded rule plus its magic rules."""
    head_args = rule.head_args
    bound = set()
    for arg, b in zip(head_args, adornment):
        if b == "b":
            bound.update(pattern_vars(arg, []))

    head_bound_args = tuple(
        arg for arg, b in zip(head_args, adornment) if b == "b"
    )
    magic_head = (REL, magic_name(rule.head_pred, adornment), head_bound_args, True)

    new_body = [magic_head]
    magic_rules = []
    for literal in rule.body:
        kind = literal[0]
        if kind == REL:
            _, pred, args, positive = literal
            key = (pred, len(args))
            if key in idb:
                sub_adornment = "".join(
                    "b" if set(_literal_vars((arg,))) <= bound and not _has_free_part(arg, bound)
                    else "f"
                    for arg in args
                )
                sub_adornment = _constant_bound(args, sub_adornment)
                worklist.append((pred, len(args), sub_adornment))
                # magic rule: demand for the subgoal from the prefix
                sub_bound_args = tuple(
                    arg
                    for arg, b in zip(args, sub_adornment)
                    if b == "b"
                )
                magic_rules.append(
                    Rule(
                        magic_name(pred, sub_adornment),
                        sub_bound_args,
                        list(new_body),
                    )
                )
                new_body.append(
                    (REL, adorned_name(pred, sub_adornment), args, positive)
                )
            else:
                new_body.append(literal)
            if positive:
                bound.update(_literal_vars(args))
        elif kind == IS:
            _, target, expr = literal
            new_body.append(literal)
            bound.update(pattern_vars(target, []))
        elif kind == UNIFY:
            _, left, right = literal
            new_body.append(literal)
            bound.update(pattern_vars(left, []))
            bound.update(pattern_vars(right, []))
        else:
            new_body.append(literal)

    guarded = Rule(
        adorned_name(rule.head_pred, adornment), head_args, new_body
    )
    return magic_rules + [guarded]


def _has_free_part(arg, bound):
    """True when the pattern contains any variable not yet bound."""
    return any(v not in bound for v in pattern_vars(arg, []))


def _constant_bound(args, adornment):
    """Constants are always bound, whatever the variable analysis said."""
    out = []
    for arg, b in zip(args, adornment):
        if not pattern_vars(arg, []):
            out.append("b")
        else:
            out.append(b)
    return "".join(out)
