"""The factoring optimization (Naughton, Ramakrishnan, Sagiv, Ullman).

Section 5 of the paper benchmarks CORAL both with default settings and
with "the factoring option [10] turned on" (the CORAL-fac line of
figure 5).  Factoring notices that in a magic-rewritten linear
recursion such as::

    path__bf(X,Y) :- m_path__bf(X), edge(X,Y).
    path__bf(X,Y) :- m_path__bf(X), path__bf(X,Z), edge(Z,Y).

the bound argument ``X`` is invariant through the recursion: every
tuple of ``path__bf`` carries the same demanded constants around, so
the binary recursion can be *factored* into a unary one::

    path_f(Y) :- m_path__bf(X), edge(X,Y).
    path_f(Y) :- path_f(Z), edge(Z,Y).
    path__bf(X,Y) :- m_path__bf(X), path_f(Y).

``factor_program`` applies this rewrite to every adorned predicate for
which the invariance conditions hold; programs where they do not are
returned unchanged (factoring does not always apply, and can be
incorrect when it does not — we only fire on the proven pattern).
"""

from __future__ import annotations

from .datalog import REL, Program, Rule, Var, pattern_vars

__all__ = ["factor_program", "factored_name"]


def factored_name(pred):
    return f"{pred}__fac"


def _split_magic(rule):
    """Return (magic_literal, rest) when the body starts with a magic
    guard, else (None, body)."""
    if rule.body and rule.body[0][0] == REL and rule.body[0][1].startswith("m_"):
        return rule.body[0], rule.body[1:]
    return None, rule.body


def _factorable(pred, arity, rules):
    """Check the invariance conditions for one adorned predicate.

    Conditions (a conservative instance of NRSU factoring):
    * every rule is guarded by the same magic predicate whose arguments
      are distinct variables equal to the head's bound arguments;
    * in recursive rules, the recursive literal's bound arguments are
      exactly the head's bound arguments (the binding is invariant);
    * the bound head variables do not occur anywhere else in recursive
      rules (so dropping them is safe).
    """
    bound_positions = None
    for rule in rules:
        magic, rest = _split_magic(rule)
        if magic is None:
            return None
        magic_vars = list(magic[2])
        if not all(isinstance(v, Var) for v in magic_vars):
            return None
        positions = []
        for v in magic_vars:
            try:
                positions.append(rule.head_args.index(v))
            except ValueError:
                return None
        if bound_positions is None:
            bound_positions = positions
        elif bound_positions != positions:
            return None
        recursive = [
            lit
            for lit in rest
            if lit[0] == REL and lit[1] == pred and len(lit[2]) == arity
        ]
        for lit in recursive:
            if not lit[3]:
                return None
            for p, v in zip(positions, magic_vars):
                if lit[2][p] is not v:
                    return None
        if recursive:
            # invariant vars must not appear outside magic + recursion
            used_elsewhere = []
            for lit in rest:
                if lit[0] == REL and lit[1] == pred:
                    free_args = [
                        a
                        for i, a in enumerate(lit[2])
                        if i not in positions
                    ]
                    for arg in free_args:
                        pattern_vars(arg, used_elsewhere)
                else:
                    for arg in _literal_patterns(lit):
                        pattern_vars(arg, used_elsewhere)
            if any(v in used_elsewhere for v in magic_vars):
                return None
    return bound_positions


def _literal_patterns(literal):
    kind = literal[0]
    if kind == REL:
        return literal[2]
    return literal[1:]


def factor_program(program):
    """Apply factoring wherever the conditions hold."""
    by_pred = {}
    for rule in program.rules:
        by_pred.setdefault((rule.head_pred, len(rule.head_args)), []).append(rule)

    out = []
    for (pred, arity), rules in by_pred.items():
        if not _is_adorned(pred):
            out.extend(rules)
            continue
        has_recursion = any(
            any(
                lit[0] == REL and lit[1] == pred and len(lit[2]) == arity
                for lit in rule.body
            )
            for rule in rules
        )
        if not has_recursion:
            out.extend(rules)
            continue
        positions = _factorable(pred, arity, rules)
        if positions is None:
            out.extend(rules)
            continue
        out.extend(_factor(pred, arity, rules, positions))
    return Program(out, check_safety=False)


def _is_adorned(pred):
    return "__" in pred and not pred.startswith("m_")


def _factor(pred, arity, rules, bound_positions):
    free_positions = [i for i in range(arity) if i not in bound_positions]
    fac = factored_name(pred)
    out = []
    answer_vars = [Var(f"A{i}") for i in range(arity)]
    magic_pred = None
    for rule in rules:
        magic, rest = _split_magic(rule)
        magic_pred = magic[1]
        free_head = tuple(rule.head_args[i] for i in free_positions)
        new_body = []
        recursive_present = False
        for lit in rest:
            if lit[0] == REL and lit[1] == pred and len(lit[2]) == arity:
                recursive_present = True
                new_body.append(
                    (
                        REL,
                        fac,
                        tuple(lit[2][i] for i in free_positions),
                        lit[3],
                    )
                )
            else:
                new_body.append(lit)
        if recursive_present:
            out.append(Rule(fac, free_head, new_body))
        else:
            # base rules keep the magic guard (it binds the invariants)
            out.append(Rule(fac, free_head, [magic] + new_body))
    # answer rule reassembles the original adorned predicate
    head_args = list(answer_vars)
    magic_args = tuple(answer_vars[i] for i in bound_positions)
    fac_args = tuple(answer_vars[i] for i in free_positions)
    out.append(
        Rule(
            pred,
            tuple(head_args),
            [
                (REL, magic_pred, magic_args, True),
                (REL, fac, fac_args, True),
            ],
        )
    )
    return out
