"""The alternating fixpoint for the well-founded semantics (van Gelder).

Used two ways in this reproduction:

* as the bottom-up comparator for non-stratified programs (Glue-Nail
  evaluates well-founded programs with "an alternating fixpoint
  tailored to magic programs" [Morishita 93], cited in section 5);
* as the oracle the SLG-with-delaying interpreter
  (:mod:`repro.engine.wfs`) is tested against.

The computation runs over the *ground instantiation* of the program,
obtained by evaluating rule bodies against an overestimate of the
derivable facts (negation ignored), which keeps grounding relevant
rather than enumerating the full Herbrand base.
"""

from __future__ import annotations

from ..errors import SafetyError
from .datalog import CMP, IS, REL, UNIFY, Program, Rule, compare, eval_expr, match, substitute
from .seminaive import evaluate

__all__ = ["ground_program", "alternating_fixpoint", "well_founded_model"]


def _strip_negation(program):
    """A definite overestimate: drop negative literals entirely."""
    rules = []
    for rule in program.rules:
        body = [
            literal
            for literal in rule.body
            if literal[0] != REL or literal[3]
        ]
        rules.append(Rule(rule.head_pred, rule.head_args, body))
    return Program(rules, check_safety=False)


def ground_program(program, facts):
    """Relevant ground instances: (head, [pos atoms], [neg atoms]).

    Atoms are ``(pred, args)`` pairs.  Rules are instantiated against
    the definite overestimate of the program, so only instances whose
    positive part is potentially derivable are produced.
    """
    overestimate = evaluate(_strip_negation(program), facts)
    ground_rules = []

    for rule in program.rules:
        _instantiate(rule, overestimate, ground_rules)
    # EDB facts become bodyless ground rules.
    for (name, arity), rows in facts.items():
        for row in rows:
            ground_rules.append(((name, tuple(row)), [], []))
    return ground_rules


def _instantiate(rule, relations, out):
    body = rule.body

    def walk(position, bindings, pos_atoms, neg_atoms):
        if position == len(body):
            head = (
                rule.head_pred,
                tuple(substitute(a, bindings) for a in rule.head_args),
            )
            out.append((head, list(pos_atoms), list(neg_atoms)))
            return
        literal = body[position]
        kind = literal[0]
        if kind == REL:
            _, pred, args, positive = literal
            relation = relations.get((pred, len(args)))
            if positive:
                rows = relation if relation is not None else ()
                for row in rows:
                    added = []
                    ok = True
                    for pattern, value in zip(args, row):
                        sub = match(pattern, value, bindings)
                        if sub is None:
                            ok = False
                            break
                        added.extend(sub)
                    if ok:
                        pos_atoms.append((pred, row))
                        walk(position + 1, bindings, pos_atoms, neg_atoms)
                        pos_atoms.pop()
                    for var in added:
                        bindings.pop(var, None)
            else:
                row = tuple(substitute(a, bindings) for a in args)
                # Only keep the negative condition when the atom is
                # possibly derivable; otherwise it is trivially true.
                if relation is not None and row in relation:
                    neg_atoms.append((pred, row))
                    walk(position + 1, bindings, pos_atoms, neg_atoms)
                    neg_atoms.pop()
                else:
                    walk(position + 1, bindings, pos_atoms, neg_atoms)
            return
        if kind == CMP:
            _, op, left, right = literal
            if compare(op, left, right, bindings):
                walk(position + 1, bindings, pos_atoms, neg_atoms)
            return
        if kind == IS:
            _, target, expr = literal
            added = match(target, eval_expr(expr, bindings), bindings)
            if added is not None:
                walk(position + 1, bindings, pos_atoms, neg_atoms)
                for var in added:
                    del bindings[var]
            return
        if kind == UNIFY:
            _, left, right = literal
            try:
                value = substitute(right, bindings)
                added = match(left, value, bindings)
            except SafetyError:
                value = substitute(left, bindings)
                added = match(right, value, bindings)
            if added is not None:
                walk(position + 1, bindings, pos_atoms, neg_atoms)
                for var in added:
                    del bindings[var]
            return

    walk(0, {}, [], [])


def _least_model(ground_rules, false_oracle):
    """Least fixpoint treating ¬q as true iff false_oracle(q)."""
    derived = set()
    changed = True
    # simple semi-naive-ish loop over ground rules
    while changed:
        changed = False
        for head, pos, neg in ground_rules:
            if head in derived:
                continue
            if all(p in derived for p in pos) and all(
                false_oracle(n) for n in neg
            ):
                derived.add(head)
                changed = True
    return derived


def alternating_fixpoint(ground_rules):
    """Compute the well-founded model of a ground program.

    Returns ``(true_atoms, undefined_atoms)``; everything else in the
    heads' atom space is false.
    """
    true_set = set()
    while True:
        # Overestimate of the derivable atoms, assuming only the
        # currently-known-true atoms cannot be negated away ...
        possible = _least_model(
            ground_rules, lambda q, t=frozenset(true_set): q not in t
        )
        # ... then the underestimate of the true atoms against it.
        new_true = _least_model(
            ground_rules, lambda q, p=frozenset(possible): q not in p
        )
        if new_true == true_set:
            undefined = possible - true_set
            return true_set, undefined
        true_set = new_true


def well_founded_model(program, facts):
    """Convenience wrapper: ground then alternate.

    Returns ``(true, undefined)`` atom sets.
    """
    ground_rules = ground_program(program, facts)
    return alternating_fixpoint(ground_rules)
