"""Rule representation for the bottom-up engine.

Rules are first-order Horn clauses with negation and arithmetic,
represented over frozen Python data (see
:mod:`repro.bottomup.relation`): constants are ints/floats/strings,
compounds are tuples ``(functor, args...)``, and variables are
:class:`Var` instances scoped to their rule.

``parse_program`` reads ordinary Prolog syntax through the front end
in :mod:`repro.lang`, so benchmark programs can be written once and fed
both to the tuple-at-a-time engine and to this set-at-a-time engine.
"""

from __future__ import annotations

from ..errors import SafetyError, TypeError_
from ..lang.parser import parse_terms
from ..terms import Atom, Struct
from ..terms import Var as TermVar
from ..terms import deref

__all__ = [
    "Var",
    "Rule",
    "Program",
    "atom",
    "struct",
    "parse_program",
    "pattern_vars",
    "match",
    "substitute",
    "eval_expr",
]

REL = "rel"
CMP = "cmp"
IS = "is"
UNIFY = "unify"

_COMPARE_OPS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}

_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "/": lambda a, b: a / b,
    "mod": lambda a, b: a % b,
}


class Var:
    """A rule variable (identity-scoped)."""

    __slots__ = ("name",)

    def __init__(self, name="_"):
        self.name = name

    def __repr__(self):
        return self.name


def atom(name):
    """Constants are plain strings in the bottom-up value domain."""
    return name


def struct(functor, *args):
    return (functor, *args)


class Rule:
    """``head :- body`` with body literals of four kinds.

    * ``(REL, pred, args, positive)`` — a relational literal;
    * ``(CMP, op, left, right)`` — arithmetic comparison;
    * ``(IS, target, expr)`` — arithmetic assignment;
    * ``(UNIFY, left, right)`` — explicit unification/construction.
    """

    __slots__ = ("head_pred", "head_args", "body")

    def __init__(self, head_pred, head_args, body):
        self.head_pred = head_pred
        self.head_args = tuple(head_args)
        self.body = list(body)

    @property
    def indicator(self):
        return f"{self.head_pred}/{len(self.head_args)}"

    def rel_literals(self):
        return [lit for lit in self.body if lit[0] == REL]

    def __repr__(self):
        return f"<Rule {self.indicator} :- {len(self.body)} literals>"


class Program:
    """A list of rules plus derived metadata."""

    def __init__(self, rules, check_safety=True):
        self.rules = list(rules)
        if check_safety:
            for rule in self.rules:
                check_rule_safety(rule)

    @property
    def idb_predicates(self):
        return {(r.head_pred, len(r.head_args)) for r in self.rules}

    def rules_for(self, pred, arity):
        return [
            r
            for r in self.rules
            if r.head_pred == pred and len(r.head_args) == arity
        ]

    def dependency_graph(self):
        """Edges head -> (callee, negative?) over IDB predicates."""
        idb = self.idb_predicates
        edges = {}
        for rule in self.rules:
            key = (rule.head_pred, len(rule.head_args))
            deps = edges.setdefault(key, set())
            for literal in rule.body:
                if literal[0] != REL:
                    continue
                _, pred, args, positive = literal
                callee = (pred, len(args))
                if callee in idb:
                    deps.add((callee, not positive))
        return edges

    def stratify(self):
        """Assign strata; raises SafetyError when not stratified.

        Returns {pred_key: stratum}; a predicate's stratum is strictly
        above any predicate it depends on negatively.
        """
        edges = self.dependency_graph()
        keys = set(edges)
        for deps in edges.values():
            keys.update(callee for callee, _ in deps)
        strata = {key: 0 for key in keys}
        changed = True
        rounds = 0
        limit = len(keys) * len(keys) + len(keys) + 1
        while changed:
            changed = False
            rounds += 1
            if rounds > limit:
                raise SafetyError("program is not stratified")
            for key, deps in edges.items():
                for callee, negative in deps:
                    needed = strata[callee] + (1 if negative else 0)
                    if strata[key] < needed:
                        strata[key] = needed
                        changed = True
        return strata

    def __len__(self):
        return len(self.rules)


# --------------------------------------------------------------------------
# matching / substitution / arithmetic over frozen values
# --------------------------------------------------------------------------

def pattern_vars(pattern, out=None):
    if out is None:
        out = []
    if isinstance(pattern, Var):
        if pattern not in out:
            out.append(pattern)
    elif isinstance(pattern, tuple):
        for arg in pattern[1:]:
            pattern_vars(arg, out)
    return out


def match(pattern, value, bindings):
    """Match a pattern against a ground value, extending ``bindings``.

    Returns the list of variables newly bound (for undo), or None on
    mismatch — in which case the caller must not reuse ``bindings``
    without undoing (the helper undoes for you).
    """
    added = []
    if _match(pattern, value, bindings, added):
        return added
    for var in added:
        del bindings[var]
    return None


def _match(pattern, value, bindings, added):
    if isinstance(pattern, Var):
        bound = bindings.get(pattern, _UNSET)
        if bound is _UNSET:
            bindings[pattern] = value
            added.append(pattern)
            return True
        return bound == value
    if isinstance(pattern, tuple):
        if (
            not isinstance(value, tuple)
            or len(value) != len(pattern)
            or value[0] != pattern[0]
        ):
            return False
        for p, v in zip(pattern[1:], value[1:]):
            if not _match(p, v, bindings, added):
                return False
        return True
    return pattern == value and type(pattern) is type(value)


_UNSET = object()


def substitute(pattern, bindings):
    """Instantiate a pattern; raises if a variable is unbound."""
    if isinstance(pattern, Var):
        value = bindings.get(pattern, _UNSET)
        if value is _UNSET:
            raise SafetyError(f"unbound variable {pattern} in head or negation")
        return value
    if isinstance(pattern, tuple):
        return (pattern[0],) + tuple(
            substitute(arg, bindings) for arg in pattern[1:]
        )
    return pattern


def eval_expr(expr, bindings):
    """Arithmetic over patterns: numbers, bound vars, binary operators."""
    if isinstance(expr, (int, float)):
        return expr
    if isinstance(expr, Var):
        value = bindings.get(expr, _UNSET)
        if value is _UNSET or not isinstance(value, (int, float)):
            raise SafetyError(f"arithmetic on unbound/non-numeric {expr}")
        return value
    if isinstance(expr, tuple) and len(expr) == 3 and expr[0] in _ARITH_OPS:
        return _ARITH_OPS[expr[0]](
            eval_expr(expr[1], bindings), eval_expr(expr[2], bindings)
        )
    if isinstance(expr, tuple) and len(expr) == 2 and expr[0] == "-":
        return -eval_expr(expr[1], bindings)
    raise TypeError_("arithmetic expression", expr)


def compare(op, left, right, bindings):
    return _COMPARE_OPS[op](eval_expr(left, bindings), eval_expr(right, bindings))


# --------------------------------------------------------------------------
# safety (range restriction)
# --------------------------------------------------------------------------

def check_rule_safety(rule):
    """Left-to-right range restriction: every head variable, negated
    literal variable and comparison variable must be bound by an
    earlier positive relational literal (or IS/UNIFY definition)."""
    bound = set()
    for literal in rule.body:
        kind = literal[0]
        if kind == REL:
            _, _, args, positive = literal
            if positive:
                for var in pattern_vars(list_args(args)):
                    bound.add(var)
            else:
                for var in pattern_vars(list_args(args)):
                    if var not in bound:
                        raise SafetyError(
                            f"unsafe negation in {rule.indicator}: {var}"
                        )
        elif kind == CMP:
            _, _, left, right = literal
            for var in pattern_vars(left) + pattern_vars(right):
                if var not in bound:
                    raise SafetyError(
                        f"unsafe comparison in {rule.indicator}: {var}"
                    )
        elif kind == IS:
            _, target, expr = literal
            for var in pattern_vars(expr):
                if var not in bound:
                    raise SafetyError(
                        f"unsafe arithmetic in {rule.indicator}: {var}"
                    )
            for var in pattern_vars(target):
                bound.add(var)
        elif kind == UNIFY:
            _, left, right = literal
            left_vars = set(pattern_vars(left))
            right_vars = set(pattern_vars(right))
            if right_vars <= bound:
                bound |= left_vars
            elif left_vars <= bound:
                bound |= right_vars
            else:
                raise SafetyError(f"unsafe unification in {rule.indicator}")
    for var in pattern_vars(list_args(rule.head_args)):
        if var not in bound:
            raise SafetyError(
                f"rule for {rule.indicator} is not range-restricted: {var}"
            )


def list_args(args):
    """Wrap an argument tuple so pattern_vars can walk it."""
    return ("$args",) + tuple(args)


# --------------------------------------------------------------------------
# parsing from Prolog syntax
# --------------------------------------------------------------------------

def _term_to_pattern(term, varmap):
    term = deref(term)
    if isinstance(term, TermVar):
        var = varmap.get(id(term))
        if var is None:
            var = Var(term.name or f"V{len(varmap)}")
            varmap[id(term)] = var
        return var
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Struct):
        return (term.name,) + tuple(
            _term_to_pattern(a, varmap) for a in term.args
        )
    return term


def _literal(term, varmap, out, positive=True):
    term = deref(term)
    if isinstance(term, Struct) and term.name == "," and len(term.args) == 2:
        _literal(term.args[0], varmap, out, positive)
        _literal(term.args[1], varmap, out, positive)
        return
    if (
        isinstance(term, Struct)
        and term.name in ("\\+", "not", "tnot", "e_tnot")
        and len(term.args) == 1
    ):
        _literal(term.args[0], varmap, out, positive=not positive)
        return
    if isinstance(term, Struct) and term.name in _COMPARE_OPS and len(term.args) == 2:
        out.append(
            (
                CMP,
                term.name,
                _term_to_pattern(term.args[0], varmap),
                _term_to_pattern(term.args[1], varmap),
            )
        )
        return
    if isinstance(term, Struct) and term.name == "is" and len(term.args) == 2:
        out.append(
            (
                IS,
                _term_to_pattern(term.args[0], varmap),
                _term_to_pattern(term.args[1], varmap),
            )
        )
        return
    if isinstance(term, Struct) and term.name == "=" and len(term.args) == 2:
        out.append(
            (
                UNIFY,
                _term_to_pattern(term.args[0], varmap),
                _term_to_pattern(term.args[1], varmap),
            )
        )
        return
    if isinstance(term, Struct):
        out.append(
            (
                REL,
                term.name,
                tuple(_term_to_pattern(a, varmap) for a in term.args),
                positive,
            )
        )
        return
    if isinstance(term, Atom):
        out.append((REL, term.name, (), positive))
        return
    raise TypeError_("datalog literal", term)


def parse_program(text, check_safety=True):
    """Parse Prolog-syntax text into (Program, facts).

    Ground clauses without bodies become facts: a dict mapping
    ``(name, arity)`` to a list of value tuples.  Everything else
    becomes a rule.  Directives are ignored (the bottom-up engine needs
    no tabling or indexing declarations).
    """
    rules = []
    facts = {}
    for term in parse_terms(text):
        term = deref(term)
        if isinstance(term, Struct) and term.name == ":-" and len(term.args) == 1:
            continue  # directives are irrelevant bottom-up
        varmap = {}
        if isinstance(term, Struct) and term.name == ":-" and len(term.args) == 2:
            head = deref(term.args[0])
            body = []
            _literal(term.args[1], varmap, body)
        else:
            head = term
            body = []
        if isinstance(head, Atom):
            head_pred, head_args = head.name, ()
        elif isinstance(head, Struct):
            head_pred = head.name
            head_args = tuple(_term_to_pattern(a, varmap) for a in head.args)
        else:
            raise TypeError_("clause head", head)
        if not body and not pattern_vars(list_args(head_args)):
            facts.setdefault((head_pred, len(head_args)), []).append(head_args)
        else:
            rules.append(Rule(head_pred, head_args, body))
    return Program(rules, check_safety=check_safety), facts
