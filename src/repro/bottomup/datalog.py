"""Rule representation for the bottom-up engine.

Rules are first-order Horn clauses with negation and arithmetic in the
shared analysis IR (:mod:`repro.analysis.ir`): constants are frozen
Python data (see :mod:`repro.bottomup.relation`) — ints/floats/strings,
compounds are tuples ``(functor, args...)`` — and variables are
:class:`Var` instances scoped to their rule.  The IR classes and both
lowerings live in the analysis package so the hybrid bridge and this
engine can never drift apart; this module re-exports them and adds the
*evaluation* side of the value domain: matching, substitution and
arithmetic.

``parse_program`` reads ordinary Prolog syntax through the front end
in :mod:`repro.lang`, so benchmark programs can be written once and fed
both to the tuple-at-a-time engine and to this set-at-a-time engine.
"""

from __future__ import annotations

from ..analysis import graph as _graphlib
from ..analysis.ir import (  # noqa: F401 — the IR is re-exported from here
    CMP,
    COMPARISON_OPS,
    IS,
    REL,
    UNIFY,
    Rule,
    Var,
    check_rule_safety,
    list_args,
    pattern_vars,
    term_literal as _literal,
    term_pattern as _term_to_pattern,
)
from ..errors import SafetyError, TypeError_
from ..lang.parser import parse_terms
from ..terms import Atom, Struct
from ..terms import deref

__all__ = [
    "Var",
    "Rule",
    "Program",
    "atom",
    "struct",
    "parse_program",
    "pattern_vars",
    "match",
    "substitute",
    "eval_expr",
]

_COMPARE_OPS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}
assert set(_COMPARE_OPS) == set(COMPARISON_OPS)

_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "/": lambda a, b: a / b,
    "mod": lambda a, b: a % b,
}


def atom(name):
    """Constants are plain strings in the bottom-up value domain."""
    return name


def struct(functor, *args):
    return (functor, *args)


class Program:
    """A list of rules plus derived metadata."""

    def __init__(self, rules, check_safety=True):
        self.rules = list(rules)
        if check_safety:
            for rule in self.rules:
                check_rule_safety(rule)

    @property
    def idb_predicates(self):
        return {(r.head_pred, len(r.head_args)) for r in self.rules}

    def rules_for(self, pred, arity):
        return [
            r
            for r in self.rules
            if r.head_pred == pred and len(r.head_args) == arity
        ]

    def dependency_graph(self):
        """Edges head -> (callee, negative?) over IDB predicates."""
        return _graphlib.dependency_edges(self.rules, self.idb_predicates)

    def stratify(self):
        """Assign strata; raises SafetyError when not stratified.

        Returns {pred_key: stratum}; a predicate's stratum is strictly
        above any predicate it depends on negatively.
        """
        return _graphlib.stratify(self.dependency_graph())

    def __len__(self):
        return len(self.rules)


# --------------------------------------------------------------------------
# matching / substitution / arithmetic over frozen values
# --------------------------------------------------------------------------

def match(pattern, value, bindings):
    """Match a pattern against a ground value, extending ``bindings``.

    Returns the list of variables newly bound (for undo), or None on
    mismatch — in which case the caller must not reuse ``bindings``
    without undoing (the helper undoes for you).
    """
    added = []
    if _match(pattern, value, bindings, added):
        return added
    for var in added:
        del bindings[var]
    return None


def _match(pattern, value, bindings, added):
    if isinstance(pattern, Var):
        bound = bindings.get(pattern, _UNSET)
        if bound is _UNSET:
            bindings[pattern] = value
            added.append(pattern)
            return True
        return bound == value
    if isinstance(pattern, tuple):
        if (
            not isinstance(value, tuple)
            or len(value) != len(pattern)
            or value[0] != pattern[0]
        ):
            return False
        for p, v in zip(pattern[1:], value[1:]):
            if not _match(p, v, bindings, added):
                return False
        return True
    return pattern == value and type(pattern) is type(value)


_UNSET = object()


def substitute(pattern, bindings):
    """Instantiate a pattern; raises if a variable is unbound."""
    if isinstance(pattern, Var):
        value = bindings.get(pattern, _UNSET)
        if value is _UNSET:
            raise SafetyError(f"unbound variable {pattern} in head or negation")
        return value
    if isinstance(pattern, tuple):
        return (pattern[0],) + tuple(
            substitute(arg, bindings) for arg in pattern[1:]
        )
    return pattern


def eval_expr(expr, bindings):
    """Arithmetic over patterns: numbers, bound vars, binary operators."""
    if isinstance(expr, (int, float)):
        return expr
    if isinstance(expr, Var):
        value = bindings.get(expr, _UNSET)
        if value is _UNSET or not isinstance(value, (int, float)):
            raise SafetyError(f"arithmetic on unbound/non-numeric {expr}")
        return value
    if isinstance(expr, tuple) and len(expr) == 3 and expr[0] in _ARITH_OPS:
        return _ARITH_OPS[expr[0]](
            eval_expr(expr[1], bindings), eval_expr(expr[2], bindings)
        )
    if isinstance(expr, tuple) and len(expr) == 2 and expr[0] == "-":
        return -eval_expr(expr[1], bindings)
    raise TypeError_("arithmetic expression", expr)


def compare(op, left, right, bindings):
    return _COMPARE_OPS[op](eval_expr(left, bindings), eval_expr(right, bindings))


# --------------------------------------------------------------------------
# parsing from Prolog syntax (lowering shared with the analysis layer)
# --------------------------------------------------------------------------

def parse_program(text, check_safety=True):
    """Parse Prolog-syntax text into (Program, facts).

    Ground clauses without bodies become facts: a dict mapping
    ``(name, arity)`` to a list of value tuples.  Everything else
    becomes a rule.  Directives are ignored (the bottom-up engine needs
    no tabling or indexing declarations).
    """
    rules = []
    facts = {}
    for term in parse_terms(text):
        term = deref(term)
        if isinstance(term, Struct) and term.name == ":-" and len(term.args) == 1:
            continue  # directives are irrelevant bottom-up
        varmap = {}
        if isinstance(term, Struct) and term.name == ":-" and len(term.args) == 2:
            head = deref(term.args[0])
            body = []
            _literal(term.args[1], varmap, body)
        else:
            head = term
            body = []
        if isinstance(head, Atom):
            head_pred, head_args = head.name, ()
        elif isinstance(head, Struct):
            head_pred = head.name
            head_args = tuple(_term_to_pattern(a, varmap) for a in head.args)
        else:
            raise TypeError_("clause head", head)
        if not body and not pattern_vars(list_args(head_args)):
            facts.setdefault((head_pred, len(head_args)), []).append(head_args)
        else:
            rules.append(Rule(head_pred, head_args, body))
    return Program(rules, check_safety=check_safety), facts
