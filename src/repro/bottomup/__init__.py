"""Set-at-a-time bottom-up datalog evaluation — the comparator systems.

The paper compares XSB against CORAL and LDL, which evaluate magic-set
rewritten programs with a semi-naive, set-at-a-time fixpoint.  This
subpackage implements those algorithms over one shared substrate so
the benchmarks compare algorithm against algorithm:

* :mod:`repro.bottomup.relation` — in-memory relations with hash
  indexes and hash joins;
* :mod:`repro.bottomup.datalog` — rules, safety (range-restriction)
  checking, predicate dependency graphs, stratification;
* :mod:`repro.bottomup.seminaive` — naive and semi-naive fixpoints
  with stratified negation;
* :mod:`repro.bottomup.magic` — adornments and the magic-sets rewrite
  (goal-directedness for bottom-up);
* :mod:`repro.bottomup.factoring` — the factoring optimization of
  Naughton/Ramakrishnan/Sagiv/Ullman (CORAL's "factoring" option, the
  CORAL-fac line of figure 5);
* :mod:`repro.bottomup.wellfounded` — the alternating fixpoint for the
  well-founded semantics (the Glue-Nail-style comparator, and the
  oracle our WFS interpreter is tested against).
"""

from .datalog import Program, Rule, Var, atom, parse_program, struct
from .magic import magic_rewrite
from .factoring import factor_program
from .relation import Relation
from .seminaive import (
    EvaluationStats,
    Prepared,
    evaluate,
    evaluate_naive,
    prepare,
    query,
)
from .wellfounded import alternating_fixpoint

__all__ = [
    "Relation",
    "Program",
    "Rule",
    "Var",
    "atom",
    "struct",
    "parse_program",
    "evaluate",
    "evaluate_naive",
    "prepare",
    "Prepared",
    "EvaluationStats",
    "query",
    "magic_rewrite",
    "factor_program",
    "alternating_fixpoint",
]
