"""In-memory relations for the bottom-up engine.

Values are hashable Python data: ints, floats, strings (atoms), and
nested tuples ``(functor, arg1, ..., argN)`` for compound terms, so a
Prolog list ``[1,2]`` is ``('.', 1, ('.', 2, '[]'))``.  A relation is a
set of fact tuples with hash indexes built on demand for whatever
binding patterns the joins use.

The implementation lives in the unified storage layer:
``Relation`` *is* :class:`repro.store.MemoryTupleStore` — the same
class serves semi-naive joins here, predicate fact stores, table
answer stores and the hybrid bridge, so the bespoke index code this
module used to carry exists exactly once.
"""

from __future__ import annotations

from ..store.tuplestore import MemoryTupleStore as Relation

__all__ = ["Relation"]
