"""In-memory relations for the bottom-up engine.

Values are hashable Python data: ints, floats, strings (atoms), and
nested tuples ``(functor, arg1, ..., argN)`` for compound terms, so a
Prolog list ``[1,2]`` is ``('.', 1, ('.', 2, '[]'))``.  A relation is a
set of fact tuples with hash indexes built on demand for whatever
binding patterns the joins use.
"""

from __future__ import annotations

__all__ = ["Relation"]


class Relation:
    """A set of tuples with on-demand hash indexes.

    Indexes are keyed by the tuple of bound positions; they are built
    lazily the first time a join probes that pattern and maintained
    incrementally afterwards.

    ``rows`` preserves insertion order alongside the membership set, so
    iteration is deterministic (set order would vary with the per-run
    string hash seed) — the hybrid SLG bridge relies on this to install
    table answers in a reproducible derivation order.
    """

    __slots__ = ("name", "arity", "tuples", "rows", "indexes")

    def __init__(self, name, arity):
        self.name = name
        self.arity = arity
        self.tuples = set()
        self.rows = []
        self.indexes = {}

    def add(self, row):
        """Insert one tuple; True when it was new."""
        if row in self.tuples:
            return False
        self.tuples.add(row)
        self.rows.append(row)
        for positions, index in self.indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return True

    def add_many(self, rows):
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def _ensure_index(self, positions):
        index = self.indexes.get(positions)
        if index is None:
            index = {}
            for row in self.rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            self.indexes[positions] = index
        return index

    def clear(self):
        """Empty the relation while keeping every container's identity.

        Rows, the membership set and each index dict are cleared rather
        than replaced: compiled join plans capture those exact objects
        (see :func:`repro.bottomup.seminaive._compile_plan`), so a
        prepared fixpoint can reset its derived relations between runs
        without recompiling anything.
        """
        self.tuples.clear()
        self.rows.clear()
        for index in self.indexes.values():
            index.clear()

    def probe(self, positions, key):
        """All tuples whose ``positions`` equal ``key`` (hash lookup)."""
        if not positions:
            return self.rows
        index = self._ensure_index(positions)
        return index.get(key, ())

    def __contains__(self, row):
        return row in self.tuples

    def __len__(self):
        return len(self.tuples)

    def __iter__(self):
        return iter(self.rows)

    def copy(self):
        clone = Relation(self.name, self.arity)
        clone.tuples = set(self.tuples)
        clone.rows = list(self.rows)
        return clone

    def __repr__(self):
        return f"<Relation {self.name}/{self.arity} {len(self.tuples)} tuples>"
