"""A tabled *meta-interpreter* — the slow tier of section 3.2.

The paper reports that an SLG meta-interpreter written over the plain
WAM "has turned out to be unacceptable for general programming" and
that the SLG-WAM is roughly 100x faster than its meta-interpreter.
This module is that comparand: a clean, substitution-style tabled
interpreter that

* resolves against *reconstructed clause terms* (``Clause.to_term``)
  with general unification — no compiled head-matching, no clause
  indexing beyond the predicate name;
* evaluates tabled predicates by a naive answer-saturation fixpoint —
  each round re-derives every table from scratch against the previous
  round's answers (no suspension/resumption machinery).

It is deliberately interpretive; its correctness is tested against the
engine, and the ratio between the two is measured by
``benchmarks/bench_metainterp_ratio.py`` (experiment S5c).
"""

from __future__ import annotations

from ..errors import ExistenceError, NonStratifiedError
from ..terms import (
    Atom,
    Struct,
    Trail,
    Var,
    canonical_key,
    copy_term,
    deref,
    instantiate_key,
    is_ground,
    unify,
)
from .builtins import arith_eval

__all__ = ["MetaInterpreter"]

_ARITH_TESTS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}


class MetaInterpreter:
    """Interprets the program stored in an :class:`~repro.engine.Engine`.

    Shares the engine's database (clauses, tabling declarations) but
    none of its SLG machinery; maintains its own table of answers.
    """

    def __init__(self, engine):
        self.engine = engine
        self.trail = Trail()
        self.tables = {}  # canonical key -> [answer keys]
        self.table_index = {}  # canonical key -> set(answer keys)

    # -- public API -------------------------------------------------------------

    def query(self, goal):
        """All solutions of a goal (text or term) as resolved term copies."""
        if isinstance(goal, str):
            goal = self.engine.parse(goal)
        self._saturate(goal)
        out = []
        mark = self.trail.mark()
        for _ in self._solve(goal, expand_tabled=False):
            out.append(copy_term(goal))
        self.trail.undo_to(mark)
        return out

    def count(self, goal):
        return len(self.query(goal))

    def has_solution(self, goal):
        return bool(self.query(goal))

    # -- fixpoint driver -----------------------------------------------------------

    def _saturate(self, goal):
        """Register subgoals reachable from ``goal`` and saturate all
        tables by naive iteration."""
        changed = True
        rounds = 0
        while changed:
            changed = False
            rounds += 1
            # seed/track subgoals by running the query itself
            mark = self.trail.mark()
            for _ in self._solve(goal, expand_tabled=False):
                pass
            self.trail.undo_to(mark)
            for key in list(self.tables):
                if self._expand_table(key):
                    changed = True
        return rounds

    def _expand_table(self, key):
        """One naive round for one tabled subgoal; True if new answers."""
        pattern = instantiate_key(key)
        name, args = self._functor(pattern)
        pred = self.engine.db.lookup(name, len(args))
        if pred is None:
            raise ExistenceError(f"{name}/{len(args)}")
        changed = False
        mark = self.trail.mark()
        for clause in pred.clauses:
            # to_term returns a fresh-variable copy already.
            renamed = clause.to_term()
            if isinstance(renamed, Struct) and renamed.name == ":-":
                head, body = renamed.args
            else:
                head, body = renamed, None
            if not unify(head, pattern, self.trail):
                self.trail.undo_to(mark)
                continue
            if body is None:
                if self._record(key, pattern):
                    changed = True
                self.trail.undo_to(mark)
                continue
            for _ in self._solve(body, expand_tabled=False):
                if self._record(key, pattern):
                    changed = True
            self.trail.undo_to(mark)
            # a fresh pattern per clause keeps bindings independent
            pattern = instantiate_key(key)
        return changed

    def _record(self, key, answer):
        akey = canonical_key(answer)
        seen = self.table_index.setdefault(key, set())
        if akey in seen:
            return False
        seen.add(akey)
        self.tables[key].append(akey)
        return True

    # -- the interpreter proper --------------------------------------------------------

    @staticmethod
    def _functor(term):
        term = deref(term)
        if isinstance(term, Struct):
            return term.name, term.args
        if isinstance(term, Atom):
            return term.name, ()
        raise ExistenceError(repr(term))

    def _solve(self, goal, expand_tabled):
        """Generator of solutions via destructive bindings."""
        goal = deref(goal)
        name, args = self._functor(goal)
        arity = len(args)
        trail = self.trail

        if name == "," and arity == 2:
            for _ in self._solve(args[0], expand_tabled):
                yield from self._solve(args[1], expand_tabled)
            return
        if name == ";" and arity == 2:
            yield from self._solve(args[0], expand_tabled)
            yield from self._solve(args[1], expand_tabled)
            return
        if name == "true" and arity == 0:
            yield True
            return
        if name == "fail" and arity == 0:
            return
        if name == "=" and arity == 2:
            mark = trail.mark()
            if unify(args[0], args[1], trail):
                yield True
            trail.undo_to(mark)
            return
        if name == "is" and arity == 2:
            mark = trail.mark()
            if unify(args[0], arith_eval(args[1]), trail):
                yield True
            trail.undo_to(mark)
            return
        if name in _ARITH_TESTS and arity == 2:
            if _ARITH_TESTS[name](arith_eval(args[0]), arith_eval(args[1])):
                yield True
            return
        if name in ("\\+", "not") and arity == 1:
            sub = MetaInterpreter(self.engine)
            sub.tables = self.tables
            sub.table_index = self.table_index
            if not sub.query(copy_term(args[0])):
                yield True
            return
        if name == "tnot" and arity == 1:
            inner = deref(args[0])
            if not is_ground(inner):
                raise NonStratifiedError(f"floundering tnot: {inner!r}")
            sub = MetaInterpreter(self.engine)
            if not sub.query(copy_term(inner)):
                yield True
            return

        pred = self.engine.db.lookup(name, arity)
        if pred is None:
            if self.engine.unknown == "fail":
                return
            raise ExistenceError(f"{name}/{arity}")

        if pred.tabled:
            key = canonical_key(goal)
            if key not in self.tables:
                self.tables[key] = []
                self.table_index[key] = set()
            answers = list(self.tables[key])  # snapshot of this round
            mark = trail.mark()
            for akey in answers:
                answer = instantiate_key(akey)
                if unify(goal, answer, trail):
                    yield True
                trail.undo_to(mark)
            return

        mark = trail.mark()
        for clause in pred.clauses:
            renamed = clause.to_term()  # fresh-variable copy
            if isinstance(renamed, Struct) and renamed.name == ":-":
                head, body = renamed.args
            else:
                head, body = renamed, None
            if unify(head, goal, trail):
                if body is None:
                    yield True
                else:
                    yield from self._solve(body, expand_tabled)
            trail.undo_to(mark)
