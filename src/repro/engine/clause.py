"""Compiled clause templates — the Python analog of WAM clause code.

A clause is compiled once into *skeletons*: its head arguments and body
literals with every variable replaced by a :class:`SlotRef` index.
Resolution then works like compiled code rather than interpretation:

* head matching walks the head skeleton against the call's argument
  terms directly (the analog of ``get``/``unify`` instructions) —
  first occurrences of a variable simply capture the argument, with no
  trailing and no term construction;
* body instantiation builds the body goals from the skeleton and the
  slot array (the analog of ``put`` instructions), creating fresh
  variables lazily for body-only variables.

This is where the engine's "compiled, not interpreted" speed claim
lives; :mod:`repro.engine.interp`, the meta-interpreter, deliberately
skips this machinery so the two tiers can be compared (section 3.2).
"""

from __future__ import annotations

from ..terms import Atom, Struct, Var, bind, deref, mkatom, unify
from ..terms.compare import canonical_key
from ..terms.rename import copy_term

__all__ = ["SlotRef", "Clause", "compile_clause", "decompose_clause"]

_UNSET = object()


class SlotRef(Var):
    """A compiled variable: an index into the resolution's slot array.

    Subclasses :class:`Var` (always unbound) so that code that merely
    *inspects* skeletons — the indexing subsystem in particular — sees
    slot references as variables without special-casing them.  The
    resolution paths in this module always test for SlotRef first and
    never bind one.
    """

    __slots__ = ("index",)

    def __init__(self, index, name=None):
        super().__init__(name)
        self.index = index

    def __repr__(self):
        return f"${self.index}"


def _skeletonize(term, slots):
    """Replace variables by SlotRefs, assigning slot numbers on first use.

    Iterative so that asserting deep facts (long lists) cannot blow the
    recursion limit.
    """
    term = deref(term)
    if isinstance(term, Var):
        ref = slots.get(id(term))
        if ref is None:
            ref = SlotRef(len(slots), term.name)
            slots[id(term)] = ref
        return ref
    if not isinstance(term, Struct):
        return term
    parts = []
    stack = [(term, iter(term.args), parts)]
    while True:
        src, it, parts = stack[-1]
        descended = False
        for child in it:
            child = deref(child)
            if isinstance(child, Var):
                ref = slots.get(id(child))
                if ref is None:
                    ref = SlotRef(len(slots), child.name)
                    slots[id(child)] = ref
                parts.append(ref)
            elif isinstance(child, Struct):
                child_parts = []
                stack.append((child, iter(child.args), child_parts))
                descended = True
                break
            else:
                parts.append(child)
        if descended:
            continue
        stack.pop()
        node = Struct(src.name, parts)
        if not stack:
            return node
        stack[-1][2].append(node)


def decompose_clause(term):
    """Split a clause term into (head, [body literals])."""
    term = deref(term)
    if isinstance(term, Struct) and term.name == ":-" and len(term.args) == 2:
        head = deref(term.args[0])
        body = []
        _flatten_body(term.args[1], body)
        return head, body
    return term, []


def _flatten_body(term, out):
    stack = [term]
    while stack:
        term = deref(stack.pop())
        if isinstance(term, Struct) and term.name == "," and len(term.args) == 2:
            stack.append(term.args[1])
            stack.append(term.args[0])
        else:
            out.append(term)


class Clause:
    """One compiled clause.

    ``head_args`` and ``body`` are skeletons; ``nslots`` the number of
    distinct variables.  ``seq`` is assigned by the database and orders
    clauses within a predicate.
    """

    __slots__ = (
        "name",
        "arity",
        "head_args",
        "body",
        "nslots",
        "seq",
        "source",
        "_term",
    )

    def __init__(self, name, head_args, body, nslots, source=None):
        self.name = name
        self.arity = len(head_args)
        self.head_args = head_args
        self.body = body
        self.nslots = nslots
        self.seq = -1
        self.source = source
        self._term = None

    # -- resolution ---------------------------------------------------------

    def match_head(self, call_args, trail):
        """Match the head against the call; returns the slot array or None.

        The caller must unwind the trail on failure (choice points hold
        the pre-call mark, so the machine gets this for free).
        """
        slots = [_UNSET] * self.nslots
        for sk, arg in zip(self.head_args, call_args):
            # Scalar skeleton arguments (the entire head of a typical
            # fact) are handled inline; only compound arguments pay for
            # the explicit-stack walk in _match.
            if type(sk) is SlotRef:
                captured = slots[sk.index]
                if captured is _UNSET:
                    slots[sk.index] = deref(arg)
                elif not unify(captured, arg, trail):
                    return None
            elif isinstance(sk, Struct):
                if not _match(sk, arg, slots, trail):
                    return None
            elif isinstance(sk, Atom):
                t = deref(arg)
                if isinstance(t, Var):
                    bind(t, sk, trail)
                elif not (isinstance(t, Atom) and t.name == sk.name):
                    return None
            else:
                t = deref(arg)
                if isinstance(t, Var):
                    bind(t, sk, trail)
                elif type(t) is not type(sk) or t != sk:
                    return None
        return slots

    def body_terms(self, slots):
        """Instantiate the body literal skeletons against ``slots``."""
        return [_build(literal, slots) for literal in self.body]

    def head_term(self, slots):
        """Instantiate the full head term (used by clause/2, retract/1)."""
        if not self.head_args:
            return mkatom(self.name)
        return Struct(self.name, tuple(_build(a, slots) for a in self.head_args))

    def fresh_slots(self):
        return [_UNSET] * self.nslots

    # -- inspection -----------------------------------------------------------

    @property
    def indicator(self):
        return f"{self.name}/{self.arity}"

    def to_term(self):
        """Rebuild the clause as a (fresh-variable) ``Head :- Body`` term.

        The rebuilt term is cached as a template and each call returns a
        fresh-variable copy of it, so repeated reconstruction (the
        meta-interpreter resolves this way on every step) pays one
        ``copy_term`` rather than a skeleton walk per use.
        """
        template = self._term
        if template is None:
            slots = self.fresh_slots()
            head = self.head_term(slots)
            if not self.body:
                template = head
            else:
                body = _build(self.body[-1], slots)
                for literal in reversed(self.body[:-1]):
                    body = Struct(",", (_build(literal, slots), body))
                template = Struct(":-", (head, body))
            self._term = template
        return copy_term(template)

    def variant_key(self):
        """Canonical key of the whole clause (used by retract and tests)."""
        return canonical_key(self.to_term())

    def __repr__(self):
        return f"<Clause {self.indicator} #{self.seq}>"


def _match(skeleton, term, slots, trail):
    """Head-argument matching: skeleton (with SlotRefs) vs. a call term."""
    stack = [(skeleton, term)]
    while stack:
        sk, t = stack.pop()
        if isinstance(sk, SlotRef):
            captured = slots[sk.index]
            if captured is _UNSET:
                slots[sk.index] = deref(t)
            elif not unify(captured, t, trail):
                return False
            continue
        t = deref(t)
        if isinstance(sk, Struct):
            if isinstance(t, Var):
                bind(t, _build(sk, slots), trail)
                continue
            if (
                not isinstance(t, Struct)
                or t.name != sk.name
                or len(t.args) != len(sk.args)
            ):
                return False
            stack.extend(zip(sk.args, t.args))
        elif isinstance(sk, Atom):
            if isinstance(t, Var):
                bind(t, sk, trail)
            elif not (isinstance(t, Atom) and t.name == sk.name):
                return False
        else:
            if isinstance(t, Var):
                bind(t, sk, trail)
            elif type(t) is not type(sk) or t != sk:
                return False
    return True


def _build(skeleton, slots):
    """Instantiate a skeleton: the analog of WAM put instructions.

    Iterative post-order walk; skeletons mirror source terms, so deep
    clause arguments must not recurse either.
    """
    if isinstance(skeleton, SlotRef):
        value = slots[skeleton.index]
        if value is _UNSET:
            value = Var(skeleton.name)
            slots[skeleton.index] = value
        return value
    if not isinstance(skeleton, Struct):
        return skeleton
    parts = []
    stack = [(skeleton, iter(skeleton.args), parts)]
    while True:
        src, it, parts = stack[-1]
        descended = False
        for child in it:
            if isinstance(child, SlotRef):
                value = slots[child.index]
                if value is _UNSET:
                    value = Var(child.name)
                    slots[child.index] = value
                parts.append(value)
            elif isinstance(child, Struct):
                child_parts = []
                stack.append((child, iter(child.args), child_parts))
                descended = True
                break
            else:
                parts.append(child)
        if descended:
            continue
        stack.pop()
        node = Struct(src.name, parts)
        if not stack:
            return node
        stack[-1][2].append(node)


def compile_clause(term):
    """Compile a source clause term into a :class:`Clause`."""
    head, body = decompose_clause(term)
    head = deref(head)
    slots = {}
    if isinstance(head, Struct):
        name = head.name
        head_args = tuple(_skeletonize(a, slots) for a in head.args)
    elif isinstance(head, Atom):
        name = head.name
        head_args = ()
    else:
        from ..errors import TypeError_

        raise TypeError_("callable clause head", head)
    body_skeletons = tuple(_skeletonize(b, slots) for b in body)
    return Clause(name, head_args, body_skeletons, len(slots), source=term)
