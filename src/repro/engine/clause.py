"""Compiled clause templates — the Python analog of WAM clause code.

A clause is compiled once into *skeletons*: its head arguments and body
literals with every variable replaced by a :class:`SlotRef` index.
Resolution then works like compiled code rather than interpretation:

* head matching walks the head skeleton against the call's argument
  terms directly (the analog of ``get``/``unify`` instructions) —
  first occurrences of a variable simply capture the argument, with no
  trailing and no term construction;
* body instantiation builds the body goals from the skeleton and the
  slot array (the analog of ``put`` instructions), creating fresh
  variables lazily for body-only variables.

This is where the engine's "compiled, not interpreted" speed claim
lives; :mod:`repro.engine.interp`, the meta-interpreter, deliberately
skips this machinery so the two tiers can be compared (section 3.2).
"""

from __future__ import annotations

from ..terms import Atom, Struct, Var, bind, deref, unify
from ..terms.compare import canonical_key

__all__ = ["SlotRef", "Clause", "compile_clause", "decompose_clause"]

_UNSET = object()


class SlotRef(Var):
    """A compiled variable: an index into the resolution's slot array.

    Subclasses :class:`Var` (always unbound) so that code that merely
    *inspects* skeletons — the indexing subsystem in particular — sees
    slot references as variables without special-casing them.  The
    resolution paths in this module always test for SlotRef first and
    never bind one.
    """

    __slots__ = ("index",)

    def __init__(self, index, name=None):
        super().__init__(name)
        self.index = index

    def __repr__(self):
        return f"${self.index}"


def _skeletonize(term, slots):
    """Replace variables by SlotRefs, assigning slot numbers on first use."""
    term = deref(term)
    if isinstance(term, Var):
        ref = slots.get(id(term))
        if ref is None:
            ref = SlotRef(len(slots), term.name)
            slots[id(term)] = ref
        return ref
    if isinstance(term, Struct):
        return Struct(term.name, tuple(_skeletonize(a, slots) for a in term.args))
    return term


def decompose_clause(term):
    """Split a clause term into (head, [body literals])."""
    term = deref(term)
    if isinstance(term, Struct) and term.name == ":-" and len(term.args) == 2:
        head = deref(term.args[0])
        body = []
        _flatten_body(term.args[1], body)
        return head, body
    return term, []


def _flatten_body(term, out):
    term = deref(term)
    if isinstance(term, Struct) and term.name == "," and len(term.args) == 2:
        _flatten_body(term.args[0], out)
        _flatten_body(term.args[1], out)
    else:
        out.append(term)


class Clause:
    """One compiled clause.

    ``head_args`` and ``body`` are skeletons; ``nslots`` the number of
    distinct variables.  ``seq`` is assigned by the database and orders
    clauses within a predicate.
    """

    __slots__ = ("name", "arity", "head_args", "body", "nslots", "seq", "source")

    def __init__(self, name, head_args, body, nslots, source=None):
        self.name = name
        self.arity = len(head_args)
        self.head_args = head_args
        self.body = body
        self.nslots = nslots
        self.seq = -1
        self.source = source

    # -- resolution ---------------------------------------------------------

    def match_head(self, call_args, trail):
        """Match the head against the call; returns the slot array or None.

        The caller must unwind the trail on failure (choice points hold
        the pre-call mark, so the machine gets this for free).
        """
        slots = [_UNSET] * self.nslots
        for skeleton, arg in zip(self.head_args, call_args):
            if not _match(skeleton, arg, slots, trail):
                return None
        return slots

    def body_terms(self, slots):
        """Instantiate the body literal skeletons against ``slots``."""
        return [_build(literal, slots) for literal in self.body]

    def head_term(self, slots):
        """Instantiate the full head term (used by clause/2, retract/1)."""
        if not self.head_args:
            from ..terms import mkatom

            return mkatom(self.name)
        return Struct(self.name, tuple(_build(a, slots) for a in self.head_args))

    def fresh_slots(self):
        return [_UNSET] * self.nslots

    # -- inspection -----------------------------------------------------------

    @property
    def indicator(self):
        return f"{self.name}/{self.arity}"

    def to_term(self):
        """Rebuild the clause as a (fresh-variable) ``Head :- Body`` term."""
        from ..terms import mkatom

        slots = self.fresh_slots()
        head = self.head_term(slots)
        if not self.body:
            return head
        body = _build(self.body[-1], slots)
        for literal in reversed(self.body[:-1]):
            body = Struct(",", (_build(literal, slots), body))
        return Struct(":-", (head, body))

    def variant_key(self):
        """Canonical key of the whole clause (used by retract and tests)."""
        return canonical_key(self.to_term())

    def __repr__(self):
        return f"<Clause {self.indicator} #{self.seq}>"


def _match(skeleton, term, slots, trail):
    """Head-argument matching: skeleton (with SlotRefs) vs. a call term."""
    stack = [(skeleton, term)]
    while stack:
        sk, t = stack.pop()
        if isinstance(sk, SlotRef):
            captured = slots[sk.index]
            if captured is _UNSET:
                slots[sk.index] = deref(t)
            elif not unify(captured, t, trail):
                return False
            continue
        t = deref(t)
        if isinstance(sk, Struct):
            if isinstance(t, Var):
                bind(t, _build(sk, slots), trail)
                continue
            if (
                not isinstance(t, Struct)
                or t.name != sk.name
                or len(t.args) != len(sk.args)
            ):
                return False
            stack.extend(zip(sk.args, t.args))
        elif isinstance(sk, Atom):
            if isinstance(t, Var):
                bind(t, sk, trail)
            elif not (isinstance(t, Atom) and t.name == sk.name):
                return False
        else:
            if isinstance(t, Var):
                bind(t, sk, trail)
            elif type(t) is not type(sk) or t != sk:
                return False
    return True


def _build(skeleton, slots):
    """Instantiate a skeleton: the analog of WAM put instructions."""
    if isinstance(skeleton, SlotRef):
        value = slots[skeleton.index]
        if value is _UNSET:
            value = Var(skeleton.name)
            slots[skeleton.index] = value
        return value
    if isinstance(skeleton, Struct):
        return Struct(skeleton.name, tuple(_build(a, slots) for a in skeleton.args))
    return skeleton


def compile_clause(term):
    """Compile a source clause term into a :class:`Clause`."""
    head, body = decompose_clause(term)
    head = deref(head)
    slots = {}
    if isinstance(head, Struct):
        name = head.name
        head_args = tuple(_skeletonize(a, slots) for a in head.args)
    elif isinstance(head, Atom):
        name = head.name
        head_args = ()
    else:
        from ..errors import TypeError_

        raise TypeError_("callable clause head", head)
    body_skeletons = tuple(_skeletonize(b, slots) for b in body)
    return Clause(name, head_args, body_skeletons, len(slots), source=term)
