"""The per-clause closure compiler (ROADMAP item 4).

The paper's central performance claim is that XSB runs *compiled*
clauses; the Python rendering of that claim is this module.  Instead
of interpreting every resolution through the one-size-fits-all
template walk in :mod:`repro.engine.clause`, each clause is lowered —
lazily, on first dispatch — to a closure specialized for its shape:

* bodiless ground clauses get the **fused fact kernel** (the whole
  head match as per-register compares against precomputed operands,
  sharing the row-codec value domain with the predicate fact store);
* clauses whose head arguments are variables, constants or ground
  structures get the **argument-register kernel**: first-occurrence
  head variables capture without deref bookkeeping or trailing, and a
  leading run of inline builtins (``is/2``, comparisons, ``=/2``,
  ``==/2``) executes eagerly inside the closure as one
  superinstruction;
* everything else gets the **generic kernel**, byte-identical in
  behavior to the template path.

Shape selection consults the analysis registry's mode summaries
(:meth:`~repro.analysis.registry.AnalysisRegistry.modes`): an
all-constant fact predicate is compiled eagerly as a batch — its
fused kernels and frozen rows are built together, and
:meth:`~repro.engine.database.Predicate.fact_rows` reuses the rows
instead of re-freezing.

Caching follows the analysis registry's discipline exactly: one
:class:`CompiledUnit` hangs off each :class:`Predicate`, stamped with
the predicate's ``mutations`` counter.  Assert, retract and
predicate-level retract bump the stamp (and the process generation),
so a stale unit is never served — the dispatch sites revalidate with
one integer compare; ``abolish`` removes the predicate object and the
unit dies with it.  Closures are keyed by clause ``seq``, which is
monotonic per predicate and never reused, so a rebuilt unit can never
alias a retracted clause's code to a reasserted one.
"""

from __future__ import annotations

from ..store.codec import FreezeError, freeze_term
from ..terms import Atom, Struct, Var
from .clause import SlotRef
from .specialized.kernels import (
    OP_ATOM,
    OP_CAPTURE,
    OP_GROUND,
    OP_REUNIFY,
    OP_SCALAR,
    clause_kernel,
    compile_arith_node,
    const_builder,
    eager_compare,
    eager_is_const,
    eager_is_slot,
    eager_is_term,
    eager_struct_cmp,
    eager_unify,
    flat_struct_builder,
    fused_fact_kernel,
    generic_builder,
    generic_kernel,
    slot_builder,
)

__all__ = ["CompiledUnit", "ensure_unit", "INLINE_BUILTINS"]

# Arithmetic comparisons inlined as superinstruction steps.  These are
# the default handlers' exact semantics (see _arith_cmp in builtins);
# builtins dispatch before user predicates, so they cannot be shadowed
# by program clauses.
_CMP_OPS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}

# Body builtins the compiler may execute eagerly inside a clause
# closure (all arity 2): deterministic, no choice points, and their
# failure/error behavior is position-identical to goal dispatch.
INLINE_BUILTINS = frozenset(_CMP_OPS) | {"is", "=", "==", "\\=="}


# --------------------------------------------------------------------------
# shape analysis
# --------------------------------------------------------------------------

def _skeleton_ground(sk):
    """True when a skeleton contains no SlotRef (SlotRef is a Var)."""
    stack = [sk]
    while stack:
        t = stack.pop()
        if isinstance(t, Var):
            return False
        if isinstance(t, Struct):
            stack.extend(t.args)
    return True


def _head_plan(head_args):
    """Head ops for the argument-register kernel, or None when some
    argument is a non-ground structure (those keep the template walk)."""
    ops = []
    seen = set()
    for sk in head_args:
        if type(sk) is SlotRef:
            if sk.index in seen:
                ops.append((OP_REUNIFY, sk.index, None))
            else:
                seen.add(sk.index)
                ops.append((OP_CAPTURE, sk.index, None))
        elif isinstance(sk, Struct):
            if not _skeleton_ground(sk):
                return None
            ops.append((OP_GROUND, sk, None))
        elif isinstance(sk, Atom):
            ops.append((OP_ATOM, sk, sk.name))
        else:
            ops.append((OP_SCALAR, sk, None))
    return tuple(ops)


def _term_builder(sk):
    """A builder ``fn(slots) -> term`` for one literal/operand skeleton."""
    if type(sk) is SlotRef:
        return slot_builder(sk.index, sk.name)
    if isinstance(sk, Struct):
        parts = []
        ground = True
        for child in sk.args:
            if type(child) is SlotRef:
                ground = False
                parts.append((True, child.index, child.name))
            elif isinstance(child, Struct):
                if not _skeleton_ground(child):
                    return generic_builder(sk)
                parts.append((False, child, None))
            else:
                parts.append((False, child, None))
        if ground:
            return const_builder(sk)
        return flat_struct_builder(sk.name, tuple(parts))
    return const_builder(sk)


def _eager_step(sk):
    """A superinstruction step for one leading body literal, or None."""
    if not isinstance(sk, Struct) or len(sk.args) != 2:
        return None
    name = sk.name
    left, right = sk.args
    op = _CMP_OPS.get(name)
    if op is not None:
        return eager_compare(
            op, compile_arith_node(left), compile_arith_node(right)
        )
    if name == "is":
        expr = compile_arith_node(right)
        if type(left) is SlotRef:
            return eager_is_slot(left.index, expr)
        tl = type(left)
        if tl is int or tl is float:
            return eager_is_const(left, expr)
        return eager_is_term(_term_builder(left), expr)
    if name == "=":
        return eager_unify(_term_builder(left), _term_builder(right))
    if name == "==":
        return eager_struct_cmp(True, _term_builder(left), _term_builder(right))
    if name == "\\==":
        return eager_struct_cmp(
            False, _term_builder(left), _term_builder(right)
        )
    return None


def _body_plan(body):
    """``(eager_steps, builders)``: the leading inline-builtin prefix
    plus reversed builders for the residual literals."""
    eager = []
    index = 0
    for literal in body:
        step = _eager_step(literal)
        if step is None:
            break
        eager.append(step)
        index += 1
    builders = [_term_builder(literal) for literal in body[index:]]
    builders.reverse()
    return tuple(eager), tuple(builders)


def _compile_closure(clause, rows):
    """Lower one clause to its kernel; fused facts also deposit their
    frozen row (the codec value shared with the predicate fact store)."""
    head_args = clause.head_args
    if not clause.body and clause.nslots == 0:
        ops = []
        row = []
        for sk in head_args:
            if isinstance(sk, Atom):
                ops.append((OP_ATOM, sk, sk.name))
                if row is not None:
                    row.append(sk.name)
            elif isinstance(sk, Struct):
                ops.append((OP_GROUND, sk, None))
                if row is not None:
                    try:
                        row.append(freeze_term(sk))
                    except FreezeError:
                        row = None
            else:
                ops.append((OP_SCALAR, sk, None))
                if row is not None:
                    row.append(sk)
        if row is not None:
            rows[clause.seq] = tuple(row)
        return fused_fact_kernel(tuple(ops))
    head_ops = _head_plan(head_args)
    if head_ops is None:
        return generic_kernel(clause)
    eager_steps, builders = _body_plan(clause.body)
    return clause_kernel(clause.nslots, head_ops, eager_steps, builders)


# --------------------------------------------------------------------------
# the per-predicate unit and its cache discipline
# --------------------------------------------------------------------------

class CompiledUnit:
    """Compiled closures for one predicate at one mutation stamp.

    ``closures`` maps clause ``seq`` to kernel; ``rows`` holds the
    frozen rows of fused facts (reused by ``Predicate.fact_rows``);
    ``modes`` is the analysis registry's binding summary that selected
    the compilation strategy.
    """

    __slots__ = ("stamp", "closures", "rows", "modes")

    def __init__(self, pred, modes):
        self.stamp = pred.mutations
        self.closures = {}
        self.rows = {}
        self.modes = modes

    def closure_for(self, clause, stats):
        """Compile (and cache) the kernel for one clause."""
        closure = _compile_closure(clause, self.rows)
        self.closures[clause.seq] = closure
        if stats is not None:
            stats.clauses_compiled += 1
        return closure


def ensure_unit(pred, engine, stats):
    """Build and attach a fresh unit for ``pred`` (stamp-validated by
    the dispatch sites; called only on a miss).

    The analysis registry's mode summary drives the strategy: a fact
    predicate whose every head argument is constant ('c' across the
    board) gets its frozen-row cache deposited eagerly in one batch —
    ``Predicate.fact_rows`` reuses those rows, so set-at-a-time scans
    never freeze the same fact twice.  Closures themselves always
    compile lazily, one clause on first dispatch: a large fact relation
    probed on a bound argument touches a handful of clauses, and a
    short-lived engine may touch none at all, so compiling all of them
    up front is wasted work precisely when the engine is cheapest.
    """
    spans = engine.spans
    token = None
    if spans is not None:
        from ..obs.spans import STAGE_COMPILE

        token = spans.begin(
            STAGE_COMPILE, label=f"compile {pred.name}/{pred.arity}"
        )
    try:
        modes = engine.db.analysis.modes((pred.name, pred.arity))
        unit = CompiledUnit(pred, modes)
        pred.compiled_unit = unit
        if (
            modes is not None
            and all(kind == "c" for kind in modes)
            and all(not clause.body for clause in pred.clauses)
        ):
            rows = unit.rows
            for clause in pred.clauses:
                if clause.nslots == 0:
                    try:
                        rows[clause.seq] = tuple(
                            freeze_term(arg) for arg in clause.head_args
                        )
                    except FreezeError:
                        pass
    finally:
        if spans is not None:
            spans.end(token, detail=len(pred.clauses))
            from ..obs.trace import EV_COMPILE_UNIT

            spans.point(
                EV_COMPILE_UNIT,
                label=f"compile_unit {pred.name}/{pred.arity}",
                detail=len(pred.clauses),
            )
    return unit
