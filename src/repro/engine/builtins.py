"""Builtin predicates of the engine.

Each builtin is a function ``fn(machine, args, goals)`` returning the
next goal list on success or ``None`` on failure; nondeterministic
builtins push an :class:`~repro.engine.frames.IteratorCP` themselves.
The registry maps ``(name, arity)`` to the function.

The set covers what the paper's examples and experiments use: control
(`call/1..8`, negation in its three flavours, ``tcut/0``), term
inspection and construction, arithmetic, all-solutions (`findall/3`,
``tfindall/3``, ``bagof/3``, ``setof/3``), and the dynamic-database
operations of section 4.2 (assert/retract at the clause level,
retractall/abolish at the predicate level).
"""

from __future__ import annotations

import math

from ..errors import (
    EvaluationError,
    InstantiationError,
    NonStratifiedError,
    TablingError,
    TypeError_,
)
from ..terms import (
    NIL,
    Atom,
    Struct,
    Var,
    canonical_key,
    compare_terms,
    copy_term,
    deref,
    is_ground,
    is_proper_list,
    list_to_python,
    make_list,
    mkatom,
    term_variables,
    unify,
)
from .frames import Goals, IteratorCP
from .machine import MODE_FINDALL, MODE_NEGATION

__all__ = ["default_registry", "arith_eval"]


# --------------------------------------------------------------------------
# arithmetic
# --------------------------------------------------------------------------

def _int2(fn):
    def wrapped(a, b):
        if not isinstance(a, int) or not isinstance(b, int):
            raise TypeError_("integer arithmetic", (a, b))
        return fn(a, b)

    return wrapped


_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a // b if isinstance(a, int) and isinstance(b, int) and b and a % b == 0 else a / b,
    "//": _int2(lambda a, b: a // b),
    "mod": _int2(lambda a, b: a % b),
    "rem": _int2(lambda a, b: a - (abs(a) // abs(b)) * abs(b) * (1 if a >= 0 else -1) if b else 0),
    "min": min,
    "max": max,
    "**": lambda a, b: float(a) ** float(b),
    "^": lambda a, b: a**b,
    ">>": _int2(lambda a, b: a >> b),
    "<<": _int2(lambda a, b: a << b),
    "/\\": _int2(lambda a, b: a & b),
    "\\/": _int2(lambda a, b: a | b),
    "xor": _int2(lambda a, b: a ^ b),
    "gcd": _int2(math.gcd),
    "atan2": math.atan2,
    "atan": math.atan2,
    "copysign": math.copysign,
}

_UNARY = {
    "-": lambda a: -a,
    "+": lambda a: a,
    "abs": abs,
    "sign": lambda a: (a > 0) - (a < 0) if isinstance(a, int) else math.copysign(1.0, a) if a else 0.0,
    "sqrt": math.sqrt,
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "asin": math.asin,
    "acos": math.acos,
    "atan": math.atan,
    "exp": math.exp,
    "log": math.log,
    "log2": math.log2,
    "float": float,
    "integer": lambda a: int(a),
    "float_integer_part": lambda a: float(int(a)),
    "float_fractional_part": lambda a: a - int(a),
    "truncate": lambda a: int(a),
    "round": lambda a: int(round(a)),
    "ceiling": lambda a: int(math.ceil(a)),
    "floor": lambda a: int(math.floor(a)),
    "msb": lambda a: a.bit_length() - 1,
    "\\": lambda a: ~a,
}

_CONSTANTS = {
    "pi": math.pi,
    "e": math.e,
    "inf": math.inf,
    "epsilon": 2.220446049250313e-16,
    "max_tagged_integer": (1 << 62) - 1,
    "random": None,  # resolved lazily; deterministic engines may seed
}


def arith_eval(term):
    """Evaluate an arithmetic expression term to a Python number."""
    term = deref(term)
    if isinstance(term, (int, float)):
        return term
    if isinstance(term, Var):
        raise InstantiationError("arithmetic expression")
    if isinstance(term, Atom):
        value = _CONSTANTS.get(term.name)
        if term.name == "random":
            import random

            return random.random()
        if value is None:
            raise TypeError_("evaluable", term)
        return value
    if isinstance(term, Struct):
        if len(term.args) == 2:
            fn = _BINARY.get(term.name)
            if fn is not None:
                left = arith_eval(term.args[0])
                right = arith_eval(term.args[1])
                try:
                    return fn(left, right)
                except ZeroDivisionError as exc:
                    raise EvaluationError("zero_divisor") from exc
        if len(term.args) == 1:
            fn = _UNARY.get(term.name)
            if fn is not None:
                try:
                    return fn(arith_eval(term.args[0]))
                except ValueError as exc:
                    raise EvaluationError(str(exc)) from exc
    raise TypeError_("evaluable", term)


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------

def _unify_or_fail(machine, left, right, goals):
    mark = machine.trail.mark()
    if unify(left, right, machine.trail):
        return goals.next
    machine.trail.undo_to(mark)
    return None


def _extend_goal(goal, extra):
    """call/N: add ``extra`` arguments to ``goal``."""
    goal = deref(goal)
    if isinstance(goal, Atom):
        return Struct(goal.name, tuple(extra))
    if isinstance(goal, Struct):
        return Struct(goal.name, goal.args + tuple(extra))
    if isinstance(goal, Var):
        raise InstantiationError("call/N")
    raise TypeError_("callable", goal)


def _nondet(machine, thunks, goals):
    """Push an IteratorCP over ``thunks`` and take its first alternative."""
    from .frames import EXHAUSTED

    cp = IteratorCP(machine.trail.mark(), thunks, goals.next)
    machine.cpstack.append(cp)
    result = cp.retry(machine)
    if result is EXHAUSTED:
        machine.cpstack.pop()
        return None
    return result


# --------------------------------------------------------------------------
# unification / comparison
# --------------------------------------------------------------------------

def bi_unify(machine, args, goals):
    return _unify_or_fail(machine, args[0], args[1], goals)


def bi_not_unify(machine, args, goals):
    mark = machine.trail.mark()
    ok = unify(args[0], args[1], machine.trail)
    machine.trail.undo_to(mark)
    return None if ok else goals.next


def bi_struct_eq(machine, args, goals):
    return goals.next if compare_terms(args[0], args[1]) == 0 else None


def bi_struct_neq(machine, args, goals):
    return goals.next if compare_terms(args[0], args[1]) != 0 else None


def _ordering(op):
    def builtin(machine, args, goals):
        c = compare_terms(args[0], args[1])
        return goals.next if op(c) else None

    return builtin


def bi_compare(machine, args, goals):
    c = compare_terms(args[1], args[2])
    symbol = mkatom("<" if c < 0 else ">" if c > 0 else "=")
    return _unify_or_fail(machine, args[0], symbol, goals)


# --------------------------------------------------------------------------
# type tests
# --------------------------------------------------------------------------

def _type_test(test):
    def builtin(machine, args, goals):
        return goals.next if test(deref(args[0])) else None

    return builtin


bi_var = _type_test(lambda t: isinstance(t, Var))
bi_nonvar = _type_test(lambda t: not isinstance(t, Var))
bi_atom = _type_test(lambda t: isinstance(t, Atom))
bi_number = _type_test(lambda t: isinstance(t, (int, float)))
bi_integer = _type_test(lambda t: isinstance(t, int))
bi_float = _type_test(lambda t: isinstance(t, float))
bi_atomic = _type_test(lambda t: isinstance(t, (Atom, int, float)))
bi_compound = _type_test(lambda t: isinstance(t, Struct))
bi_callable = _type_test(lambda t: isinstance(t, (Atom, Struct)))
bi_is_list = _type_test(is_proper_list)
bi_ground = _type_test(is_ground)


# --------------------------------------------------------------------------
# term construction / inspection
# --------------------------------------------------------------------------

def bi_functor(machine, args, goals):
    term = deref(args[0])
    if isinstance(term, Var):
        name = deref(args[1])
        arity = deref(args[2])
        if isinstance(arity, Var) or isinstance(name, Var):
            raise InstantiationError("functor/3")
        if not isinstance(arity, int):
            raise TypeError_("integer", arity)
        if arity == 0:
            return _unify_or_fail(machine, term, name, goals)
        if not isinstance(name, Atom):
            raise TypeError_("atom", name)
        fresh = Struct(name.name, tuple(Var() for _ in range(arity)))
        return _unify_or_fail(machine, term, fresh, goals)
    if isinstance(term, Struct):
        name, arity = mkatom(term.name), len(term.args)
    elif isinstance(term, Atom):
        name, arity = term, 0
    else:
        name, arity = term, 0
    mark = machine.trail.mark()
    if unify(args[1], name, machine.trail) and unify(args[2], arity, machine.trail):
        return goals.next
    machine.trail.undo_to(mark)
    return None


def bi_arg(machine, args, goals):
    n = deref(args[0])
    term = deref(args[1])
    if not isinstance(term, Struct):
        raise TypeError_("compound", term)
    if isinstance(n, int):
        if 1 <= n <= len(term.args):
            return _unify_or_fail(machine, args[2], term.args[n - 1], goals)
        return None
    if isinstance(n, Var):
        trail = machine.trail

        def thunk_for(index):
            def thunk():
                return unify(n, index + 1, trail) and unify(
                    args[2], term.args[index], trail
                )

            return thunk

        return _nondet(machine, (thunk_for(i) for i in range(len(term.args))), goals)
    raise TypeError_("integer", n)


def bi_univ(machine, args, goals):
    term = deref(args[0])
    if isinstance(term, Var):
        items = list_to_python(args[1])
        if not items:
            raise TypeError_("non-empty list", args[1])
        head = deref(items[0])
        if len(items) == 1:
            return _unify_or_fail(machine, term, head, goals)
        if not isinstance(head, Atom):
            raise TypeError_("atom functor", head)
        return _unify_or_fail(
            machine, term, Struct(head.name, tuple(items[1:])), goals
        )
    if isinstance(term, Struct):
        listed = make_list([mkatom(term.name), *term.args])
    else:
        listed = make_list([term])
    return _unify_or_fail(machine, args[1], listed, goals)


def bi_copy_term(machine, args, goals):
    return _unify_or_fail(machine, args[1], copy_term(args[0]), goals)


# --------------------------------------------------------------------------
# arithmetic builtins
# --------------------------------------------------------------------------

def bi_is(machine, args, goals):
    return _unify_or_fail(machine, args[0], arith_eval(args[1]), goals)


def _arith_cmp(op):
    def builtin(machine, args, goals):
        return goals.next if op(arith_eval(args[0]), arith_eval(args[1])) else None

    return builtin


def bi_between(machine, args, goals):
    low = arith_eval(args[0])
    high = arith_eval(args[1])
    x = deref(args[2])
    if isinstance(x, int):
        return goals.next if low <= x <= high else None
    trail = machine.trail

    def thunk_for(value):
        def thunk():
            return unify(x, value, trail)

        return thunk

    return _nondet(machine, (thunk_for(v) for v in range(low, high + 1)), goals)


def bi_succ(machine, args, goals):
    a = deref(args[0])
    b = deref(args[1])
    if isinstance(a, int):
        return _unify_or_fail(machine, b, a + 1, goals)
    if isinstance(b, int):
        if b <= 0:
            return None
        return _unify_or_fail(machine, a, b - 1, goals)
    raise InstantiationError("succ/2")


# --------------------------------------------------------------------------
# control
# --------------------------------------------------------------------------

def _make_call(machine, goal, extra, goals):
    target = _extend_goal(goal, extra) if extra else deref(goal)
    if isinstance(target, Var):
        raise InstantiationError("call/1")
    return Goals(target, goals.next, len(machine.cpstack))


def bi_call(machine, args, goals):
    return _make_call(machine, args[0], args[1:], goals)


def bi_naf(machine, args, goals):
    r"""``\+/1`` — SLDNF negation by failure (existential, no tables kept)."""
    goal = deref(args[0])
    if isinstance(goal, Var):
        raise InstantiationError("\\+/1")
    found = machine.nested_has_solution(goal, MODE_NEGATION)
    return None if found else goals.next


def _resolve_tabled_negation(machine, goal, context):
    """Common checks for tnot/e_tnot; returns the dereffed goal."""
    goal = deref(goal)
    if isinstance(goal, Var):
        raise InstantiationError(context)
    if not isinstance(goal, (Atom, Struct)):
        raise TypeError_("callable", goal)
    if not is_ground(goal):
        # A call to a non-ground negative literal flounders (footnote 1).
        raise NonStratifiedError(f"floundering: non-ground {context} call {goal!r}")
    name = goal.name
    arity = len(goal.args) if isinstance(goal, Struct) else 0
    pred = machine.engine.db.lookup(name, arity)
    if pred is None or not pred.tabled:
        raise TablingError(
            f"{context} requires a tabled predicate; {name}/{arity} is not tabled"
        )
    return goal


def bi_tnot(machine, args, goals):
    """SLG negation: completely evaluate the positive subgoal, keep its
    table, then succeed iff it has no answer (section 4.4)."""
    goal = _resolve_tabled_negation(machine, args[0], "tnot/1")
    tables = machine.engine.tables
    key = tables.call_key(goal)
    frame = tables.lookup_term(goal, key=key)
    if frame is not None and not frame.complete:
        raise NonStratifiedError(frame.indicator)
    if frame is None:
        machine.nested_drain(goal, MODE_NEGATION)
        frame = tables.lookup_term(goal, key=key)
    if frame is None or not frame.complete:
        raise TablingError(f"tnot/1: table for {goal!r} did not complete")
    return None if frame.has_unconditional_answer() else goals.next


def bi_e_tnot(machine, args, goals):
    """Existential Negation: stop the positive subgoal at its first
    answer and reclaim its tables (the tcut behaviour of section 4.4)."""
    goal = _resolve_tabled_negation(machine, args[0], "e_tnot/1")
    tables = machine.engine.tables
    frame = tables.lookup_term(goal)
    if frame is not None:
        if not frame.complete:
            raise NonStratifiedError(frame.indicator)
        return None if frame.has_unconditional_answer() else goals.next
    found = machine.nested_has_solution(goal, MODE_NEGATION)
    return None if found else goals.next


def bi_tcut(machine, args, goals):
    machine.tcut_to(goals.cutbar)
    return goals.next


def bi_forall(machine, args, goals):
    cond, action = args
    test = Struct(",", (cond, Struct("\\+", (action,))))
    found = machine.nested_has_solution(test, MODE_NEGATION)
    return None if found else goals.next


def bi_once(machine, args, goals):
    goal = deref(args[0])
    ite = Struct("->", (goal, mkatom("true")))
    return Goals(ite, goals.next, len(machine.cpstack))


def bi_ignore(machine, args, goals):
    goal = deref(args[0])
    ite = Struct(";", (Struct("->", (goal, mkatom("true"))), mkatom("true")))
    return Goals(ite, goals.next, len(machine.cpstack))


# --------------------------------------------------------------------------
# all-solutions
# --------------------------------------------------------------------------

def bi_findall(machine, args, goals):
    template, goal, out = args
    goal = deref(goal)
    if isinstance(goal, Var):
        raise InstantiationError("findall/3")
    collected = machine.nested_drain(
        goal, MODE_FINDALL, collect=lambda: copy_term(template)
    )
    return _unify_or_fail(machine, out, make_list(collected), goals)


def bi_tfindall(machine, args, goals):
    """``tfindall/3`` — findall that insists on a completed table.

    XSB suspends the caller until the table completes; with this
    engine's subordinate-run scheduling a fresh subgoal is completed by
    the nested run itself, so the only remaining case — the subgoal is
    in the caller's own SCC — is non-stratified aggregation and is
    rejected, mirroring the paper's stratification assumption.
    """
    template, goal, out = args
    goal = deref(goal)
    if isinstance(goal, Struct) or isinstance(goal, Atom):
        frame = machine.engine.tables.lookup_term(goal)
        if frame is not None and not frame.complete:
            raise NonStratifiedError(
                f"tfindall/3 on incomplete table {frame.indicator}"
            )
    return bi_findall(machine, args, goals)


def _collect_grouped(machine, template, goal):
    """Shared bagof/setof harness: strip ^-witnesses, find the free
    variables, and return [(free_key, free_tuple, value)] per solution."""
    witnesses = []
    inner = deref(goal)
    while isinstance(inner, Struct) and inner.name == "^" and len(inner.args) == 2:
        witnesses.append(inner.args[0])
        inner = deref(inner.args[1])
    bound = {id(v) for v in term_variables(template)}
    for witness in witnesses:
        bound.update(id(v) for v in term_variables(witness))
    free = [v for v in term_variables(inner) if id(v) not in bound]
    free_tuple = Struct("$free", tuple(free)) if free else mkatom("$free")

    def collect():
        return copy_term(Struct("-", (free_tuple, template)))

    solutions = machine.nested_drain(inner, MODE_FINDALL, collect=collect)
    groups = []
    index = {}
    for pair in solutions:
        free_part, value = pair.args
        key = canonical_key(free_part)
        slot = index.get(key)
        if slot is None:
            index[key] = len(groups)
            groups.append((free_part, [value]))
        else:
            groups[slot][1].append(value)
    return free_tuple, groups


def bi_bagof(machine, args, goals):
    template, goal, out = args
    free_tuple, groups = _collect_grouped(machine, template, goal)
    if not groups:
        return None
    trail = machine.trail

    def thunk_for(free_part, values):
        def thunk():
            return unify(free_tuple, free_part, trail) and unify(
                out, make_list(values), trail
            )

        return thunk

    return _nondet(
        machine, (thunk_for(fp, vs) for fp, vs in groups), goals
    )


def bi_setof(machine, args, goals):
    template, goal, out = args
    free_tuple, groups = _collect_grouped(machine, template, goal)
    if not groups:
        return None
    trail = machine.trail
    import functools

    def dedup_sort(values):
        values = sorted(values, key=functools.cmp_to_key(compare_terms))
        unique = []
        for value in values:
            if not unique or compare_terms(unique[-1], value) != 0:
                unique.append(value)
        return unique

    def thunk_for(free_part, values):
        def thunk():
            return unify(free_tuple, free_part, trail) and unify(
                out, make_list(dedup_sort(values)), trail
            )

        return thunk

    return _nondet(
        machine, (thunk_for(fp, vs) for fp, vs in groups), goals
    )


def bi_phrase2(machine, args, goals):
    """``phrase(Body, List)`` — run a grammar body over a whole list."""
    from ..lang.dcg import dcg_body_goal

    goal = dcg_body_goal(args[0], args[1], NIL)
    return Goals(goal, goals.next, len(machine.cpstack))


def bi_phrase3(machine, args, goals):
    """``phrase(Body, List, Rest)`` — difference-list grammar call."""
    from ..lang.dcg import dcg_body_goal

    goal = dcg_body_goal(args[0], args[1], args[2])
    return Goals(goal, goals.next, len(machine.cpstack))


def bi_aggregate_count(machine, args, goals):
    goal, out = args
    count = machine.nested_drain(deref(goal), MODE_FINDALL)
    return _unify_or_fail(machine, out, count, goals)


# --------------------------------------------------------------------------
# dynamic database
# --------------------------------------------------------------------------

def _assert(machine, term, front):
    term = copy_term(deref(term))
    machine.engine.db.add_clause_term(term, dynamic=True, front=front)


def bi_assertz(machine, args, goals):
    _assert(machine, args[0], front=False)
    return goals.next


def bi_asserta(machine, args, goals):
    _assert(machine, args[0], front=True)
    return goals.next


def _clause_spec(term):
    """Split an assert/retract argument into (head, body-or-None)."""
    term = deref(term)
    if isinstance(term, Struct) and term.name == ":-" and len(term.args) == 2:
        return deref(term.args[0]), deref(term.args[1])
    return term, None


def bi_retract(machine, args, goals):
    head, body = _clause_spec(args[0])
    if isinstance(head, Var):
        raise InstantiationError("retract/1")
    name = head.name
    arity = len(head.args) if isinstance(head, Struct) else 0
    pred = machine.engine.db.lookup(name, arity)
    if pred is None:
        return None
    call_args = head.args if isinstance(head, Struct) else ()
    candidates = list(pred.candidates(call_args))
    trail = machine.trail
    target_body = body if body is not None else mkatom("true")

    def thunk_for(clause):
        def thunk():
            if body is None and clause.body:
                # retract(Head) only matches facts (body `true`).
                return False
            clause_term = clause.to_term()
            if isinstance(clause_term, Struct) and clause_term.name == ":-":
                c_head, c_body = clause_term.args
            else:
                c_head, c_body = clause_term, mkatom("true")
            if not unify(c_head, head, trail):
                return False
            if body is not None and not unify(c_body, target_body, trail):
                return False
            return pred.remove_clause(clause)

        return thunk

    return _nondet(machine, (thunk_for(c) for c in candidates), goals)


def bi_retractall(machine, args, goals):
    head = deref(args[0])
    if isinstance(head, Var):
        raise InstantiationError("retractall/1")
    name = head.name
    arity = len(head.args) if isinstance(head, Struct) else 0
    pred = machine.engine.db.lookup(name, arity)
    if pred is None:
        machine.engine.db.declare_dynamic(name, arity)
        return goals.next
    call_args = head.args if isinstance(head, Struct) else ()
    seen = set()
    for arg in call_args:
        arg = deref(arg)
        if not isinstance(arg, Var) or id(arg) in seen:
            break
        seen.add(id(arg))
    else:
        # Fully open call: every clause head matches, so drop them
        # wholesale — one index rebuild, and a row-backed relation
        # empties its store in place instead of materializing clauses.
        pred.retract_all_clauses()
        return goals.next
    trail = machine.trail
    mark = trail.mark()
    for clause in list(pred.candidates(call_args)):
        clause_term = clause.to_term()
        c_head = (
            clause_term.args[0]
            if isinstance(clause_term, Struct) and clause_term.name == ":-"
            else clause_term
        )
        if unify(c_head, head, trail):
            pred.remove_clause(clause)
        trail.undo_to(mark)
    return goals.next


def bi_abolish(machine, args, goals):
    spec = deref(args[0])
    if (
        isinstance(spec, Struct)
        and spec.name == "/"
        and len(spec.args) == 2
    ):
        name = deref(spec.args[0])
        arity = deref(spec.args[1])
        if isinstance(name, Atom) and isinstance(arity, int):
            # Through the engine facade: abolishing a (possibly tabled)
            # predicate also drops its own and its dependents' completed
            # tables with targeted deletes.
            machine.engine.abolish_predicate(name.name, arity)
            return goals.next
    raise TypeError_("predicate indicator", spec)


def bi_clause(machine, args, goals):
    head = deref(args[0])
    if isinstance(head, Var):
        raise InstantiationError("clause/2")
    name = head.name
    arity = len(head.args) if isinstance(head, Struct) else 0
    pred = machine.engine.db.lookup(name, arity)
    if pred is None:
        return None
    call_args = head.args if isinstance(head, Struct) else ()
    trail = machine.trail

    def thunk_for(clause):
        def thunk():
            clause_term = clause.to_term()
            if isinstance(clause_term, Struct) and clause_term.name == ":-":
                c_head, c_body = clause_term.args
            else:
                c_head, c_body = clause_term, mkatom("true")
            return unify(c_head, head, trail) and unify(c_body, args[1], trail)

        return thunk

    return _nondet(
        machine, (thunk_for(c) for c in list(pred.candidates(call_args))), goals
    )


def bi_abolish_all_tables(machine, args, goals):
    machine.engine.abolish_all_tables()
    return goals.next


# --------------------------------------------------------------------------
# table inspection (XSB's get_calls / get_returns / table_state family)
# --------------------------------------------------------------------------

def _frame_for_spec(machine, spec, context):
    """Resolve a table spec — a subgoal id integer (from ``get_calls/2``)
    or a call term (looked up by variant) — to its frame, or None."""
    spec = deref(spec)
    tables = machine.engine.tables
    if isinstance(spec, int):
        for frame in tables.all_frames():
            if frame.seq == spec:
                return frame
        return None
    if isinstance(spec, (Atom, Struct)):
        return tables.lookup_term(spec)
    if isinstance(spec, Var):
        raise InstantiationError(context)
    raise TypeError_("callable or subgoal id", spec)


def bi_get_calls(machine, args, goals):
    """``get_calls(Call, Id)`` — enumerate the tabled subgoals.

    Backtracks through every subgoal frame in table space whose call
    term unifies with ``Call``, binding ``Id`` to the frame's stable
    sequence number (the handle ``get_returns/2`` and trace events use).
    A bound integer ``Id`` selects that one frame directly.
    """
    from .table import frame_call_term

    spec = deref(args[1])
    tables = machine.engine.tables
    frames = tables.all_frames()
    if isinstance(spec, int):
        frames = [frame for frame in frames if frame.seq == spec]
    trail = machine.trail

    def thunk_for(frame):
        def thunk():
            return unify(args[0], frame_call_term(frame), trail) and unify(
                args[1], frame.seq, trail
            )

        return thunk

    return _nondet(machine, (thunk_for(f) for f in frames), goals)


def bi_get_returns(machine, args, goals):
    """``get_returns(Table, Answer)`` — enumerate a table's answers.

    ``Table`` is a subgoal id from ``get_calls/2`` or a call term
    (located by variant); ``Answer`` unifies with each stored answer
    term in insertion order.  Ground answers unify in place (they are
    immune to backtracking); non-ground ones are freshly renamed per
    solution, exactly as answer resolution does.
    """
    frame = _frame_for_spec(machine, args[0], "get_returns/2")
    if frame is None:
        return None
    trail = machine.trail
    answers = frame.answers
    ground = frame.answer_ground

    def thunk_for(index):
        def thunk():
            answer = answers[index]
            if not ground[index]:
                answer = copy_term(answer)
            return unify(args[1], answer, trail)

        return thunk

    return _nondet(machine, (thunk_for(i) for i in range(len(answers))), goals)


def bi_table_state(machine, args, goals):
    """``table_state(Table, State)`` — one table's evaluation state.

    ``State`` is ``undefined`` (no variant in table space),
    ``incomplete(N)`` or ``complete(N)`` with ``N`` the current answer
    count — the inspection triple XSB's ``table_state`` family exposes.
    """
    frame = _frame_for_spec(machine, args[0], "table_state/2")
    if frame is None:
        state = mkatom("undefined")
    else:
        state = Struct(frame.state, (frame.answer_count(),))
    return _unify_or_fail(machine, args[1], state, goals)


def bi_trace_control(machine, args, goals):
    """``trace_control(Cmd)`` — drive the observability layer.

    ``on`` / ``off`` switch the tracer *and* profiler (new runs pick
    the change up — the current run's cached locals are deliberately
    left alone, mirroring the statistics contract); ``clear`` empties
    the ring buffer and the profile; ``dump(File)`` writes the buffered
    events as JSONL; ``chrome(File)`` writes Chrome trace-event JSON.
    """
    engine = machine.engine
    command = deref(args[0])
    if isinstance(command, Atom):
        if command.name == "on":
            engine.enable_trace()
            engine.enable_profile()
            return goals.next
        if command.name == "off":
            engine.disable_trace()
            engine.disable_profile()
            return goals.next
        if command.name == "clear":
            if engine.tracer is not None:
                engine.tracer.clear()
            if engine.profiler is not None:
                engine.profiler.clear()
            return goals.next
    elif isinstance(command, Struct) and len(command.args) == 1:
        target = deref(command.args[0])
        if command.name in ("dump", "chrome") and isinstance(target, Atom):
            if engine.tracer is None:
                raise TablingError(
                    f"trace_control({command.name}/1): tracing is not "
                    f"enabled; call trace_control(on) first"
                )
            if command.name == "dump":
                engine.write_trace_jsonl(target.name)
            else:
                engine.write_chrome_trace(target.name)
            return goals.next
    if isinstance(command, Var):
        raise InstantiationError("trace_control/1")
    raise TypeError_("trace_control command", command)


def bi_write_metrics(machine, args, goals):
    """``write_metrics(Format, File)`` — metrics exposition from the
    language.

    ``Format`` is the atom ``json`` or ``prometheus``; ``File`` an atom
    path.  Writes the engine's current metrics snapshot (latency /
    answer / table-space histograms with p50/p90/p99, stage span
    durations, subsystem counters).  Metrics must be enabled
    (``REPRO_METRICS=1``, ``Engine(metrics=True)``, or
    ``enable_metrics``); mirroring ``trace_control(dump(F))``, calling
    it on a metrics-less engine is an error, not a silent no-op.
    """
    engine = machine.engine
    fmt = deref(args[0])
    target = deref(args[1])
    if isinstance(fmt, Var) or isinstance(target, Var):
        raise InstantiationError("write_metrics/2")
    if not isinstance(fmt, Atom) or fmt.name not in ("json", "prometheus"):
        raise TypeError_("write_metrics format (json or prometheus)", fmt)
    if not isinstance(target, Atom):
        raise TypeError_("write_metrics file", target)
    if engine.metrics is None:
        raise TablingError(
            "write_metrics/2: metrics are not enabled; construct the "
            "engine with metrics=True or set REPRO_METRICS=1"
        )
    engine.write_metrics(target.name, fmt=fmt.name)
    return goals.next


def bi_statistics0(machine, args, goals):
    """``statistics/0`` — print every counter to the engine's output.

    A header line labels the block; engines in quiet mode (the REPL's
    ``--quiet``) suppress it so scripted output stays parseable.
    """
    from ..perf import STATISTIC_KEYS

    engine = machine.engine
    stats = engine.statistics()
    out = engine.output
    if not engine.quiet:
        out.write(f"% engine statistics ({len(STATISTIC_KEYS)} counters)\n")
    width = max(len(key) for key in STATISTIC_KEYS)
    for key in STATISTIC_KEYS:
        out.write(f"{key.ljust(width)}  {stats[key]}\n")
    return goals.next


def bi_statistics2(machine, args, goals):
    """``statistics(Key, Value)`` — one counter, or enumerate all.

    ``Key`` bound to a known counter name unifies ``Value`` with its
    current integer; an unbound ``Key`` backtracks through every
    counter in reporting order.
    """
    from ..perf import STATISTIC_KEYS

    key, value = deref(args[0]), args[1]
    stats = machine.engine.statistics()
    if isinstance(key, Atom):
        if key.name not in stats:
            raise TypeError_("statistics key", key)
        return _unify_or_fail(machine, value, stats[key.name], goals)
    if not isinstance(key, Var):
        raise TypeError_("atom", key)
    trail = machine.trail

    def thunk_for(name):
        def thunk():
            return unify(key, mkatom(name), trail) and unify(
                value, stats[name], trail
            )

        return thunk

    return _nondet(
        machine, (thunk_for(name) for name in STATISTIC_KEYS), goals
    )


# --------------------------------------------------------------------------
# atoms, lists, sorting, output
# --------------------------------------------------------------------------

def bi_atom_codes(machine, args, goals):
    a = deref(args[0])
    if isinstance(a, Atom):
        return _unify_or_fail(
            machine, args[1], make_list([ord(c) for c in a.name]), goals
        )
    if isinstance(a, (int, float)):
        return _unify_or_fail(
            machine, args[1], make_list([ord(c) for c in repr(a)]), goals
        )
    codes = list_to_python(args[1])
    text = "".join(chr(deref(c)) for c in codes)
    return _unify_or_fail(machine, a, mkatom(text), goals)


def bi_atom_chars(machine, args, goals):
    a = deref(args[0])
    if isinstance(a, Atom):
        return _unify_or_fail(
            machine, args[1], make_list([mkatom(c) for c in a.name]), goals
        )
    chars = list_to_python(args[1])
    text = "".join(deref(c).name for c in chars)
    return _unify_or_fail(machine, a, mkatom(text), goals)


def bi_atom_length(machine, args, goals):
    a = deref(args[0])
    if not isinstance(a, Atom):
        raise TypeError_("atom", a)
    return _unify_or_fail(machine, args[1], len(a.name), goals)


def bi_atom_concat(machine, args, goals):
    a, b, c = (deref(x) for x in args)
    if isinstance(a, Atom) and isinstance(b, Atom):
        return _unify_or_fail(machine, c, mkatom(a.name + b.name), goals)
    if not isinstance(c, Atom):
        raise InstantiationError("atom_concat/3")
    trail = machine.trail
    text = c.name

    def thunk_for(split):
        def thunk():
            return unify(a, mkatom(text[:split]), trail) and unify(
                b, mkatom(text[split:]), trail
            )

        return thunk

    return _nondet(machine, (thunk_for(i) for i in range(len(text) + 1)), goals)


def bi_number_codes(machine, args, goals):
    n = deref(args[0])
    if isinstance(n, (int, float)):
        return _unify_or_fail(
            machine, args[1], make_list([ord(c) for c in repr(n)]), goals
        )
    codes = list_to_python(args[1])
    text = "".join(chr(deref(c)) for c in codes)
    try:
        value = int(text)
    except ValueError:
        try:
            value = float(text)
        except ValueError as exc:
            raise TypeError_("number text", text) from exc
    return _unify_or_fail(machine, n, value, goals)


def bi_char_code(machine, args, goals):
    a = deref(args[0])
    if isinstance(a, Atom):
        return _unify_or_fail(machine, args[1], ord(a.name), goals)
    code = deref(args[1])
    if isinstance(code, int):
        return _unify_or_fail(machine, a, mkatom(chr(code)), goals)
    raise InstantiationError("char_code/2")


def bi_length(machine, args, goals):
    lst = deref(args[0])
    n = deref(args[1])
    if is_proper_list(lst):
        return _unify_or_fail(machine, n, len(list_to_python(lst)), goals)
    if isinstance(n, int):
        fresh = make_list([Var() for _ in range(n)])
        return _unify_or_fail(machine, lst, fresh, goals)
    raise InstantiationError("length/2")


def _sort_terms(items, dedup):
    import functools

    items = sorted(items, key=functools.cmp_to_key(compare_terms))
    if not dedup:
        return items
    unique = []
    for item in items:
        if not unique or compare_terms(unique[-1], item) != 0:
            unique.append(item)
    return unique


def bi_sort(machine, args, goals):
    items = list_to_python(args[0])
    return _unify_or_fail(
        machine, args[1], make_list(_sort_terms(items, dedup=True)), goals
    )


def bi_msort(machine, args, goals):
    items = list_to_python(args[0])
    return _unify_or_fail(
        machine, args[1], make_list(_sort_terms(items, dedup=False)), goals
    )


def _write(machine, term, quoted):
    from ..lang.writer import term_to_str

    machine.engine.output.write(
        term_to_str(term, machine.engine.operators, quoted=quoted)
    )


def bi_write(machine, args, goals):
    _write(machine, args[0], quoted=False)
    return goals.next


def bi_print(machine, args, goals):
    _write(machine, args[0], quoted=False)
    return goals.next


def bi_writeq(machine, args, goals):
    _write(machine, args[0], quoted=True)
    return goals.next


def bi_write_canonical(machine, args, goals):
    from ..lang.writer import term_to_str

    machine.engine.output.write(
        term_to_str(args[0], machine.engine.operators, quoted=True,
                    hilog_notation=False)
    )
    return goals.next


def bi_nl(machine, args, goals):
    machine.engine.output.write("\n")
    return goals.next


def bi_writeln(machine, args, goals):
    _write(machine, args[0], quoted=False)
    machine.engine.output.write("\n")
    return goals.next


def bi_tab(machine, args, goals):
    machine.engine.output.write(" " * arith_eval(args[0]))
    return goals.next


def bi_halt(machine, args, goals):
    raise SystemExit(0)


# --------------------------------------------------------------------------
# registry
# --------------------------------------------------------------------------

def default_registry():
    registry = {
        ("=", 2): bi_unify,
        ("\\=", 2): bi_not_unify,
        ("==", 2): bi_struct_eq,
        ("\\==", 2): bi_struct_neq,
        ("@<", 2): _ordering(lambda c: c < 0),
        ("@>", 2): _ordering(lambda c: c > 0),
        ("@=<", 2): _ordering(lambda c: c <= 0),
        ("@>=", 2): _ordering(lambda c: c >= 0),
        ("compare", 3): bi_compare,
        ("var", 1): bi_var,
        ("nonvar", 1): bi_nonvar,
        ("atom", 1): bi_atom,
        ("number", 1): bi_number,
        ("integer", 1): bi_integer,
        ("float", 1): bi_float,
        ("atomic", 1): bi_atomic,
        ("compound", 1): bi_compound,
        ("callable", 1): bi_callable,
        ("is_list", 1): bi_is_list,
        ("ground", 1): bi_ground,
        ("functor", 3): bi_functor,
        ("arg", 3): bi_arg,
        ("=..", 2): bi_univ,
        ("copy_term", 2): bi_copy_term,
        ("is", 2): bi_is,
        ("=:=", 2): _arith_cmp(lambda a, b: a == b),
        ("=\\=", 2): _arith_cmp(lambda a, b: a != b),
        ("<", 2): _arith_cmp(lambda a, b: a < b),
        (">", 2): _arith_cmp(lambda a, b: a > b),
        ("=<", 2): _arith_cmp(lambda a, b: a <= b),
        (">=", 2): _arith_cmp(lambda a, b: a >= b),
        ("between", 3): bi_between,
        ("succ", 2): bi_succ,
        ("\\+", 1): bi_naf,
        ("not", 1): bi_naf,
        ("tnot", 1): bi_tnot,
        ("e_tnot", 1): bi_e_tnot,
        ("tcut", 0): bi_tcut,
        ("forall", 2): bi_forall,
        ("once", 1): bi_once,
        ("ignore", 1): bi_ignore,
        ("findall", 3): bi_findall,
        ("tfindall", 3): bi_tfindall,
        ("bagof", 3): bi_bagof,
        ("setof", 3): bi_setof,
        ("aggregate_count", 2): bi_aggregate_count,
        ("phrase", 2): bi_phrase2,
        ("phrase", 3): bi_phrase3,
        ("assert", 1): bi_assertz,
        ("assertz", 1): bi_assertz,
        ("asserta", 1): bi_asserta,
        ("retract", 1): bi_retract,
        ("retractall", 1): bi_retractall,
        ("abolish", 1): bi_abolish,
        ("clause", 2): bi_clause,
        ("abolish_all_tables", 0): bi_abolish_all_tables,
        ("get_calls", 2): bi_get_calls,
        ("get_returns", 2): bi_get_returns,
        ("table_state", 2): bi_table_state,
        ("trace_control", 1): bi_trace_control,
        ("write_metrics", 2): bi_write_metrics,
        ("statistics", 0): bi_statistics0,
        ("statistics", 2): bi_statistics2,
        ("atom_codes", 2): bi_atom_codes,
        ("atom_chars", 2): bi_atom_chars,
        ("atom_length", 2): bi_atom_length,
        ("atom_concat", 3): bi_atom_concat,
        ("number_codes", 2): bi_number_codes,
        ("char_code", 2): bi_char_code,
        ("length", 2): bi_length,
        ("sort", 2): bi_sort,
        ("msort", 2): bi_msort,
        ("write", 1): bi_write,
        ("print", 1): bi_print,
        ("writeq", 1): bi_writeq,
        ("write_canonical", 1): bi_write_canonical,
        ("nl", 0): bi_nl,
        ("writeln", 1): bi_writeln,
        ("tab", 1): bi_tab,
        ("halt", 0): bi_halt,
    }
    for n in range(1, 9):
        registry[("call", n)] = bi_call
    return registry
