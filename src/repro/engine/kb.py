"""The shared knowledge base: everything many sessions may consult.

The paper's deductive-database claim rests on a split XSB makes
architecturally (and Swift & Warren's later overview states outright):
the *table space* is an immutable store of completed relations that any
evaluation may consult, while SLG execution state — choice points,
suspensions, the trail — belongs to exactly one in-flight evaluation.
:class:`SharedKB` is that split made explicit.  It owns the program
database and its analysis registry, the operator table, the module
system, the builtin registry, the table space of completed subgoal
frames, and the incremental maintainer — everything that is either
immutable between mutations or stamped by the store layer's generation
counter.  A :class:`~repro.engine.session.Session` owns everything
else.

Concurrency discipline (active only after :meth:`enable_concurrency`;
a plain single-session :class:`~repro.engine.Engine` never pays for
any of it):

* **Readers–writer lock** (:class:`RWLock`).  A query holds the read
  side for its whole evaluation, so it sees one consistent cut of the
  clause database and the table space.  Mutations — assert, retract,
  consult, declarations, the incremental flush — run under the write
  side, which excludes every reader: snapshot isolation at query
  granularity, pinned by the store layer's mutation generation.
* **Evaluation lock** (``eval_lock``).  Completed tables are immutable
  outside the write lock, so a variant hit on one is served with *no*
  lock beyond the read side — the free cross-session answer set the
  ROADMAP promises.  Generating a new table (or consuming an
  incomplete one) serializes on this reentrant lock: all incomplete
  frames in the shared space therefore belong to the lock holder,
  which is exactly the invariant the SLG completion machinery already
  assumes within one run.
* **Upgrade ban.**  Acquiring the write side while holding only the
  read side raises instead of deadlocking.  A goal that tries to
  mutate the shared database mid-query in concurrent mode gets a
  clear error pointing at session-local predicates or the service's
  mutation commands.

Lock order is read → eval and never the reverse of anything; writers
take only the write side.  Both facts together give deadlock freedom.
"""

from __future__ import annotations

import threading
import weakref

from ..lang.ops import OperatorTable
from ..modules import ModuleSystem
from .builtins import default_registry
from .database import Database
from .table import TableSpace

__all__ = ["RWLock", "SharedKB"]


class RWLock:
    """A reentrant readers–writer lock with writer preference.

    Reentrancy rules, chosen for the engine's call shapes:

    * a thread may nest read acquisitions (queries start queries via
      ``findall`` and friends);
    * a thread holding the *write* side may acquire the read side —
      a no-op depth bump — so consult-time directives can run queries;
    * a thread holding only the *read* side may **not** acquire the
      write side: upgrading deadlocks two upgraders, so it raises
      ``RuntimeError`` immediately instead.

    Writer preference: once a writer is waiting, new first-entry
    readers queue behind it, so a mutation burst cannot be starved by
    a stream of queries.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = {}        # thread ident -> read depth
        self._writer = None       # thread ident of the writer, or None
        self._writer_depth = 0
        self._writers_waiting = 0

    def acquire_read(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._writers_waiting:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self):
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if not depth:
                raise RuntimeError("release_read without a matching acquire")
            if depth > 1:
                self._readers[me] = depth - 1
                return
            del self._readers[me]
            if not self._readers:
                self._cond.notify_all()

    def acquire_write(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "cannot mutate the shared knowledge base from inside a "
                    "running query (read->write upgrade); use session-local "
                    "predicates or the service's mutation commands"
                )
            self._writers_waiting += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self):
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write without a matching acquire")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def read_held(self):
        return threading.get_ident() in self._readers

    def write_held(self):
        return self._writer == threading.get_ident()


class SharedKB:
    """One knowledge base, any number of sessions.

    Construction is exactly the shared half of the old ``Engine``
    constructor; a session created against the KB layers its own trail,
    counters and observability on top.  ``concurrent`` stays False for
    a plain single-session engine — every hot-path site that would pay
    for locking tests that one flag (or a value derived from it once
    per run) first.
    """

    def __init__(self, answer_store="hash", subgoal_index="dict"):
        if answer_store not in ("hash", "trie"):
            raise ValueError("answer_store must be 'hash' or 'trie'")
        self.db = Database()
        self.tables = TableSpace(
            use_trie=(answer_store == "trie"), subgoal_index=subgoal_index
        )
        self.builtins = default_registry()
        self.operators = OperatorTable()
        self.modules = ModuleSystem()
        self.hilog_symbols = self.db.hilog_symbols
        self.answer_store = answer_store
        self.subgoal_index = subgoal_index
        # Installed by the owning Engine when incremental maintenance
        # is on (the maintainer needs a session for its counters).
        self.incremental = None
        self.lock = RWLock()
        self.eval_lock = threading.RLock()
        self.concurrent = False
        self._sessions = weakref.WeakValueDictionary()
        self._next_sid = 0
        self._sid_lock = threading.Lock()

    # -- session registry ---------------------------------------------------

    def register(self, session):
        """Assign a session id and track the session (weakly)."""
        with self._sid_lock:
            sid = self._next_sid
            self._next_sid = sid + 1
            self._sessions[sid] = session
        return sid

    def sessions(self):
        """Live sessions, oldest first (for ``:sessions`` and gauges)."""
        with self._sid_lock:
            return [s for _, s in sorted(self._sessions.items())]

    def sessions_active(self):
        with self._sid_lock:
            return len(self._sessions)

    # -- concurrency --------------------------------------------------------

    def enable_concurrency(self):
        """Switch the KB into shared (locked) mode.

        Monotonic: once on, stays on.  The database's write guard
        rejects mutations made outside the write lock from then on, so
        every mutation path must go through a session's locked
        wrappers (they all check ``kb.concurrent``).
        """
        if not self.concurrent:
            self.concurrent = True
            self.db.set_write_guard(self._check_write)
        return self

    def _check_write(self):
        """Database mutation hook: writers must hold the write lock."""
        if not self.lock.write_held():
            if self.lock.read_held():
                raise RuntimeError(
                    "cannot mutate the shared knowledge base from inside a "
                    "running query in concurrent mode; declare the "
                    "predicate session-local or use a mutation command"
                )
            raise RuntimeError(
                "shared knowledge base mutated without the write lock; "
                "use the Session mutation methods in concurrent mode"
            )

    def flush_if_dirty(self):
        """Drain pending incremental deltas under the write lock.

        Called by a session's locked query path before it takes the
        read side, so the clause database and the table space it then
        reads are one consistent cut.  The caller loops: between our
        release and its read acquisition another mutation may land.
        """
        maintainer = self.incremental
        if maintainer is None or not maintainer.dirty:
            return False
        self.lock.acquire_write()
        try:
            if maintainer.dirty:
                maintainer.flush()
        finally:
            self.lock.release_write()
        return True

    def shared_hit_ratio(self):
        """Fraction of subgoal hits served from another session's
        completed table, summed over live sessions (a gauge for the
        Prometheus exposition)."""
        hits = 0
        shared = 0
        for session in self.sessions():
            stats = session.stats
            hits += stats.subgoal_hits
            shared += stats.table_hit_shared
        if hits <= 0:
            return 0.0
        return shared / hits

    def __repr__(self):
        return (
            f"<SharedKB {self.db.user_clause_count()} clauses, "
            f"{self.tables.frame_count()} tables, "
            f"{self.sessions_active()} session(s), "
            f"{'concurrent' if self.concurrent else 'single'}>"
        )
