"""Per-session evaluation state over a shared knowledge base.

A :class:`Session` is the mutable half of the Engine split: its own
trail, perf counters, observability stack (tracer / profiler / span
recorder / metrics registry), configuration flags, and — optionally —
session-local dynamic predicates layered over the shared database.
Everything it *consults* (clauses, analysis, completed tables,
operators, modules, builtins) lives in the :class:`~repro.engine.kb.
SharedKB` it was created against and is aliased as plain attributes,
so the SLG machine's hot path reads ``engine.db`` / ``engine.tables``
exactly as it always has.

Concurrency (active only when ``kb.concurrent``; a plain
single-session :class:`~repro.engine.Engine` pays one flag test per
query):

* every query runs under the KB's read lock for its whole life, after
  a consistent-read loop that drains any pending incremental deltas
  under the write lock first — the clause database and the table
  space a query sees are one cut, pinned by the store layer's
  mutation generation;
* every mutation method wraps itself in the write lock and marks the
  session *exclusive* for its duration, so consult-time directives
  and update goals (assert/retract builtins) run on the plain
  single-threaded paths while holding exclusivity;
* a session that declares local predicates trades the shared table
  space for a private one (``tables_shared = False``): local
  definitions may change what any subgoal derives, so sharing its
  tables would poison other sessions.  The private space is
  conservatively abolished whenever the global mutation generation
  moves.

Session-local dynamic predicates (:meth:`Session.local_dynamic`) may
not shadow shared predicates — a fresh name only.  That keeps the
shared analysis registry, the hybrid planner and the lock-free
completed-table probe all sound without consulting session state.
"""

from __future__ import annotations

import os
import sys

from ..errors import ParseError, ReproError, StorageError
from ..lang.parser import Parser
from ..terms import (
    Atom,
    Struct,
    Trail,
    Var,
    deref,
    is_proper_list,
    list_to_python,
    make_list,
    mkatom,
    resolve,
)
from ..obs import (
    MetricsRegistry,
    Profiler,
    SpanRecorder,
    SubgoalRegistry,
    Tracer,
)
from ..obs.spans import (
    STAGE_CONSULT,
    STAGE_PARSE,
    STAGE_SLG,
)
from ..perf import EngineStats
from ..terms.rename import copy_term
from .clause import Clause
from .database import Predicate, mutation_generation
from .machine import MODE_QUERY, Machine
from .table import TableSpace, frame_call_term

__all__ = [
    "Session",
    "SessionDatabase",
    "python_to_term",
    "term_to_python",
]


def python_to_term(value):
    """Convert a Python value to a term: str -> atom, int/float kept,
    list/tuple -> Prolog list, terms passed through."""
    if isinstance(value, (Atom, Struct, Var, int, float)):
        return value
    if isinstance(value, str):
        return mkatom(value)
    if isinstance(value, (list, tuple)):
        return make_list([python_to_term(v) for v in value])
    raise TypeError(f"cannot convert {value!r} to a term")


def term_to_python(term):
    """Convert a term to a Python value: atoms -> str, numbers kept,
    proper lists -> list; other terms are returned resolved."""
    term = deref(term)
    if isinstance(term, Atom):
        if term.name == "[]":
            return []
        return term.name
    if isinstance(term, (int, float)):
        return term
    if isinstance(term, Struct) and is_proper_list(term):
        return [term_to_python(item) for item in list_to_python(term)]
    return resolve(term)


class _ChainedPredicates:
    """``predicates`` view merging session-local predicates over the
    shared dict.  Locals never shadow (enforced at declaration), so
    probe order is a pure disjoint union; the machine's per-call
    ``predicates.get(key)`` costs one extra dict probe only in
    sessions that actually declared locals."""

    __slots__ = ("local", "shared")

    def __init__(self, local, shared):
        self.local = local
        self.shared = shared

    def get(self, key, default=None):
        pred = self.local.get(key)
        if pred is not None:
            return pred
        return self.shared.get(key, default)

    def __getitem__(self, key):
        pred = self.get(key)
        if pred is None:
            raise KeyError(key)
        return pred

    def __contains__(self, key):
        return key in self.local or key in self.shared

    def __iter__(self):
        yield from self.local
        for key in self.shared:
            if key not in self.local:
                yield key

    def __len__(self):
        return len(self.local) + len(self.shared)

    def keys(self):
        return list(self)

    def values(self):
        return [self[key] for key in self]

    def items(self):
        return [(key, self[key]) for key in self]


class SessionDatabase:
    """The database a session with local predicates sees.

    Duck-types the read surface of :class:`~repro.engine.database.
    Database` (``predicates`` / ``lookup`` / ``analysis`` / ...), and
    routes mutations: a key declared session-local lands in the
    private dict (no lock, no delta sink — local code is invisible to
    the shared maintainer), anything else delegates to the shared
    database, whose write guard enforces the lock discipline in
    concurrent mode.
    """

    def __init__(self, session, shared):
        self.session = session
        self.shared = shared
        self.local = {}
        self.predicates = _ChainedPredicates(self.local, shared.predicates)
        self.hilog_symbols = shared.hilog_symbols
        self.analysis = shared.analysis

    @property
    def delta_sink(self):
        return self.shared.delta_sink

    def declare_local(self, name, arity):
        key = (name, arity)
        pred = self.local.get(key)
        if pred is not None:
            return pred
        if key in self.shared.predicates:
            raise ReproError(
                f"{name}/{arity} exists in the shared database; "
                f"session-local predicates may not shadow shared ones"
            )
        pred = Predicate(name, arity, dynamic=True)
        self.local[key] = pred
        return pred

    def lookup(self, name, arity):
        return self.predicates.get((name, arity))

    def ensure(self, name, arity, dynamic=False):
        pred = self.local.get((name, arity))
        if pred is not None:
            return pred
        return self.shared.ensure(name, arity, dynamic=dynamic)

    def add_clause_term(self, term, dynamic=False, front=False):
        from .clause import compile_clause

        clause = compile_clause(term)
        pred = self.local.get((clause.name, clause.arity))
        if pred is not None:
            pred.add_clause(clause, front=front)
            return clause
        return self.shared.add_clause_term(term, dynamic=dynamic, front=front)

    def declare_tabled(self, name, arity):
        if (name, arity) in self.local:
            raise ReproError(
                f"{name}/{arity} is session-local; local predicates "
                f"cannot be tabled"
            )
        self.shared.declare_tabled(name, arity)

    def declare_dynamic(self, name, arity):
        if (name, arity) in self.local:
            return
        self.shared.declare_dynamic(name, arity)

    def abolish(self, name, arity):
        if self.local.pop((name, arity), None) is not None:
            return
        self.shared.abolish(name, arity)

    def set_delta_sink(self, sink):
        self.shared.set_delta_sink(sink)

    def all_predicates(self):
        return list(self.local.values()) + self.shared.all_predicates()

    def user_clause_count(self):
        return sum(len(p) for p in self.local.values()) + \
            self.shared.user_clause_count()


class Session:
    """One client's evaluation context over a shared knowledge base.

    Constructed against a :class:`~repro.engine.kb.SharedKB`;
    :class:`~repro.engine.Engine` is the subclass that builds its own
    KB, preserving the historical single-object constructor.  Flag
    parameters follow the Engine constructor's documentation; a
    sibling session (:meth:`session`) inherits the creator's flags.
    """

    def __init__(
        self,
        kb,
        unknown="error",
        hilog_specialize=True,
        output=None,
        statistics=True,
        hybrid=None,
        compile=None,
        compile_warmup=None,
        trace=None,
        profile=None,
        metrics=None,
        objcache=None,
        objcache_dir=None,
    ):
        self.kb = kb
        self.db = kb.db
        self.tables = kb.tables
        self.trail = Trail()
        self.builtins = kb.builtins
        self.operators = kb.operators
        self.modules = kb.modules
        self.hilog_symbols = kb.hilog_symbols
        self.incremental = kb.incremental
        self.stats = EngineStats(enabled=statistics)
        self.unknown = unknown
        if hybrid is None:
            hybrid = os.environ.get("REPRO_HYBRID", "1").lower() not in (
                "0", "false", "off"
            )
        self.hybrid = bool(hybrid)
        if compile is None:
            compile = os.environ.get("REPRO_COMPILE", "1").lower() not in (
                "0", "false", "off"
            )
        self.compile = bool(compile)
        if compile_warmup is None:
            compile_warmup = int(os.environ.get("REPRO_COMPILE_WARMUP", "64"))
        self.compile_warmup = compile_warmup
        self.hilog_specialize = hilog_specialize
        if objcache is None:
            objcache = os.environ.get("REPRO_OBJCACHE", "1").lower() not in (
                "0", "false", "off"
            )
        self.objcache = bool(objcache)
        self.objcache_dir = objcache_dir
        self.output = output if output is not None else sys.stdout
        self.quiet = False
        if trace is None:
            raw = os.environ.get("REPRO_TRACE", "0").lower()
            if raw in ("0", "false", "off", ""):
                trace = False
            else:
                try:
                    trace = int(raw)
                except ValueError:
                    trace = True
        if profile is None:
            profile = bool(trace)
        self._obs_registry = SubgoalRegistry(render=self._render_subgoal)
        self.tracer = None
        self.profiler = None
        self.spans = None
        if metrics is None:
            metrics = os.environ.get("REPRO_METRICS", "0").lower() not in (
                "0", "false", "off", ""
            )
        self.metrics = MetricsRegistry() if metrics else None
        if trace:
            self.enable_trace(
                capacity=trace if isinstance(trace, int)
                and not isinstance(trace, bool) and trace > 1 else None
            )
        if profile:
            self.enable_profile()
        if self.metrics is not None:
            self._ensure_spans()
        self.counting = False
        self.call_counts = {}
        self.log_subgoals = False
        self.subgoal_log = []
        # Concurrency state: queries consult the shared table space
        # until the first local-predicate declaration trades it for a
        # private one; ``_exclusive`` marks "running under the write
        # lock" so nested work takes the plain single-threaded paths.
        self.tables_shared = True
        self._exclusive = False
        self._tables_gen = mutation_generation()
        self.queries = 0
        self.sid = kb.register(self)

    # -- the shared/locked discipline ---------------------------------------

    @property
    def shared_slg(self):
        """Should a machine run under the shared-table discipline
        (lock-free completed-variant probe + evaluation lock)?  Read
        once per machine construction."""
        return self.kb.concurrent and self.tables_shared \
            and not self._exclusive

    def _acquire_query_read(self):
        """The consistent-read loop: take the read lock with no
        pending incremental deltas outstanding, so the clause database
        and the table space are one generation-consistent cut."""
        kb = self.kb
        lock = kb.lock
        maintainer = kb.incremental
        while True:
            lock.acquire_read()
            if maintainer is None or not maintainer.dirty:
                return
            lock.release_read()
            kb.flush_if_dirty()

    def _write_locked(self, thunk):
        """Run a mutation under the KB write lock, exclusively."""
        lock = self.kb.lock
        lock.acquire_write()
        exclusive = self._exclusive
        self._exclusive = True
        try:
            return thunk()
        finally:
            self._exclusive = exclusive
            lock.release_write()

    def _sync_private_tables(self):
        """Wholesale-invalidate the private table space when the global
        mutation generation moved: local predicates have no delta sink,
        so the private space lives under the pre-incremental contract."""
        gen = mutation_generation()
        if gen != self._tables_gen:
            self.tables.abolish_all()
            self._tables_gen = gen

    def session(self, **overrides):
        """A sibling session over the same knowledge base, inheriting
        this session's flags (override any by keyword)."""
        kwargs = {
            "unknown": self.unknown,
            "hilog_specialize": self.hilog_specialize,
            "statistics": self.stats.enabled,
            "hybrid": self.hybrid,
            "compile": self.compile,
            "compile_warmup": self.compile_warmup,
            "trace": False,
            "profile": False,
            "metrics": self.metrics is not None,
            "objcache": self.objcache,
            "objcache_dir": self.objcache_dir,
        }
        kwargs.update(overrides)
        return Session(self.kb, **kwargs)

    def local_dynamic(self, name, arity):
        """Declare a session-local dynamic predicate (a fresh name —
        shadowing a shared predicate raises).  The first local
        declaration trades the shared table space for a private one:
        local definitions may change what any subgoal derives, so this
        session's tables must not be consulted by other sessions."""
        if not isinstance(self.db, SessionDatabase):
            self.db = SessionDatabase(self, self.kb.db)
        pred = self.db.declare_local(name, arity)
        if self.tables_shared:
            self.tables = TableSpace(
                use_trie=(self.kb.answer_store == "trie"),
                subgoal_index=self.kb.subgoal_index,
            )
            self.tables_shared = False
            self._tables_gen = mutation_generation()
        return pred

    # -- loading ---------------------------------------------------------------

    def consult_string(self, text):
        """Consult program text (clauses and directives)."""
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(lambda: self.consult_string(text))
        from ..lang.reader import ProgramReader

        spans = self.spans
        token = (
            spans.begin(STAGE_CONSULT, label="consult:<string>")
            if spans is not None else None
        )
        try:
            ProgramReader(self).consult(text)
        finally:
            if spans is not None:
                spans.end(token)
        return self

    def consult_file(self, path):
        """Consult a source file, through the consult cache when on.

        With ``objcache`` enabled this is the object-file load of
        section 4.6: the file's content hash names a cache entry, a
        hit replays pre-compiled clauses and recorded load-time
        effects, a miss compiles from source and writes the entry for
        next time.  Behavior is identical either way — only the work
        skipped differs.
        """
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(lambda: self.consult_file(path))
        if self.objcache:
            from ..storage.objcache import consult_file_cached

            spans = self.spans
            token = (
                spans.begin(STAGE_CONSULT, label=f"consult:{path}")
                if spans is not None else None
            )
            try:
                return consult_file_cached(
                    self, path, cache_dir=self.objcache_dir
                )
            finally:
                if spans is not None:
                    spans.end(token)
        with open(path, "r", encoding="utf-8") as handle:
            return self.consult_string(handle.read())

    def add_fact(self, name, *args, dynamic=True, front=False):
        """Fast-path insertion of one ground fact, bypassing the parser.

        This is the analog of the formatted read + assert of section
        4.6: arguments are Python values (str -> atom) and the fact is
        compiled and indexed directly.
        """
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(
                lambda: self.add_fact(name, *args, dynamic=dynamic,
                                      front=front)
            )
        terms = tuple(python_to_term(a) for a in args)
        clause = Clause(name, terms, (), 0)
        pred = self.db.ensure(name, len(terms), dynamic=dynamic)
        pred.dynamic = pred.dynamic or dynamic
        pred.add_clause(clause, front=front)
        return clause

    def add_facts(self, name, rows, dynamic=True):
        """Bulk-insert ground facts from an iterable of tuples.

        The predicate lookup is hoisted out of the loop (keyed per
        arity, since rows may in principle vary), so bulk loading pays
        one database probe per relation rather than one per fact.
        """
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(
                lambda: self.add_facts(name, rows, dynamic=dynamic)
            )
        count = 0
        preds = {}
        for row in rows:
            terms = tuple(python_to_term(a) for a in row)
            pred = preds.get(len(terms))
            if pred is None:
                pred = self.db.ensure(name, len(terms), dynamic=dynamic)
                pred.dynamic = pred.dynamic or dynamic
                preds[len(terms)] = pred
            pred.add_clause(Clause(name, terms, (), 0))
            count += 1
        return count

    def bulk_add_facts(
        self, name, arity, rows, dynamic=True, backend=None,
        materialize="rows",
    ):
        """Set-at-a-time installation of one relation's ground facts.

        ``rows`` is any iterable (consumed once, so a generator
        streams) of tuples in the frozen row domain (str for atoms,
        int/float for numbers, nested tuples for ground structures —
        the same values :func:`repro.store.freeze_term` produces).
        The whole batch costs one database probe, one mutation stamp
        and one index build, against one of each *per fact* on the
        :meth:`add_facts` path — that gap is the ingest half of
        section 4.6's 12x.  A wrong-arity row raises
        :class:`~repro.errors.StorageError` mid-stream; rows before it
        may already be installed.

        With ``materialize="rows"`` (default) a previously empty
        predicate keeps the batch as a
        :class:`~repro.store.TupleStore` and serves clause heads as
        lazy row views; ``"clauses"`` materializes
        :class:`~repro.engine.clause.Clause` objects eagerly.
        ``backend`` picks the store backend (``REPRO_TUPLESTORE`` when
        ``None``), e.g. ``"disk"`` for the mmap-backed on-disk store.
        """
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(
                lambda: self.bulk_add_facts(
                    name, arity, rows, dynamic=dynamic, backend=backend,
                    materialize=materialize,
                )
            )

        def checked(batch):
            for row in batch:
                row = tuple(row)
                if len(row) != arity:
                    raise StorageError(
                        f"{name}/{arity}: bulk fact row has arity "
                        f"{len(row)}"
                    )
                yield row

        pred = self.db.ensure(name, arity, dynamic=dynamic)
        pred.dynamic = pred.dynamic or dynamic
        added = pred.extend_facts(
            checked(rows), backend=backend, materialize=materialize
        )
        stats = self.stats
        if stats.enabled:
            stats.load_bulk_facts += added
            stats.load_bulk_batches += 1
        spans = self.spans
        if spans is not None:
            from ..obs import EV_BULK_INGEST

            spans.point(
                EV_BULK_INGEST, label=f"bulk:{name}/{arity}", detail=added
            )
            spans.observe("bulk_ingest_rows", added)
        return added

    def assertz(self, text):
        """Assert one clause given as source text (dynamic code)."""
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(lambda: self.assertz(text))
        term = self.parse(text)
        from ..hilog import hilog_encode

        self.db.add_clause_term(
            hilog_encode(term, self.hilog_symbols), dynamic=True
        )
        return self

    def load_library(self):
        """Consult the bundled list/set library (member/2, append/3,
        reverse/2, select/3, set operations, maplist/foldl, ...)."""
        from ..lib import load_library

        return load_library(self)

    def run_update(self, goal):
        """Run a goal that may mutate the shared database (assert/
        retract builtins) under the write lock in concurrent mode —
        the query service's mutation command.  Returns True on
        success, like :meth:`run_goal`."""
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(lambda: self.run_update(goal))
        if isinstance(goal, str):
            goal, _ = self._goal_and_vars(goal)
        return self.run_goal(goal)

    # -- declarations ------------------------------------------------------------

    def table(self, name, arity):
        """Declare a predicate tabled (``:- table name/arity.``)."""
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(lambda: self.table(name, arity))
        self.db.declare_tabled(name, arity)
        return self

    def dynamic(self, name, arity):
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(lambda: self.dynamic(name, arity))
        self.db.declare_dynamic(name, arity)
        return self

    def index(self, name, arity, field_sets, bucket_count=0):
        """Declare hash indexing, e.g. ``index('p', 5, [1, 2, (3, 5)])``."""
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(
                lambda: self.index(name, arity, field_sets,
                                   bucket_count=bucket_count)
            )
        normalized = [
            (fields,) if isinstance(fields, int) else tuple(fields)
            for fields in field_sets
        ]
        self.db.ensure(name, arity).set_hash_index(
            normalized, bucket_count=bucket_count
        )
        return self

    def index_trie(self, name, arity):
        """Declare first-string (trie) indexing for a static predicate."""
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(lambda: self.index_trie(name, arity))
        self.db.ensure(name, arity).set_trie_index()
        return self

    # -- querying --------------------------------------------------------------------

    def parse(self, text):
        """Parse a single term using this engine's operator table."""
        from ..lang.parser import parse_term

        return parse_term(text, self.operators)

    def _goal_and_vars(self, goal):
        if isinstance(goal, str):
            text = goal if goal.rstrip().endswith(".") else goal + " ."
            parser = Parser(text, self.operators)
            result = parser.read_term()
            if result is None:
                raise ParseError("empty query")
            term, varmap = result
            from ..hilog import hilog_encode

            term = hilog_encode(term, self.hilog_symbols)
            return term, varmap
        from ..terms import term_variables

        named = {
            (v.name or f"_V{i}"): v
            for i, v in enumerate(term_variables(goal))
        }
        return goal, named

    def query_iter(self, goal, raw=False):
        """Iterate solutions as dicts {variable name: value}.

        Values are converted to Python (atoms -> str, lists -> list)
        unless ``raw=True``, in which case resolved term copies are
        returned.  Closing the iterator abandons the run and reclaims
        any tables it left incomplete.

        In concurrent mode the KB read lock is held from the first
        demand until the iterator is exhausted or closed — drain or
        close promptly.
        """
        self.queries += 1
        if self.kb.concurrent and not self._exclusive:
            return self._query_iter_locked(goal, raw)
        if not self.tables_shared:
            self._sync_private_tables()
        return self._query_iter_dispatch(goal, raw)

    def _query_iter_locked(self, goal, raw):
        self._acquire_query_read()
        try:
            if not self.tables_shared:
                self._sync_private_tables()
            yield from self._query_iter_dispatch(goal, raw)
        finally:
            self.kb.lock.release_read()

    def _query_iter_dispatch(self, goal, raw):
        spans = self.spans
        if spans is not None:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                return self._query_iter_metered(goal, raw, spans)
            metrics = self.metrics
            if metrics is not None and metrics.enabled:
                return self._query_iter_fast(goal, raw, spans)
        return self._query_iter_plain(goal, raw)

    def _query_iter_plain(self, goal, raw):
        term, varmap = self._goal_and_vars(goal)
        machine = Machine(self, MODE_QUERY)
        for _ in machine.solve(term):
            if raw:
                yield {
                    name: copy_term(var) for name, var in varmap.items()
                }
            else:
                yield {
                    name: term_to_python(var) for name, var in varmap.items()
                }

    def _query_iter_fast(self, goal, raw, spans):
        """Metrics-only query iterator: two clock reads per query (no
        child spans — there is no trace timeline to draw), observing
        latency and answer count when the generator closes."""
        started = spans.clock()
        answers = 0
        try:
            term, varmap = self._goal_and_vars(goal)
            machine = Machine(self, MODE_QUERY)
            for _ in machine.solve(term):
                answers += 1
                if raw:
                    yield {
                        name: copy_term(var)
                        for name, var in varmap.items()
                    }
                else:
                    yield {
                        name: term_to_python(var)
                        for name, var in varmap.items()
                    }
        finally:
            spans.end_query_fast(started, answers)

    def _query_iter_metered(self, goal, raw, spans):
        """The query iterator under a root span: parse and SLG child
        spans, then latency / answers / table-space observations when
        the generator closes.  Latency is wall time from first demand
        to exhaustion or close — consumer time between solutions is
        included, which is what a service-level latency means."""
        label = goal if isinstance(goal, str) else None
        root = spans.begin_query(
            label=f"?- {label.strip()}" if label is not None else "?- <term>"
        )
        answers = 0
        try:
            token = spans.begin(STAGE_PARSE)
            try:
                term, varmap = self._goal_and_vars(goal)
            finally:
                spans.end(token)
            machine = Machine(self, MODE_QUERY)
            token = spans.begin(STAGE_SLG)
            try:
                for _ in machine.solve(term):
                    answers += 1
                    if raw:
                        yield {
                            name: copy_term(var)
                            for name, var in varmap.items()
                        }
                    else:
                        yield {
                            name: term_to_python(var)
                            for name, var in varmap.items()
                        }
            finally:
                spans.end(token, detail=answers)
        finally:
            spans.end_query(root, answers)

    def query(self, goal, limit=None, raw=False):
        """All solutions (or the first ``limit``) as a list of dicts."""
        out = []
        iterator = self.query_iter(goal, raw=raw)
        try:
            for solution in iterator:
                out.append(solution)
                if limit is not None and len(out) >= limit:
                    break
        finally:
            iterator.close()
        return out

    def once(self, goal, raw=False):
        """First solution or None."""
        solutions = self.query(goal, limit=1, raw=raw)
        return solutions[0] if solutions else None

    def has_solution(self, goal):
        return self.once(goal) is not None

    def count(self, goal):
        """Number of solutions (drains the query)."""
        self.queries += 1
        if self.kb.concurrent and not self._exclusive:
            self._acquire_query_read()
            try:
                if not self.tables_shared:
                    self._sync_private_tables()
                return self._count_dispatch(goal)
            finally:
                self.kb.lock.release_read()
        if not self.tables_shared:
            self._sync_private_tables()
        return self._count_dispatch(goal)

    def _count_dispatch(self, goal):
        spans = self.spans
        if spans is not None:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                return self._count_traced(goal, spans)
            metrics = self.metrics
            if metrics is not None and metrics.enabled:
                # metrics-only fast path: root measurements, no spans
                started = spans.clock()
                total = 0
                try:
                    term, _ = self._goal_and_vars(goal)
                    machine = Machine(self, MODE_QUERY)
                    for _ in machine.solve(term):
                        total += 1
                finally:
                    spans.end_query_fast(started, total)
                return total
        machine = Machine(self, MODE_QUERY)
        term, _ = self._goal_and_vars(goal)
        total = 0
        for _ in machine.solve(term):
            total += 1
        return total

    def _count_traced(self, goal, spans):
        label = goal if isinstance(goal, str) else None
        root = spans.begin_query(
            label=f"?- {label.strip()}" if label is not None else "?- <term>"
        )
        total = 0
        try:
            token = spans.begin(STAGE_PARSE)
            try:
                term, _ = self._goal_and_vars(goal)
            finally:
                spans.end(token)
            machine = Machine(self, MODE_QUERY)
            token = spans.begin(STAGE_SLG)
            try:
                for _ in machine.solve(term):
                    total += 1
            finally:
                spans.end(token, detail=total)
        finally:
            spans.end_query(root, total)
        return total

    def run_goal(self, term):
        """Run a goal term once for its side effects; True on success."""
        self.queries += 1
        if self.kb.concurrent and not self._exclusive:
            self._acquire_query_read()
            try:
                if not self.tables_shared:
                    self._sync_private_tables()
                return self._run_goal_dispatch(term)
            finally:
                self.kb.lock.release_read()
        if not self.tables_shared:
            self._sync_private_tables()
        return self._run_goal_dispatch(term)

    def _run_goal_dispatch(self, term):
        spans = self.spans
        machine = Machine(self, MODE_QUERY)
        if spans is not None:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                return self._run_goal_traced(term, spans, machine)
            metrics = self.metrics
            if metrics is not None and metrics.enabled:
                started = spans.clock()
                found = False
                try:
                    gen = machine.solve(term)
                    try:
                        for _ in gen:
                            found = True
                            break
                    finally:
                        gen.close()
                finally:
                    spans.end_query_fast(started, int(found))
                return found
        gen = machine.solve(term)
        try:
            for _ in gen:
                return True
            return False
        finally:
            gen.close()

    def _run_goal_traced(self, term, spans, machine):
        root = spans.begin_query(label="?- <goal>")
        found = False
        try:
            token = spans.begin(STAGE_SLG)
            gen = machine.solve(term)
            try:
                for _ in gen:
                    found = True
                    break
            finally:
                gen.close()
                spans.end(token, detail=int(found))
        finally:
            spans.end_query(root, int(found))
        return found

    # -- instrumentation / maintenance ----------------------------------------------

    def start_counting(self, log_subgoals=False):
        """Count predicate calls (used to reproduce Figure 2).

        With ``log_subgoals=True`` every call's variant-canonical form
        is recorded too, so *distinct subgoals* can be counted — the
        quantity Figure 2 plots for SLDNF over the game tree.
        """
        self.counting = True
        self.call_counts = {}
        self.log_subgoals = log_subgoals
        self.subgoal_log = []
        return self

    def stop_counting(self):
        self.counting = False
        return dict(self.call_counts)

    def distinct_subgoals(self, name, arity):
        """Distinct logged subgoal variants of one predicate."""
        return len(
            {
                key
                for (n, a, key) in self.subgoal_log
                if n == name and a == arity
            }
        )

    def table_statistics(self):
        return self.tables.statistics()

    # -- observability (repro.obs) ---------------------------------------------------

    def _render_subgoal(self, frame):
        """Printable form of a frame's call term (trace/profile labels)."""
        from ..lang.writer import term_to_str

        return term_to_str(frame_call_term(frame), self.operators)

    def _ensure_spans(self):
        """Create the per-query span recorder (idempotent) and hand it
        to the analysis registry as its rebuild observer."""
        if self.spans is None:
            self.spans = SpanRecorder(self)
        self.kb.db.analysis.observer = self.spans
        return self.spans

    def enable_trace(self, capacity=None):
        """Switch the SLG event tracer on (new runs pick it up)."""
        if self.tracer is None:
            self.tracer = Tracer(
                **({} if capacity is None else {"capacity": capacity}),
                registry=self._obs_registry,
            )
        else:
            self.tracer.enabled = True
        self._ensure_spans()
        return self

    def disable_trace(self):
        if self.tracer is not None:
            self.tracer.enabled = False
        return self

    def enable_profile(self):
        """Switch the per-subgoal span profiler on."""
        if self.profiler is None:
            self.profiler = Profiler(self._obs_registry)
        else:
            self.profiler.enabled = True
        return self

    def disable_profile(self):
        if self.profiler is not None:
            self.profiler.enabled = False
        return self

    def trace_events(self):
        """The buffered trace events (oldest first); [] when off."""
        return self.tracer.events() if self.tracer is not None else []

    def write_trace_jsonl(self, path_or_file):
        """Export the trace ring as JSONL; returns the line count."""
        from ..obs import write_jsonl

        if self.tracer is None:
            raise ValueError("tracing is not enabled on this engine")
        return write_jsonl(self.tracer, path_or_file)

    def write_chrome_trace(self, path_or_file):
        """Export the trace ring in Chrome trace-event format."""
        from ..obs import write_chrome_trace

        if self.tracer is None:
            raise ValueError("tracing is not enabled on this engine")
        return write_chrome_trace(self.tracer, path_or_file)

    def enable_metrics(self):
        """Switch the query-level metrics registry on (idempotent)."""
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        else:
            self.metrics.enabled = True
        self._ensure_spans()
        return self

    def disable_metrics(self):
        """Stop recording metrics; collected data stays snapshotable."""
        if self.metrics is not None:
            self.metrics.enabled = False
        return self

    def metrics_snapshot(self):
        """A JSON-able snapshot of the metrics registry (counters,
        gauges, histograms with p50/p90/p99); ``{}`` when metrics were
        never enabled.  Each snapshot takes one fresh ``table_space_
        bytes`` sample (gauge + histogram observation, scrape-style) —
        the fast query path only samples every 64th query, so short
        runs get their table-space distribution here.  Session-level
        gauges (live session count, cross-session hit ratio) are set
        scrape-style here too."""
        if self.metrics is None:
            return {}
        if self.spans is not None and self.metrics.enabled:
            space = self.spans.table_space_bytes()
            self.metrics.set_gauge("table_space_bytes", space)
            self.metrics.observe("table_space_bytes", space)
        if self.metrics.enabled:
            kb = self.kb
            self.metrics.set_gauge("sessions_active", kb.sessions_active())
            self.metrics.set_gauge(
                "shared_hit_ratio", kb.shared_hit_ratio()
            )
        return self.metrics.snapshot()

    def write_metrics(self, path_or_file, fmt=None):
        """Write the metrics snapshot (``fmt`` ``"json"``/
        ``"prometheus"``; ``None`` infers from a ``.json`` suffix)."""
        from ..obs import write_metrics

        if self.metrics is None:
            raise ValueError("metrics are not enabled on this engine")
        return write_metrics(self.metrics_snapshot(), path_or_file, fmt=fmt)

    def profile_report(self):
        """Per-subgoal profile rows (self time, answers, consumers,
        byte estimates), most expensive first; [] when off."""
        return self.profiler.report() if self.profiler is not None else []

    def format_profile(self):
        """The profile report as a plain-text table."""
        from ..obs import format_profile

        return format_profile(self.profile_report())

    def tuple_stores(self):
        """Every live :class:`~repro.store.TupleStore` this engine owns,
        deduplicated by identity: predicate fact stores, hash-mode
        answer stores, the relations of cached hybrid plans, and the
        incremental maintainer's warm materializations (base stores
        are shared with the fact stores, so sharing is why the walk
        dedups)."""
        seen = {}
        for pred in self.db.predicates.values():
            store = pred.fact_store
            if store is not None:
                seen[id(store)] = store
        for plan in self.db.analysis.plans():
            for relation in plan.facts.values():
                seen[id(relation)] = relation
            for prepared, _, _ in plan.rewrites.values():
                for relation in prepared.relations.values():
                    seen[id(relation)] = relation
        for frame in self.tables.all_frames():
            store = frame.answer_store
            if store is not None:
                seen[id(store)] = store
        maintainer = self.incremental
        if maintainer is not None:
            for mat in maintainer.materializations.values():
                for relation in mat.relations.values():
                    seen[id(relation)] = relation
        return list(seen.values())

    def statistics(self):
        """Merged engine statistics: SLG scheduling counters, table-space
        usage, and the storage layer's index/probe counters — the keys
        ``statistics/2`` enumerates."""
        merged = self.stats.snapshot()
        merged.update(self.tables.statistics())
        stores = self.tuple_stores()
        merged["store_count"] = len(stores)
        merged["store_rows"] = sum(len(s) for s in stores)
        merged["store_probes"] = sum(s.stats.probes for s in stores)
        merged["store_scans"] = sum(s.stats.scans for s in stores)
        merged["store_index_builds"] = sum(
            s.stats.index_builds for s in stores
        )
        merged["store_removes"] = sum(s.stats.removes for s in stores)
        merged["sessions_active"] = self.kb.sessions_active()
        tracer = self.tracer
        merged["trace_events"] = len(tracer) if tracer is not None else 0
        merged["trace_dropped"] = tracer.dropped if tracer is not None else 0
        profiler = self.profiler
        merged["profile_subgoals"] = (
            profiler.span_count() if profiler is not None else 0
        )
        merged["profile_self_ns"] = (
            profiler.total_self_ns() if profiler is not None else 0
        )
        metrics = self.metrics
        merged["metrics_queries"] = (
            metrics.counters.get("queries", 0) if metrics is not None else 0
        )
        merged["metrics_spans"] = (
            metrics.counters.get("spans", 0) if metrics is not None else 0
        )
        merged["metrics_histograms"] = (
            len(metrics.histograms) if metrics is not None else 0
        )
        merged.update(self.db.analysis.statistics())
        return merged

    def reset_statistics(self):
        """Zero the scheduling counters (table-space usage is live
        state and is not reset)."""
        self.stats.reset()
        return self

    def abolish_all_tables(self):
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(self.abolish_all_tables)
        self.tables.abolish_all()
        return self

    def abolish_predicate(self, name, arity):
        """``abolish/2``: drop a predicate's clauses and every completed
        table that could observe them — its own and its dependents',
        computed from the analysis registry's call graph *before* the
        clauses go (afterwards the predicate is no longer a graph node
        and the dependency is invisible).  The table drops are
        *targeted* deletes, never ``abolish_all``; incomplete frames
        belong to in-flight runs and are left alone.
        """
        if self.kb.concurrent and not self._exclusive:
            return self._write_locked(
                lambda: self.abolish_predicate(name, arity)
            )
        from .incremental import _frame_key

        key = (name, arity)
        if self.db.lookup(name, arity) is not None:
            affected, universe = self.db.analysis.affected_keys((key,))
            for frame in self.tables.all_frames():
                if not frame.complete:
                    continue
                fkey = _frame_key(frame)
                if (
                    universe
                    or fkey is None
                    or fkey == key
                    or fkey in affected
                ):
                    self.tables.delete(frame)
        self.db.abolish(name, arity)
        return self

    def predicate(self, name, arity):
        return self.db.lookup(name, arity)

    def analyze(self, name, arity):
        """Human-readable analysis-registry summary for one predicate
        (what the REPL's ``:analyze`` command prints)."""
        return self.db.analysis.describe(name, arity)

    def __repr__(self):
        return (
            f"<Session #{self.sid} {self.db.user_clause_count()} clauses, "
            f"{self.tables.frame_count()} tables>"
        )
