"""Hybrid evaluation: datalog-safe tabled subgoals go set-at-a-time.

The SLG machine evaluates tuple at a time: every answer costs a
generator retry, a head match, a ``$answer`` record and (on
suspension) a consumer resumption.  For pure datalog — definite
clauses over finitely many constants, no builtins, no negation — the
repository already contains the set-at-a-time machinery those tuples
are paying to emulate: magic-set rewriting (:mod:`repro.bottomup.magic`)
for goal-directedness and the semi-naive fixpoint
(:mod:`repro.bottomup.seminaive`) whose inner loop is bulk hash-join
probes.  This module is the bridge Warren describes in *Top-down and
Bottom-up Evaluation Procedurally Integrated*: when the machine checks
in a *new* tabled subgoal whose reachable predicate SCC passes the
datalog-safety analysis, the SCC is translated to bottom-up rules, the
call's adornment drives a magic rewrite, the fixpoint runs to
completion, and the resulting tuples are bulk-installed into the
subgoal's answer table, which is then marked complete.  Consumers,
negation (``tnot`` sees a completed table) and ``statistics/0`` all
work unchanged; any precondition failure falls back to ordinary SLG
resolution.

The safety analysis itself lives in the analysis registry
(:meth:`repro.analysis.registry.AnalysisRegistry.hybrid_plan`): the
registry walks the reachable closure over the shared lowered IR,
screens it for the datalog-safe fragment, and caches the verdict —
positive or negative — against the store layer's generation stamps so
assert/retract anywhere in the reachable set invalidates exactly the
dependent plans.  This module supplies the two halves the registry
composes: :func:`translate_plan`, which turns screened IR rules into a
:class:`HybridPlan`, and the per-call machinery below that adorns,
rewrites and evaluates a plan.

Per call, each argument must be either an unbound variable (a free
position in the adornment) or ground within the depth bound; repeated
variables in the call are honored by filtering the answer relation.
"""

from __future__ import annotations

from ..analysis.adorn import adornment_of, magic_name
from ..analysis.ir import REL, Rule, Var as DVar
from ..bottomup.datalog import Program
from ..bottomup.magic import magic_rewrite
from ..bottomup.seminaive import EvaluationStats, prepare
from ..errors import SafetyError
from ..obs.trace import (
    EV_ANSWER_BULK,
    EV_COMPLETE,
    EV_HYBRID_FALLBACK,
    EV_HYBRID_ROUTE,
)
from ..store.codec import (
    MAX_TERM_DEPTH,
    FreezeError,
    freeze_term,
    thaw_value,
)
from ..terms import Struct, Var, mkatom
from .database import mutation_generation

__all__ = ["try_hybrid", "translate_plan", "HybridPlan", "MAX_TERM_DEPTH"]

# Term ↔ row conversion is the shared codec's job: calls whose
# arguments nest deeper than MAX_TERM_DEPTH are not routed bottom-up
# (and neither are predicates whose facts do) — 10k-deep terms stay on
# the iterative SLG kernels.  freeze_term raises FreezeError for
# those, which the registry's screen treats as unsafe.


class HybridPlan:
    """The translated bottom-up form of one predicate's reachable SCC.

    ``program`` holds the rules (range-restriction already checked),
    ``facts`` prebuilt :class:`Relation` objects keyed by ``(name,
    arity)``, and ``idb`` the rule-defined predicate keys.  The
    relations are built once at translation time and shared by every
    evaluation against this plan — ``evaluate`` adopts them as-is, so
    the hash indexes its joins build persist across subgoals (the plan
    is invalidated, relations and all, whenever the underlying clauses
    change).  Facts of a predicate that also has rules live under an
    ``<name>$edb`` alias fed to the original name by a bridge rule, so
    they stay a bulk relation rather than turning into per-fact rules
    under the magic rewrite.

    ``rewrites`` caches, per call adornment, the magic rewrite and its
    :class:`~repro.bottomup.seminaive.Prepared` fixpoint: the rewritten
    rules depend only on *which* argument positions are bound — the
    bound values enter solely through the magic seed — so repeated
    subgoals with the same adornment skip the rewrite and every join
    compilation and pay only for the fixpoint itself.
    """

    __slots__ = ("program", "facts", "idb", "rewrites")

    def __init__(self, program, facts):
        self.program = program
        self.facts = facts
        self.idb = program.idb_predicates
        self.rewrites = {}


def translate_plan(specs):
    """Build a :class:`HybridPlan` from screened lowered predicates.

    ``specs`` is a list of ``(pred, rules, has_facts)`` triples as the
    registry's safety screen produced them — ``rules`` the predicate's
    lowered IR rules, ``has_facts`` whether it also has ground bodiless
    clauses.  May raise FreezeError (a fact outside the codec's value
    domain) or SafetyError (a rule that is not range-restricted); the
    registry treats both as a negative verdict.
    """
    rules = []
    facts = {}
    for pred, pred_rules, has_facts in specs:
        key = (pred.name, pred.arity)
        if not pred_rules:
            if has_facts:
                # The predicate's own ground-fact store (an over-deep
                # or opaque argument raises FreezeError here: not a
                # storable fact).  The store is shared, not copied: the
                # plan is invalidated whenever the clauses change, and
                # the hash indexes joins build on it persist across
                # plans.
                facts[key] = pred.fact_rows()
            continue
        rules.extend(pred_rules)
        if has_facts:
            # Facts of a predicate that also has rules stay a bulk
            # relation under an ``$edb`` alias fed by a bridge rule.
            alias = f"{pred.name}$edb"
            variables = tuple(DVar(f"A{i}") for i in range(pred.arity))
            rules.append(
                Rule(pred.name, variables, [(REL, alias, variables, True)])
            )
            facts[(alias, pred.arity)] = pred.fact_rows()
    # Program() re-checks range restriction (the bottom-up safety
    # condition); a head variable unbound by the body — legal in SLG,
    # where it stays a variable in the answer — raises SafetyError.
    return HybridPlan(Program(rules), facts)


# --------------------------------------------------------------------------
# per-call adornment and evaluation
# --------------------------------------------------------------------------

def _call_goal(call_term, arity):
    """``(goal_args, repeated_groups)`` for the subgoal, or None.

    ``goal_args`` uses the magic-rewrite convention: None marks a free
    position, a frozen value a bound one.  ``repeated_groups`` lists
    position groups sharing one unbound variable; the answer relation
    is filtered for equality on them.  A partially instantiated
    structure argument (ground-able neither way) disqualifies the call.
    """
    if arity == 0:
        return (), ()
    goal_args = []
    groups = {}
    for position, arg in enumerate(call_term.args):
        while isinstance(arg, Var) and arg.ref is not None:
            arg = arg.ref
        if isinstance(arg, Var):
            goal_args.append(None)
            groups.setdefault(id(arg), []).append(position)
        else:
            try:
                goal_args.append(freeze_term(arg))
            except FreezeError:
                return None
    repeated = tuple(
        tuple(group) for group in groups.values() if len(group) > 1
    )
    return tuple(goal_args), repeated


def _solve(plan, name, arity, goal_args):
    """Evaluate one adorned call against the plan; (rows, iterations)."""
    key = (name, arity)
    checks = [(i, g) for i, g in enumerate(goal_args) if g is not None]
    if key not in plan.idb:
        # Facts-only target: an indexed selection, no rewrite needed.
        relation = plan.facts.get(key)
        if relation is None:
            return [], 0
        rows = relation.probe(
            tuple(i for i, _ in checks), tuple(g for _, g in checks)
        )
        return rows, 0
    stats = EvaluationStats()
    adornment = adornment_of(goal_args)
    entry = plan.rewrites.get(adornment)
    if entry is None:
        rewritten, answer_pred = magic_rewrite(
            plan.program, name, list(goal_args)
        )
        # The seed — the only bodiless rule the rewrite emits — carries
        # this call's bound values; everything else depends only on the
        # adornment.  Strip it and prepare the rest once: later calls
        # with this adornment re-run the compiled fixpoint and pass
        # their own bound values as seed facts.
        generic = Program(
            [rule for rule in rewritten.rules if rule.body],
            check_safety=False,
        )
        entry = plan.rewrites[adornment] = (
            prepare(generic, plan.facts),
            answer_pred,
            magic_name(name, adornment),
        )
    prepared, answer_pred, seed_name = entry
    bound = tuple(g for g in goal_args if g is not None)
    relations = prepared.run({(seed_name, len(bound)): (bound,)}, stats)
    relation = relations.get((answer_pred, arity))
    if relation is None:
        return [], stats.iterations
    if not checks:
        return relation.rows, stats.iterations
    # The magic guard makes most answers relevant already; the filter
    # re-checks bound constants (adorned rules keep full arity).
    rows = [
        row for row in relation if all(row[i] == g for i, g in checks)
    ]
    return rows, stats.iterations


def try_hybrid(engine, frame, call_term, pred, stats, trace=None, prof=None):
    """Route one newly created subgoal bottom-up if it qualifies.

    On success the frame holds its complete answer set and True is
    returned; the machine then consumes it like any completed table.
    On any precondition failure the frame is untouched and False is
    returned — the caller proceeds with ordinary SLG resolution.

    ``trace``/``prof`` are the machine's cached observability locals
    (None when disabled): a routed subgoal records a ``hybrid_route``
    span bracketing the fixpoint, a rejected one a ``hybrid_fallback``
    event, so traces show *where* set-at-a-time evaluation kicked in.
    """
    registry = engine.db.analysis
    cache = registry._plans.get((pred.name, pred.arity))
    if (
        cache is not None
        and cache[1] is None
        and cache[2] == mutation_generation()
    ):
        # Fast negative path: the predicate is known non-datalog and
        # nothing has been asserted since — miss-heavy non-datalog
        # workloads pay one compare per new subgoal, nothing more.
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        return False
    plan = registry.hybrid_plan(engine, pred)
    if plan is None:
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        return False
    goal = _call_goal(call_term, pred.arity)
    if goal is None:
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        return False
    goal_args, repeated = goal
    spans = engine.spans
    token = None
    if spans is not None:
        from ..obs.spans import STAGE_HYBRID

        token = spans.begin(STAGE_HYBRID, label=f"hybrid {frame.indicator}")
    if prof is not None:
        prof.enter(frame)
    try:
        rows, iterations = _solve(plan, pred.name, pred.arity, goal_args)
    except SafetyError:
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        if prof is not None:
            prof.exit(frame)
        if spans is not None:
            spans.end(token)
        return False
    if repeated:
        rows = [
            row
            for row in rows
            if all(
                row[group[0]] == row[i] for group in repeated for i in group[1:]
            )
        ]
    if pred.arity == 0:
        answers = [mkatom(pred.name)] if rows else []
        rows = [()] if rows else []
    else:
        answers = [
            Struct(pred.name, tuple(thaw_value(v) for v in row))
            for row in rows
        ]
    count = frame.add_answers_bulk(answers, rows=rows)
    engine.tables.note_bulk_answers(count)
    frame.mark_complete()
    if trace is not None:
        trace.event(EV_HYBRID_ROUTE, frame, iterations)
        trace.event(EV_ANSWER_BULK, frame, count)
        trace.event(EV_COMPLETE, frame, count)
    if prof is not None:
        prof.exit(frame)
    if stats is not None:
        stats.hybrid_subgoals += 1
        stats.hybrid_answers += count
        stats.hybrid_iterations += iterations
        # Bulk answers are ground by construction and the frame counts
        # as one completion, mirroring what SLG would have reported.
        stats.ground_answers += count
        stats.completions += 1
    if spans is not None:
        spans.end(token, detail=count)
    return True
