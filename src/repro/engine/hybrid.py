"""Hybrid evaluation: datalog-safe tabled subgoals go set-at-a-time.

The SLG machine evaluates tuple at a time: every answer costs a
generator retry, a head match, a ``$answer`` record and (on
suspension) a consumer resumption.  For pure datalog — definite
clauses over finitely many constants, no builtins, no negation — the
repository already contains the set-at-a-time machinery those tuples
are paying to emulate: magic-set rewriting (:mod:`repro.bottomup.magic`)
for goal-directedness and the semi-naive fixpoint
(:mod:`repro.bottomup.seminaive`) whose inner loop is bulk hash-join
probes.  This module is the bridge Warren describes in *Top-down and
Bottom-up Evaluation Procedurally Integrated*: when the machine checks
in a *new* tabled subgoal whose reachable predicate SCC passes the
datalog-safety analysis, the SCC is translated to bottom-up rules, the
call's adornment drives a magic rewrite, the fixpoint runs to
completion, and the resulting tuples are bulk-installed into the
subgoal's answer table, which is then marked complete.  Consumers,
negation (``tnot`` sees a completed table) and ``statistics/0`` all
work unchanged; any precondition failure falls back to ordinary SLG
resolution.

Safety analysis (cached per predicate, revalidated against clause-set
version stamps so assert/retract invalidate it):

* every predicate reachable from the call must be defined (or the
  engine must have ``unknown="fail"``) and none may be a builtin or a
  control construct — a body literal like ``tnot/1`` or ``is/2``
  disqualifies the whole SCC;
* rule arguments must be variables or constants (atoms, numbers,
  *ground* structures up to :data:`MAX_TERM_DEPTH`) — patterns that
  build new structure bottom-up could diverge where SLG's demand-driven
  search would not;
* bodiless clauses must be ground facts within the depth bound;
* the translated rules must be range-restricted (the bottom-up
  engine's safety condition), checked by :class:`Program` itself.

Per call, each argument must be either an unbound variable (a free
position in the adornment) or ground within the depth bound; repeated
variables in the call are honored by filtering the answer relation.
"""

from __future__ import annotations

from ..bottomup.datalog import REL, Rule, Var as DVar
from ..bottomup.datalog import Program
from ..bottomup.magic import adornment_of, magic_name, magic_rewrite
from ..bottomup.seminaive import EvaluationStats, prepare
from ..errors import SafetyError
from ..obs.trace import (
    EV_ANSWER_BULK,
    EV_COMPLETE,
    EV_HYBRID_FALLBACK,
    EV_HYBRID_ROUTE,
)
from ..store.codec import (
    MAX_TERM_DEPTH,
    FreezeError,
    freeze_term,
    thaw_value,
)
from ..terms import Atom, Struct, Var, mkatom
from .clause import SlotRef
from .database import mutation_generation

__all__ = ["try_hybrid", "analyze", "HybridPlan", "MAX_TERM_DEPTH"]

# Term ↔ row conversion is the shared codec's job: calls whose
# arguments nest deeper than MAX_TERM_DEPTH are not routed bottom-up
# (and neither are predicates whose facts do) — 10k-deep terms stay on
# the iterative SLG kernels.  freeze_term raises FreezeError for
# those, which the analysis treats exactly like _Unsafe.

# Control constructs are dispatched by name inside the machine's solve
# loop rather than through the builtin registry, so the analysis must
# reject them explicitly; everything else non-user is caught by the
# registry probe.  ``true/0`` could in principle be dropped from a
# body, but it never appears in datalog workloads and skipping the
# special case keeps the analysis a pure reachability walk.
_EXCLUDED = frozenset(
    (",", ";", "->", "!", "true", "fail", "false", "\\+",
     "$answer", "$yield", "$ite", "$cutto", "tcut")
)


class _Unsafe(Exception):
    """Internal: a precondition failed; fall back to SLG."""


class HybridPlan:
    """The translated bottom-up form of one predicate's reachable SCC.

    ``program`` holds the rules (range-restriction already checked),
    ``facts`` prebuilt :class:`Relation` objects keyed by ``(name,
    arity)``, and ``idb`` the rule-defined predicate keys.  The
    relations are built once at translation time and shared by every
    evaluation against this plan — ``evaluate`` adopts them as-is, so
    the hash indexes its joins build persist across subgoals (the plan
    is invalidated, relations and all, whenever the underlying clauses
    change).  Facts of a predicate that also has rules live under an
    ``<name>$edb`` alias fed to the original name by a bridge rule, so
    they stay a bulk relation rather than turning into per-fact rules
    under the magic rewrite.

    ``rewrites`` caches, per call adornment, the magic rewrite and its
    :class:`~repro.bottomup.seminaive.Prepared` fixpoint: the rewritten
    rules depend only on *which* argument positions are bound — the
    bound values enter solely through the magic seed — so repeated
    subgoals with the same adornment skip the rewrite and every join
    compilation and pay only for the fixpoint itself.
    """

    __slots__ = ("program", "facts", "idb", "rewrites")

    def __init__(self, program, facts):
        self.program = program
        self.facts = facts
        self.idb = program.idb_predicates
        self.rewrites = {}


# --------------------------------------------------------------------------
# analysis and translation (cached on the Predicate)
# --------------------------------------------------------------------------

def analyze(engine, pred):
    """The :class:`HybridPlan` for ``pred``, or None when any reachable
    clause leaves the datalog-safe fragment.

    The result — including the negative verdict — is cached on the
    predicate together with a snapshot of every predicate the analysis
    visited and its clause-set version stamp; assert/retract anywhere
    in the reachable set (or defining a predicate the analysis saw as
    missing) invalidates the cache on the next call.  The cache also
    records the global :func:`mutation_generation` it was validated
    at: while no clause anywhere has changed, revalidation is one
    integer compare rather than a stamp walk (the common case — every
    new subgoal of a tabled predicate consults this cache).
    """
    cache = pred.hybrid_cache
    generation = mutation_generation()
    if cache is not None:
        if cache[2] == generation:
            return cache[1]
        if _cache_valid(engine.db, cache[0]):
            pred.hybrid_cache = (cache[0], cache[1], generation)
            return cache[1]
    snapshot, plan = _build_plan(engine, pred)
    pred.hybrid_cache = (snapshot, plan, generation)
    return plan


def _cache_valid(db, snapshot):
    predicates = db.predicates
    for key, known, stamp in snapshot:
        current = predicates.get(key)
        if current is not known:
            return False
        if known is not None and known.mutations != stamp:
            return False
    return True


def _build_plan(engine, pred):
    """Reachability walk + safety screen + translation, one pass."""
    predicates = engine.db.predicates
    builtins = engine.builtins
    snapshot = []
    seen = set()
    reached = []
    stack = [(pred.name, pred.arity)]
    while stack:
        key = stack.pop()
        if key in seen:
            continue
        seen.add(key)
        target = predicates.get(key)
        snapshot.append((key, target, -1 if target is None else target.mutations))
        if target is None:
            if engine.unknown != "fail":
                # SLG would raise ExistenceError; preserve that.
                return tuple(snapshot), None
            continue  # undefined-but-failing: an empty relation
        reached.append(target)
        for clause in target.clauses:
            for literal in clause.body:
                if isinstance(literal, Struct):
                    name, arity = literal.name, len(literal.args)
                elif isinstance(literal, Atom):
                    name, arity = literal.name, 0
                else:
                    return tuple(snapshot), None  # call through a variable
                if name in _EXCLUDED or (name, arity) in builtins:
                    return tuple(snapshot), None
                stack.append((name, arity))
    try:
        plan = _translate(reached)
    except (_Unsafe, FreezeError, SafetyError):
        plan = None
    return tuple(snapshot), plan


def _translate(reached):
    rules = []
    facts = {}
    for pred in reached:
        rule_clauses = [c for c in pred.clauses if c.body]
        has_facts = len(rule_clauses) != len(pred.clauses)
        key = (pred.name, pred.arity)
        if not rule_clauses:
            if has_facts:
                # The predicate's own ground-fact store (a bodiless
                # clause with a variable, or an over-deep or opaque
                # argument, raises FreezeError here: not a fact).  The
                # store is shared, not copied: the plan is invalidated
                # whenever the clauses change, and the hash indexes
                # joins build on it persist across plans.
                facts[key] = pred.fact_rows()
            continue
        for clause in rule_clauses:
            rules.append(_translate_rule(clause))
        if has_facts:
            # Facts of a predicate that also has rules stay a bulk
            # relation under an ``$edb`` alias fed by a bridge rule.
            alias = f"{pred.name}$edb"
            variables = tuple(DVar(f"A{i}") for i in range(pred.arity))
            rules.append(
                Rule(pred.name, variables, [(REL, alias, variables, True)])
            )
            facts[(alias, pred.arity)] = pred.fact_rows()
    # Program() re-checks range restriction (the bottom-up safety
    # condition); a head variable unbound by the body — legal in SLG,
    # where it stays a variable in the answer — raises SafetyError.
    return HybridPlan(Program(rules), facts)


def _translate_rule(clause):
    varmap = {}
    head_args = tuple(_rule_arg(arg, varmap) for arg in clause.head_args)
    body = []
    for literal in clause.body:
        if isinstance(literal, Struct):
            args = tuple(_rule_arg(arg, varmap) for arg in literal.args)
            body.append((REL, literal.name, args, True))
        else:  # Atom (arity 0); anything else was rejected by the walk
            body.append((REL, literal.name, (), True))
    return Rule(clause.name, head_args, body)


def _rule_arg(skeleton, varmap):
    """A compiled-clause argument as a bottom-up pattern.

    Variables (SlotRefs) map to rule variables by slot index; atoms
    and numbers to frozen constants; *ground* structures become frozen
    tuple constants.  A structure containing a variable is rejected —
    such patterns synthesize unbounded new terms bottom-up.
    """
    if type(skeleton) is SlotRef:
        var = varmap.get(skeleton.index)
        if var is None:
            var = DVar(skeleton.name or f"S{skeleton.index}")
            varmap[skeleton.index] = var
        return var
    return freeze_term(skeleton)


# --------------------------------------------------------------------------
# per-call adornment and evaluation
# --------------------------------------------------------------------------

def _call_goal(call_term, arity):
    """``(goal_args, repeated_groups)`` for the subgoal, or None.

    ``goal_args`` uses the magic-rewrite convention: None marks a free
    position, a frozen value a bound one.  ``repeated_groups`` lists
    position groups sharing one unbound variable; the answer relation
    is filtered for equality on them.  A partially instantiated
    structure argument (ground-able neither way) disqualifies the call.
    """
    if arity == 0:
        return (), ()
    goal_args = []
    groups = {}
    for position, arg in enumerate(call_term.args):
        while isinstance(arg, Var) and arg.ref is not None:
            arg = arg.ref
        if isinstance(arg, Var):
            goal_args.append(None)
            groups.setdefault(id(arg), []).append(position)
        else:
            try:
                goal_args.append(freeze_term(arg))
            except FreezeError:
                return None
    repeated = tuple(
        tuple(group) for group in groups.values() if len(group) > 1
    )
    return tuple(goal_args), repeated


def _solve(plan, name, arity, goal_args):
    """Evaluate one adorned call against the plan; (rows, iterations)."""
    key = (name, arity)
    checks = [(i, g) for i, g in enumerate(goal_args) if g is not None]
    if key not in plan.idb:
        # Facts-only target: an indexed selection, no rewrite needed.
        relation = plan.facts.get(key)
        if relation is None:
            return [], 0
        rows = relation.probe(
            tuple(i for i, _ in checks), tuple(g for _, g in checks)
        )
        return rows, 0
    stats = EvaluationStats()
    adornment = adornment_of(goal_args)
    entry = plan.rewrites.get(adornment)
    if entry is None:
        rewritten, answer_pred = magic_rewrite(
            plan.program, name, list(goal_args)
        )
        # The seed — the only bodiless rule the rewrite emits — carries
        # this call's bound values; everything else depends only on the
        # adornment.  Strip it and prepare the rest once: later calls
        # with this adornment re-run the compiled fixpoint and pass
        # their own bound values as seed facts.
        generic = Program(
            [rule for rule in rewritten.rules if rule.body],
            check_safety=False,
        )
        entry = plan.rewrites[adornment] = (
            prepare(generic, plan.facts),
            answer_pred,
            magic_name(name, adornment),
        )
    prepared, answer_pred, seed_name = entry
    bound = tuple(g for g in goal_args if g is not None)
    relations = prepared.run({(seed_name, len(bound)): (bound,)}, stats)
    relation = relations.get((answer_pred, arity))
    if relation is None:
        return [], stats.iterations
    if not checks:
        return relation.rows, stats.iterations
    # The magic guard makes most answers relevant already; the filter
    # re-checks bound constants (adorned rules keep full arity).
    rows = [
        row for row in relation if all(row[i] == g for i, g in checks)
    ]
    return rows, stats.iterations


def try_hybrid(engine, frame, call_term, pred, stats, trace=None, prof=None):
    """Route one newly created subgoal bottom-up if it qualifies.

    On success the frame holds its complete answer set and True is
    returned; the machine then consumes it like any completed table.
    On any precondition failure the frame is untouched and False is
    returned — the caller proceeds with ordinary SLG resolution.

    ``trace``/``prof`` are the machine's cached observability locals
    (None when disabled): a routed subgoal records a ``hybrid_route``
    span bracketing the fixpoint, a rejected one a ``hybrid_fallback``
    event, so traces show *where* set-at-a-time evaluation kicked in.
    """
    cache = pred.hybrid_cache
    if (
        cache is not None
        and cache[1] is None
        and cache[2] == mutation_generation()
    ):
        # Fast negative path: the predicate is known non-datalog and
        # nothing has been asserted since — miss-heavy non-datalog
        # workloads pay one compare per new subgoal, nothing more.
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        return False
    plan = analyze(engine, pred)
    if plan is None:
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        return False
    goal = _call_goal(call_term, pred.arity)
    if goal is None:
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        return False
    goal_args, repeated = goal
    if prof is not None:
        prof.enter(frame)
    try:
        rows, iterations = _solve(plan, pred.name, pred.arity, goal_args)
    except SafetyError:
        if stats is not None:
            stats.hybrid_fallbacks += 1
        if trace is not None:
            trace.event(EV_HYBRID_FALLBACK, frame)
        if prof is not None:
            prof.exit(frame)
        return False
    if repeated:
        rows = [
            row
            for row in rows
            if all(
                row[group[0]] == row[i] for group in repeated for i in group[1:]
            )
        ]
    if pred.arity == 0:
        answers = [mkatom(pred.name)] if rows else []
        rows = [()] if rows else []
    else:
        answers = [
            Struct(pred.name, tuple(thaw_value(v) for v in row))
            for row in rows
        ]
    count = frame.add_answers_bulk(answers, rows=rows)
    engine.tables.note_bulk_answers(count)
    frame.mark_complete()
    if trace is not None:
        trace.event(EV_HYBRID_ROUTE, frame, iterations)
        trace.event(EV_ANSWER_BULK, frame, count)
        trace.event(EV_COMPLETE, frame, count)
    if prof is not None:
        prof.exit(frame)
    if stats is not None:
        stats.hybrid_subgoals += 1
        stats.hybrid_answers += count
        stats.hybrid_iterations += iterations
        # Bulk answers are ground by construction and the frame counts
        # as one completion, mirroring what SLG would have reported.
        stats.ground_answers += count
        stats.completions += 1
    return True
