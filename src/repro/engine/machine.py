"""The SLG machine: tuple-at-a-time SLD/SLDNF evaluation plus tabling.

This is the Python rendering of the SLG-WAM (sections 3 and 4 of the
paper).  The machine evaluates goals depth-first with a goal
continuation, a choice-point stack and a trail, exactly like a WAM; the
SLG extension adds two choice points:

* :class:`GeneratorCP` — the first (variant-wise) call to a tabled
  subgoal.  It resolves the subgoal against program clauses; every
  clause body is followed by a ``$answer`` pseudo-goal that records the
  answer in the table and *continues into the caller* (answers are
  returned as derived, so on definite programs SLG reduces to SLD with
  memoing, as section 3.1 describes).  When its clauses are exhausted
  it runs the completion check.

* :class:`ConsumerCP` — a repeated call.  It resolves the subgoal
  against the answers already in the table; if the table is incomplete
  when they run out, the consumer *suspends* by saving its continuation
  and the trail segment above the scheduling base (the CAT strategy:
  the forward trail is the saved state), and the leader's completion
  fixpoint later resumes it for each unconsumed answer.

Completion uses the SLG-WAM's approximate SCC scheme: every subgoal
frame carries a depth-first number and a "deplink"; consuming an
incomplete older subgoal merges the dependency links of everything
younger; a generator whose deplink equals its own number is a leader
and may complete its whole SCC once no suspended consumer in the SCC
has unconsumed answers.

Negative goals (``tnot``, ``e_tnot``, ``\\+``) evaluate the complement
in a *subordinate* machine run sharing the table space — legal for
modularly stratified programs, which is exactly the restriction the
paper states for XSB's engine; a dynamic check raises
:class:`~repro.errors.NonStratifiedError` otherwise and points the user
at the WFS interpreter.
"""

from __future__ import annotations

from ..errors import (
    ExistenceError,
    InstantiationError,
    NonStratifiedError,
    TablingError,
    TypeError_,
)
from ..obs.trace import (
    EV_ANSWER_DUP,
    EV_ANSWER_INSERT,
    EV_COMPLETE,
    EV_RESUME,
    EV_SUBGOAL_HIT,
    EV_SUBGOAL_MISS,
    EV_SUSPEND,
)
from ..terms import Atom, Struct, Var, canonical_key, copy_term, deref, unify
from .frames import (
    EXHAUSTED,
    FAILED,
    ChoicePoint,
    ClauseCP,
    DisjCP,
    Goals,
    goals_for_body,
)
from .database import mutation_generation
from .hybrid import try_hybrid
from .table import Suspension

__all__ = ["Machine", "GeneratorCP", "ConsumerCP"]

MODE_QUERY = "query"
MODE_NEGATION = "negation"
MODE_FINDALL = "findall"

_YIELD = Atom("$yield")  # deliberately not interned: matched by name only

# Goal names handled inline by the solve loop; ordinary calls skip the
# whole control-construct ladder with one set probe (names are interned,
# so the hash is cached).
_CONTROL = frozenset(
    (",", "true", "$yield", "fail", "false", "!", ";", "->",
     "$ite", "$answer", "$cutto")
)


class GeneratorCP(ChoicePoint):
    """Program-clause resolution plus completion for a new tabled subgoal."""

    __slots__ = (
        "frame",
        "call_term",
        "call_args",
        "continuation",
        "candidates",
        "pos",
        "body_cutbar",
        "in_completion",
        "unit",
    )

    def __init__(
        self, trail_mark, frame, call_term, call_args, continuation, candidates,
        body_cutbar, unit=None,
    ):
        super().__init__(trail_mark)
        self.frame = frame
        self.call_term = call_term
        self.call_args = call_args
        self.continuation = continuation
        self.candidates = candidates
        self.pos = 0
        self.body_cutbar = body_cutbar
        self.in_completion = False
        # CompiledUnit of the predicate when clause compilation is on
        # (stamp-validated by the machine before construction); None
        # selects the template path.
        self.unit = unit

    def retry(self, machine):
        trail = machine.trail
        frame = self.frame
        if not self.in_completion:
            candidates = self.candidates
            stats = machine.stats
            unit = self.unit
            if unit is not None:
                closures = unit.closures
                answer_goal = None
                while self.pos < len(candidates):
                    clause = candidates[self.pos]
                    self.pos += 1
                    closure = closures.get(clause.seq)
                    if closure is None:
                        closure = unit.closure_for(clause, stats)
                    if answer_goal is None:
                        # One $answer node serves every attempt of this
                        # retry: Goals cells are immutable, and at most
                        # one attempt returns it.
                        answer_goal = Goals(
                            Struct("$answer", (frame, self.call_term)),
                            self.continuation,
                            self.body_cutbar,
                        )
                    result = closure(
                        machine, self.call_args, answer_goal, self.body_cutbar
                    )
                    if result is None:
                        trail.undo_to(self.trail_mark)
                        continue
                    return result
                self.in_completion = True
                return self._check_complete(machine)
            while self.pos < len(candidates):
                clause = candidates[self.pos]
                self.pos += 1
                slots = clause.match_head(self.call_args, trail)
                if slots is None:
                    trail.undo_to(self.trail_mark)
                    continue
                if stats is not None:
                    stats.clause_matches += 1
                answer_goal = Goals(
                    Struct("$answer", (frame, self.call_term)),
                    self.continuation,
                    self.body_cutbar,
                )
                if not clause.body:
                    return answer_goal
                return goals_for_body(
                    clause.body_terms(slots), answer_goal, self.body_cutbar
                )
            self.in_completion = True
        return self._check_complete(machine)

    def _check_complete(self, machine):
        """The completion instruction of the SLG-WAM."""
        frame = self.frame
        if frame.complete:
            return EXHAUSTED
        if frame.deplink < frame.dfn:
            # Not a leader: an older generator's completion will cover
            # this frame's SCC; leave it incomplete.
            return EXHAUSTED
        comp_stack = machine.comp_stack
        scc = comp_stack[frame.comp_index :]
        trail = machine.trail
        stats = machine.stats
        trace = machine.trace
        for member in scc:
            for suspension in member.consumers:
                if suspension.consumed < len(member.answers):
                    consumer = ConsumerCP(
                        trail.mark(),
                        member,
                        suspension.call_term,
                        suspension.goals,
                        consumed=suspension.consumed,
                        snapshot=suspension.snapshot,
                        suspension=suspension,
                    )
                    machine.cpstack.append(consumer)
                    if stats is not None:
                        stats.resumptions += 1
                    if trace is not None:
                        trace.event(EV_RESUME, member)
                    goals = consumer.retry(machine)
                    if goals is EXHAUSTED:
                        machine.cpstack.pop()
                        continue
                    return goals
        # Fixpoint: no suspended consumer in the SCC can advance.
        prof = machine.prof
        for member in scc:
            member.mark_complete()
            if trace is not None:
                trace.event(EV_COMPLETE, member, len(member.answers))
            if prof is not None:
                prof.exit(member)
        if stats is not None:
            stats.completions += len(scc)
        del comp_stack[frame.comp_index :]
        return EXHAUSTED


class ConsumerCP(ChoicePoint):
    """Answer resolution for a repeated tabled call."""

    __slots__ = ("frame", "call_term", "continuation", "consumed", "snapshot",
                 "suspension", "weak", "pattern")

    def __init__(
        self, trail_mark, frame, call_term, continuation, consumed=0,
        snapshot=None, suspension=None, weak=False,
    ):
        super().__init__(trail_mark)
        self.frame = frame
        self.call_term = call_term
        self.continuation = continuation
        self.consumed = consumed
        self.snapshot = snapshot
        self.suspension = suspension
        self.weak = weak
        self.pattern = None

    def _call_pattern(self):
        """The dereferenced call arguments, when every argument is a
        scalar or a distinct unbound variable; False otherwise.

        The list is stable across retries of this choice point:
        backtracking between retries unwinds exactly to this CP's trail
        mark (plus an identical snapshot reinstall), so nothing a
        retry sees through these dereferences can change while the CP
        is alive.  Against a *ground* answer, matching such a pattern
        is a flat compare-or-bind per argument — no general
        unification.
        """
        call = self.call_term
        while isinstance(call, Var):
            ref = call.ref
            if ref is None:
                break
            call = ref
        if not isinstance(call, Struct):
            return False
        pattern = []
        seen = set()
        for arg in call.args:
            a = arg
            while isinstance(a, Var):
                ref = a.ref
                if ref is None:
                    break
                a = ref
            if isinstance(a, Struct):
                return False
            if isinstance(a, Var):
                marker = id(a)
                if marker in seen:
                    return False
                seen.add(marker)
            pattern.append(a)
        return pattern

    def retry(self, machine):
        trail = machine.trail
        if self.snapshot:
            trail.reinstall(self.snapshot)
        frame = self.frame
        answers = frame.answers
        ground = frame.answer_ground
        pattern = self.pattern
        if pattern is None:
            pattern = self.pattern = self._call_pattern()
        entries = trail.entries
        while self.consumed < len(answers):
            index = self.consumed
            answer = answers[index]
            self.consumed = index + 1
            if self.suspension is not None:
                self.suspension.consumed = self.consumed
            # Ground answers are stored variable-free, so unifying the
            # call against the table term directly is safe — no
            # copy_term, no renaming garbage, no answer-side trailing.
            if ground[index] and pattern is not False:
                matched = True
                for c, v in zip(pattern, answer.args):
                    if c is v:
                        continue
                    if isinstance(c, Var):
                        c.ref = v
                        entries.append(c)
                    elif isinstance(c, Atom):
                        if isinstance(v, Atom) and v.name == c.name:
                            continue
                        matched = False
                        break
                    elif type(c) is type(v) and c == v:
                        continue
                    else:
                        matched = False
                        break
                if matched:
                    return self.continuation
                trail.undo_to(self.trail_mark)
                if self.snapshot:
                    trail.reinstall(self.snapshot)
                continue
            if not ground[index]:
                answer = copy_term(answer)
            if unify(self.call_term, answer, trail):
                return self.continuation
            trail.undo_to(self.trail_mark)
            if self.snapshot:
                trail.reinstall(self.snapshot)
        if frame.complete or self.weak:
            return EXHAUSTED
        if self.suspension is None:
            # First exhaustion: become a suspended consumer of the frame.
            snapshot = trail.snapshot(machine.scheduling_base_mark())
            self.suspension = Suspension(
                self.continuation, self.call_term, self.consumed, snapshot
            )
            frame.consumers.append(self.suspension)
            if machine.stats is not None:
                machine.stats.suspensions += 1
            if machine.trace is not None:
                machine.trace.event(EV_SUSPEND, frame, self.consumed)
            if machine.prof is not None:
                machine.prof.note_consumer(frame)
        return EXHAUSTED


class Machine:
    """One evaluation (an SLG "run") over an engine's program and tables.

    Negation and findall spawn subordinate machines sharing the same
    engine (program, table space, trail); each run owns its own
    choice-point stack and completion stack, and cleans up the frames
    it created but did not complete when it is abandoned.
    """

    __slots__ = (
        "engine",
        "trail",
        "cpstack",
        "comp_stack",
        "next_dfn",
        "created_frames",
        "mode",
        "base_mark",
        "depth",
        "start_generation",
        "stats",
        "trace",
        "prof",
        "compiled",
        "compile_warmup",
        "shared",
        "_eval_locked",
    )

    def __init__(self, engine, mode=MODE_QUERY, depth=0):
        self.engine = engine
        self.trail = engine.trail
        self.cpstack = []
        self.comp_stack = []
        self.next_dfn = 0
        self.created_frames = []
        self.mode = mode
        self.base_mark = 0
        self.depth = depth
        # The registry's static SCC reach sets are sound only while the
        # program the registry analyzed is the program being run; a
        # mid-run assert/retract bumps the store generation and the
        # completion merge below falls back to unconditional merging.
        self.start_generation = mutation_generation()
        # None when statistics are disabled, so every counting site is a
        # single `is not None` test (zero-cost-when-off contract).
        stats = getattr(engine, "stats", None)
        self.stats = stats if stats is not None and stats.enabled else None
        # Same cached-local pattern for the observability layer: the
        # tracer and profiler are snapshotted once per run and are None
        # when disabled, so hook sites cost one `is not None` test.
        tracer = getattr(engine, "tracer", None)
        self.trace = tracer if tracer is not None and tracer.enabled else None
        prof = getattr(engine, "profiler", None)
        self.prof = prof if prof is not None and prof.enabled else None
        # Clause-closure compilation (repro.engine.compile): snapshotted
        # once per run like the stats/trace/prof locals, so the disabled
        # path costs one truth test per user-predicate call.
        self.compiled = getattr(engine, "compile", False)
        self.compile_warmup = getattr(engine, "compile_warmup", 0)
        # Shared-table discipline (repro.engine.kb): snapshotted once
        # per run like the locals above.  When True, _call_tabled
        # probes the shared table space lock-free for completed
        # variants and serializes table *generation* on the KB's
        # evaluation lock (acquired on the first non-completed
        # check-in, released by _cleanup).
        self.shared = getattr(engine, "shared_slg", False)
        self._eval_locked = False

    # -- public entry ---------------------------------------------------------

    def solve(self, goal_term):
        """Generator of solutions (True per solution; read bindings from
        the goal's variables while the generator is suspended)."""
        engine = self.engine
        if self.depth == 0:
            # Top-level query boundary: drain any update deltas and
            # bring completed tables up to date (repair / keep /
            # targeted abolish) before the run snapshots table state.
            # Nested machines never flush — mid-run semantics are the
            # immediate-update semantics the SLG kernels already have.
            maintainer = getattr(engine, "incremental", None)
            if maintainer is not None and maintainer.dirty:
                # In concurrent mode the flush mutates shared frames,
                # so only a write-lock holder may run it here; locked
                # query paths drained the deltas before taking the
                # read side (Session._acquire_query_read).
                kb = getattr(engine, "kb", None)
                if kb is None or not kb.concurrent or kb.lock.write_held():
                    maintainer.flush()
        trail = self.trail
        self.base_mark = trail.mark()
        # The goal chain ends in a $yield node rather than None so that
        # "no continuation" and "builtin failure" cannot be confused.
        end = Goals(_YIELD, None, 0)
        goals = Goals(goal_term, end, 0)
        builtins = engine.builtins
        db = engine.db
        predicates = db.predicates
        counting = engine.counting
        try:
            while True:
                # deref inlined: this dispatch runs once per goal.
                term = goals.term
                while isinstance(term, Var):
                    ref = term.ref
                    if ref is None:
                        break
                    term = ref
                if isinstance(term, Struct):
                    name = term.name
                    args = term.args
                    arity = len(args)
                elif isinstance(term, Atom):
                    name = term.name
                    args = ()
                    arity = 0
                elif isinstance(term, Var):
                    raise InstantiationError("call")
                else:
                    raise TypeError_("callable goal", term)

                # -- control constructs ------------------------------------
                # Ordinary calls take one set probe instead of the whole
                # ladder; a control name with an unexpected arity falls
                # through to the normal dispatch below.
                if name in _CONTROL:
                    if arity == 2 and name == ",":
                        goals = Goals(
                            args[0],
                            Goals(args[1], goals.next, goals.cutbar),
                            goals.cutbar,
                        )
                        continue
                    if arity == 0:
                        if name == "true":
                            goals = goals.next
                            continue
                        if name == "$yield":
                            yield True
                            goals = self._backtrack()
                            if goals is FAILED:
                                return
                            continue
                        if name == "fail" or name == "false":
                            goals = self._backtrack()
                            if goals is FAILED:
                                return
                            continue
                        if name == "!":
                            self._cut_to(goals.cutbar)
                            goals = goals.next
                            continue
                    if arity == 2 and name == ";":
                        goals = self._disjunction(args, goals)
                        continue
                    if arity == 2 and name == "->":
                        goals = self._if_then_else(args[0], args[1], None, goals)
                        continue
                    if name == "$ite" and arity == 2:
                        self._cut_to(args[0])
                        goals = Goals(args[1], goals.next, goals.cutbar)
                        continue
                    if name == "$answer" and arity == 2:
                        goals = self._record_answer(args, goals)
                        if goals is FAILED:
                            return
                        continue
                    if name == "$cutto" and arity == 1:
                        self._cut_to(args[0])
                        goals = goals.next
                        continue

                # -- builtins -----------------------------------------------
                # One (name, arity) tuple serves both dispatch tables.
                key = (name, arity)
                handler = builtins.get(key)
                if handler is not None:
                    result = handler(self, args, goals)
                    if result is None:
                        goals = self._backtrack()
                        if goals is FAILED:
                            return
                    else:
                        goals = result
                    continue

                # -- user predicates ----------------------------------------
                if counting:
                    counts = engine.call_counts
                    counts[key] = counts.get(key, 0) + 1
                    if engine.log_subgoals:
                        engine.subgoal_log.append(
                            (name, arity, canonical_key(term))
                        )
                pred = predicates.get(key)
                if pred is None:
                    if engine.unknown == "fail":
                        goals = self._backtrack()
                        if goals is FAILED:
                            return
                        continue
                    raise ExistenceError(f"{name}/{arity}")
                if pred.tabled:
                    goals = self._call_tabled(term, pred, args, goals)
                else:
                    goals = self._call_user(pred, args, goals)
                if goals is FAILED:
                    return
        finally:
            self._cleanup()

    # -- backtracking / cut ------------------------------------------------------

    def _backtrack(self):
        cpstack = self.cpstack
        trail = self.trail
        while cpstack:
            cp = cpstack[-1]
            trail.undo_to(cp.trail_mark)
            goals = cp.retry(self)
            if goals is not EXHAUSTED:
                return goals
            cpstack.pop()
        return FAILED

    def _cut_to(self, height):
        """Discard choice points above ``height`` (the cut barrier).

        Cutting over a generator of an incomplete table would leave the
        table partially computed; the paper's compiler statically
        rejects such programs, and we reject them dynamically.
        """
        cpstack = self.cpstack
        if height >= len(cpstack):
            return
        for cp in cpstack[height:]:
            if isinstance(cp, GeneratorCP) and not cp.frame.complete:
                raise TablingError(
                    f"cut would close the partially computed table for "
                    f"{cp.frame.indicator}; use tcut/0 or complete the table"
                )
        del cpstack[height:]

    def tcut_to(self, height):
        """``tcut/0``: cut that first frees tables when that is safe.

        If every incomplete generator above the barrier has no other
        users (no suspended consumers), their tables are deleted and the
        cut proceeds; otherwise tcut is a no-op, as section 4.4 states.
        """
        cpstack = self.cpstack
        if height >= len(cpstack):
            return True
        doomed = []
        for cp in cpstack[height:]:
            if isinstance(cp, GeneratorCP) and not cp.frame.complete:
                if cp.frame.consumers:
                    return False  # other users: no-op
                doomed.append(cp.frame)
        tables = self.engine.tables
        if doomed:
            cutpoint = min(frame.comp_index for frame in doomed)
            del self.comp_stack[cutpoint:]
            for frame in doomed:
                tables.delete(frame)
        del cpstack[height:]
        return True

    # -- control helpers --------------------------------------------------------

    def _disjunction(self, args, goals):
        left = deref(args[0])
        if isinstance(left, Struct) and left.name == "->" and len(left.args) == 2:
            return self._if_then_else(left.args[0], left.args[1], args[1], goals)
        alternative = Goals(args[1], goals.next, goals.cutbar)
        self.cpstack.append(DisjCP(self.trail.mark(), alternative))
        return Goals(args[0], goals.next, goals.cutbar)

    def _if_then_else(self, cond, then, els, goals):
        height = len(self.cpstack)
        if els is None:
            alternative = EXHAUSTED  # bare (C -> T) fails when C fails
            cp = DisjCP(self.trail.mark(), EXHAUSTED)
        else:
            cp = DisjCP(
                self.trail.mark(), Goals(els, goals.next, goals.cutbar)
            )
        self.cpstack.append(cp)
        commit = Goals(
            Struct("$ite", (height, then)), goals.next, goals.cutbar
        )
        # A cut inside the condition is local to the condition.
        return Goals(cond, commit, height + 1)

    def _record_answer(self, args, goals):
        frame, call_term = args
        tables = self.engine.tables
        if frame.add_answer(call_term):
            tables.note_answer(True)
            if self.stats is not None and frame.answer_ground[-1]:
                self.stats.ground_answers += 1
            if self.trace is not None:
                self.trace.event(EV_ANSWER_INSERT, frame)
            return goals.next
        tables.note_answer(False)
        if self.trace is not None:
            self.trace.event(EV_ANSWER_DUP, frame)
        result = self._backtrack()
        return result

    # -- ordinary calls -----------------------------------------------------------

    def _ensure_unit(self, pred, stats):
        """Unit for a predicate whose cached unit is missing or stale.

        Compilation is an investment — a mode scan, the frozen-row
        batch, a closure build per dispatched clause — so cold
        predicates stay on the template path until they have been
        called ``compile_warmup`` times; a stale unit means the
        investment was already made once, so mutated-but-warm
        predicates recompile immediately (their count is already past
        the gate).  Returns None while the predicate is still warming
        up, which the dispatch sites read as "template path".
        """
        count = pred.dispatch_count + 1
        pred.dispatch_count = count
        if count <= self.compile_warmup:
            return None
        if pred.row_store is not None:
            # Row-backed relations already match register-against-row
            # (RowClause.match_head is the fused fact kernel's
            # discipline); building per-row closures would materialize
            # the whole EDB, which row mode exists to avoid.
            return None
        # Lazy import: builtins imports this module at load time, so
        # the compiler (which needs builtins) can only be pulled in
        # once the engine is fully constructed — and only on this rare
        # unit-rebuild path.
        from .compile import ensure_unit

        return ensure_unit(pred, self.engine, stats)

    def _call_user(self, pred, args, goals):
        candidates = pred.candidates(args)
        if not candidates:
            return self._backtrack()
        trail = self.trail
        stats = self.stats
        if stats is not None:
            stats.clause_candidates += len(candidates)
        if self.compiled:
            unit = pred.compiled_unit
            if unit is None or unit.stamp != pred.mutations:
                unit = self._ensure_unit(pred, stats)
        else:
            unit = None
        if len(candidates) == 1:
            # Determinate call: no choice point (the WAM's indexing win).
            clause = candidates[0]
            mark = trail.mark()
            if unit is not None:
                closure = unit.closures.get(clause.seq)
                if closure is None:
                    closure = unit.closure_for(clause, stats)
                result = closure(self, args, goals.next, len(self.cpstack))
                if result is None:
                    trail.undo_to(mark)
                    return self._backtrack()
                return result
            slots = clause.match_head(args, trail)
            if slots is None:
                trail.undo_to(mark)
                return self._backtrack()
            if stats is not None:
                stats.clause_matches += 1
            if not clause.body:
                return goals.next
            return goals_for_body(
                clause.body_terms(slots), goals.next, len(self.cpstack)
            )
        cutbar = len(self.cpstack)
        cp = ClauseCP(
            trail.mark(), args, goals.next, candidates, cutbar, unit=unit
        )
        self.cpstack.append(cp)
        result = cp.retry(self)
        if result is EXHAUSTED:
            self.cpstack.pop()
            return self._backtrack()
        return result

    # -- tabled calls ----------------------------------------------------------------

    def _call_tabled(self, term, pred, args, goals):
        engine = self.engine
        tables = engine.tables
        if self.shared and not self._eval_locked:
            # Shared table space, evaluation lock not yet held: probe
            # for a completed variant lock-free.  Completed frames are
            # immutable outside the KB write lock (excluded by this
            # query's read hold), so a hit — this session's or another
            # session's — is served with no lock at all: the free
            # cross-session answer set.  Anything else (miss, or an
            # incomplete frame) serializes table generation on the
            # KB's reentrant evaluation lock; from then on every
            # incomplete frame in the shared space belongs to this
            # thread, which is the invariant the completion machinery
            # assumes within one run.
            frame = tables.lookup_term(term)
            if frame is not None and frame.complete:
                stats = self.stats
                if stats is not None:
                    stats.subgoal_hits += 1
                    if frame.owner >= 0 and frame.owner != engine.sid:
                        stats.table_hit_shared += 1
                if self.trace is not None:
                    self.trace.event(EV_SUBGOAL_HIT, frame)
                trail = self.trail
                consumer = ConsumerCP(trail.mark(), frame, term, goals.next)
                self.cpstack.append(consumer)
                result = consumer.retry(self)
                if result is EXHAUSTED:
                    self.cpstack.pop()
                    return self._backtrack()
                return result
            engine.kb.eval_lock.acquire()
            self._eval_locked = True
        # One canonicalization covers both the variant lookup and (on a
        # miss) the new frame's key.
        frame, created = tables.check_in(term, pred.indicator)
        trail = self.trail
        cpstack = self.cpstack
        stats = self.stats
        trace = self.trace
        prof = self.prof
        if created:
            if stats is not None:
                stats.subgoal_misses += 1
            if trace is not None:
                trace.event(EV_SUBGOAL_MISS, frame)
            frame.owner = engine.sid
            if engine.hybrid and try_hybrid(engine, frame, term, pred, stats,
                                            trace=trace, prof=prof):
                # Datalog-safe SCC: the bridge evaluated the subgoal
                # set-at-a-time (magic rewrite + semi-naive fixpoint),
                # bulk-installed the answers and completed the table —
                # consume it like any other completed table.
                consumer = ConsumerCP(trail.mark(), frame, term, goals.next)
                cpstack.append(consumer)
                result = consumer.retry(self)
                if result is EXHAUSTED:
                    cpstack.pop()
                    return self._backtrack()
                return result
            frame.run = self
            frame.dfn = frame.deplink = self.next_dfn
            self.next_dfn += 1
            frame.comp_index = len(self.comp_stack)
            self.comp_stack.append(frame)
            # Stamp the frame with its static SCC identity: the
            # completion merge uses reach sets to skip deplink merges
            # that the call graph proves impossible (independent
            # components interleaved on the completion stack).
            frame.scc_id, frame.scc_reach = engine.db.analysis.scc_info(
                (pred.name, pred.arity)
            )
            frame.gen_trail_mark = trail.mark()
            self.created_frames.append(frame)
            if prof is not None:
                prof.enter(frame)
            candidates = pred.candidates(args)
            if stats is not None:
                stats.clause_candidates += len(candidates)
            if self.compiled and candidates:
                unit = pred.compiled_unit
                if unit is None or unit.stamp != pred.mutations:
                    unit = self._ensure_unit(pred, stats)
            else:
                unit = None
            cutbar = len(cpstack)
            cp = GeneratorCP(
                trail.mark(), frame, term, args, goals.next, candidates,
                cutbar, unit=unit,
            )
            cpstack.append(cp)
            result = cp.retry(self)
            if result is EXHAUSTED:
                cpstack.pop()
                return self._backtrack()
            return result
        if stats is not None:
            stats.subgoal_hits += 1
            if frame.complete and frame.owner >= 0 and frame.owner != engine.sid:
                stats.table_hit_shared += 1
        if trace is not None:
            trace.event(EV_SUBGOAL_HIT, frame)

        if not frame.complete and frame.run is not self:
            # A subordinate run touching an incomplete outer table: only
            # weak (snapshot) consumption is sound, and only outside
            # negative contexts — this matches the paper's discussion of
            # findall on incomplete tables (section 4.7).
            if self.mode == MODE_NEGATION:
                raise NonStratifiedError(frame.indicator)
            consumer = ConsumerCP(trail.mark(), frame, term, goals.next, weak=True)
        elif not frame.complete:
            # In-run repeated call: merge dependency links so the SCC
            # completes together (approximate SCC of the SLG-WAM).  The
            # analysis registry's static reach sets prune the merge: a
            # younger generator whose predicate component provably
            # cannot reach this frame's component has no dependency on
            # it, so dragging its deplink down would only delay its
            # completion (and grow answer retention) for nothing.  The
            # pruning is sound only while the analyzed program is the
            # running program — any mid-run assert/retract falls back
            # to the unconditional merge.
            dfn = frame.dfn
            scc = frame.scc_id
            if scc < 0 or mutation_generation() != self.start_generation:
                for younger in self.comp_stack[frame.comp_index + 1 :]:
                    if younger.deplink > dfn:
                        younger.deplink = dfn
            else:
                for younger in self.comp_stack[frame.comp_index + 1 :]:
                    if younger.deplink > dfn and (
                        younger.scc_reach is None or scc in younger.scc_reach
                    ):
                        younger.deplink = dfn
            consumer = ConsumerCP(trail.mark(), frame, term, goals.next)
        else:
            consumer = ConsumerCP(trail.mark(), frame, term, goals.next)
        cpstack.append(consumer)
        result = consumer.retry(self)
        if result is EXHAUSTED:
            cpstack.pop()
            return self._backtrack()
        return result

    def scheduling_base_mark(self):
        """Trail mark below which bindings survive until this run's oldest
        incomplete generator completes (the CAT snapshot base)."""
        if self.comp_stack:
            return self.comp_stack[0].gen_trail_mark
        return self.base_mark

    # -- subordinate runs -----------------------------------------------------------

    def nested_machine(self, mode):
        return Machine(self.engine, mode=mode, depth=self.depth + 1)

    def nested_has_solution(self, goal, mode=MODE_NEGATION):
        """Run ``goal`` in a subordinate machine; True at first solution.

        The subordinate run is abandoned as soon as the first solution
        arrives (existential semantics); its incomplete tables are then
        reclaimed, which is the behaviour ``e_tnot`` buys via ``tcut``.
        """
        sub = self.nested_machine(mode)
        gen = sub.solve(goal)
        try:
            for _ in gen:
                return True
            return False
        finally:
            gen.close()

    def nested_drain(self, goal, mode=MODE_NEGATION, collect=None):
        """Run ``goal`` in a subordinate machine to exhaustion.

        Every table the subordinate run creates is completed by the time
        this returns.  When ``collect`` is given it is called once per
        solution (while bindings are installed) and the results list is
        returned; otherwise the solution count is returned.
        """
        sub = self.nested_machine(mode)
        gen = sub.solve(goal)
        results = [] if collect is not None else None
        count = 0
        try:
            for _ in gen:
                count += 1
                if collect is not None:
                    results.append(collect())
        finally:
            gen.close()
        return results if collect is not None else count

    # -- cleanup -------------------------------------------------------------------

    def _cleanup(self):
        """Undo bindings and reclaim incomplete tables of this run."""
        tables = self.engine.tables
        prof = self.prof
        for frame in self.created_frames:
            if not frame.complete:
                tables.delete(frame)
                if prof is not None:
                    # Close the abandoned span so the profiler's stack
                    # does not leak attribution into later queries.
                    prof.exit(frame)
        self.created_frames = []
        self.cpstack.clear()
        self.comp_stack.clear()
        self.trail.undo_to(self.base_mark)
        if self._eval_locked:
            # Incomplete frames created under the evaluation lock are
            # gone (deleted above or completed); only now may another
            # session generate tables.
            self._eval_locked = False
            self.engine.kb.eval_lock.release()
