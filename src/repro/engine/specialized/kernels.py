"""Specialized closure kernels — the SLG-WAM instruction shapes.

Every factory here returns a *kernel*: a closure

    ``kernel(machine, call_args, continuation, cutbar) -> goals | None``

that performs one clause resolution attempt.  On success it returns
the goal chain to continue with (the continuation itself when the
clause contributes no residual body goals); on failure it returns
``None`` and the caller unwinds the trail to its pre-attempt mark —
the same contract as :meth:`Clause.match_head`.

The shapes mirror the instruction specialization of the SLG-WAM (the
paper's compiled-clause story, DESIGN.md maps them):

* :func:`fused_fact_kernel` — a ground fact's head match collapsed to
  per-register compares against precomputed operands (``get_constant``
  fused across the whole head): no slot array, no term construction,
  no trailing except bindings of unbound call registers.
* :func:`clause_kernel` — argument-register head matching (first
  occurrences capture without deref bookkeeping or trailing) plus a
  precompiled body: an eager prefix of inline builtins executed inside
  the closure (the superinstruction) and prebuilt literal builders for
  the residual goals.
* :func:`generic_kernel` — byte-identical in behavior to the template
  path (``match_head`` + ``body_terms``); the fallback for clause
  shapes the compiler does not specialize.

Shape *selection* lives in :mod:`repro.engine.compile`; this module
only manufactures closures from already-chosen plans.
"""

from __future__ import annotations

from ...errors import EvaluationError, InstantiationError
from ...terms import Atom, Struct, Var, compare_terms, unify
from ..builtins import _BINARY, _UNARY, arith_eval
from ..clause import _UNSET, SlotRef, _build
from ..frames import Goals, goals_for_body

__all__ = [
    "OP_CAPTURE",
    "OP_REUNIFY",
    "OP_ATOM",
    "OP_SCALAR",
    "OP_GROUND",
    "fused_fact_kernel",
    "clause_kernel",
    "generic_kernel",
    "const_builder",
    "slot_builder",
    "flat_struct_builder",
    "generic_builder",
    "compile_arith_node",
    "eager_compare",
    "eager_is_slot",
    "eager_is_const",
    "eager_is_term",
    "eager_unify",
    "eager_struct_cmp",
]

# Head-argument op codes.  Ops are ``(op, x, y)`` triples:
# CAPTURE/REUNIFY carry the slot index in x; ATOM carries the atom
# term in x and its interned name (the row-codec value) in y; SCALAR
# and GROUND carry the skeleton term in x.
OP_CAPTURE = 0
OP_REUNIFY = 1
OP_ATOM = 2
OP_SCALAR = 3
OP_GROUND = 4


# --------------------------------------------------------------------------
# head kernels
# --------------------------------------------------------------------------

def fused_fact_kernel(ops):
    """A ground fact's whole head match as one closure.

    ``ops`` holds one ``(op, term, frozen)`` triple per argument; the
    common cases — the call register IS the stored operand (interned
    atoms, small ints) or an unbound variable — resolve with zero
    function calls per register.
    """

    def kernel(machine, call_args, continuation, cutbar):
        entries = machine.trail.entries
        i = 0
        for op, term, frozen in ops:
            a = call_args[i]
            i += 1
            while isinstance(a, Var):
                ref = a.ref
                if ref is None:
                    break
                a = ref
            if a is term:
                continue
            if isinstance(a, Var):
                a.ref = term
                entries.append(a)
            elif op == OP_ATOM:
                if isinstance(a, Atom) and a.name == frozen:
                    continue
                return None
            elif op == OP_SCALAR:
                if type(a) is type(term) and a == term:
                    continue
                return None
            elif not unify(a, term, machine.trail):
                return None
        stats = machine.stats
        if stats is not None:
            stats.clause_matches += 1
            stats.compiled_hits += 1
            stats.fused_fact_matches += 1
        return continuation

    return kernel


def clause_kernel(nslots, head_ops, eager_steps, builders):
    """Argument-register head matching plus a precompiled body.

    ``head_ops`` are ``(op, x, y)`` triples (see the op codes above),
    ``eager_steps`` the leading inline-builtin superinstruction (each
    ``step(machine, slots) -> bool``), ``builders`` the residual body
    literal builders *already reversed* for goal-chain construction.
    """

    def kernel(machine, call_args, continuation, cutbar):
        trail = machine.trail
        slots = [_UNSET] * nslots
        i = 0
        for op, x, y in head_ops:
            a = call_args[i]
            i += 1
            if op == OP_CAPTURE:
                while isinstance(a, Var):
                    ref = a.ref
                    if ref is None:
                        break
                    a = ref
                slots[x] = a
                continue
            if op == OP_REUNIFY:
                if not unify(slots[x], a, trail):
                    return None
                continue
            while isinstance(a, Var):
                ref = a.ref
                if ref is None:
                    break
                a = ref
            if a is x:
                continue
            if isinstance(a, Var):
                a.ref = x
                trail.entries.append(a)
            elif op == OP_ATOM:
                if isinstance(a, Atom) and a.name == y:
                    continue
                return None
            elif op == OP_SCALAR:
                if type(a) is type(x) and a == x:
                    continue
                return None
            elif not unify(a, x, trail):
                return None
        stats = machine.stats
        if stats is not None:
            stats.clause_matches += 1
            stats.compiled_hits += 1
        for step in eager_steps:
            if not step(machine, slots):
                return None
        goals = continuation
        for build in builders:
            goals = Goals(build(slots), goals, cutbar)
        return goals

    return kernel


def generic_kernel(clause):
    """The fallback: template matching wrapped in the kernel contract.

    Behaviorally byte-identical to the uncompiled path — same
    ``match_head``, same ``body_terms`` — so any clause the compiler
    declines to specialize loses nothing.
    """
    match_head = clause.match_head
    body = clause.body
    body_terms = clause.body_terms

    def kernel(machine, call_args, continuation, cutbar):
        slots = match_head(call_args, machine.trail)
        if slots is None:
            return None
        stats = machine.stats
        if stats is not None:
            stats.clause_matches += 1
            stats.compiled_fallbacks += 1
        if not body:
            return continuation
        return goals_for_body(body_terms(slots), continuation, cutbar)

    return kernel


# --------------------------------------------------------------------------
# body literal builders (the compiled analog of put instructions)
# --------------------------------------------------------------------------

def const_builder(term):
    """A ground literal: share the immutable skeleton, build nothing."""

    def build(slots):
        return term

    return build


def slot_builder(index, name):
    """A bare-variable literal (call through a clause variable)."""

    def build(slots):
        value = slots[index]
        if value is _UNSET:
            value = Var(name)
            slots[index] = value
        return value

    return build


def flat_struct_builder(name, parts):
    """A literal whose children are slots or ground constants.

    ``parts`` holds ``(is_slot, value, varname)`` triples; the builder
    is a single pass with no stack machinery (cf. the explicit-stack
    walk in :func:`repro.engine.clause._build`).
    """

    def build(slots):
        out = []
        append = out.append
        for is_slot, value, varname in parts:
            if is_slot:
                v = slots[value]
                if v is _UNSET:
                    v = Var(varname)
                    slots[value] = v
                append(v)
            else:
                append(value)
        return Struct(name, out)

    return build


def generic_builder(skeleton):
    """Anything nested: the template instantiation walk."""

    def build(slots):
        return _build(skeleton, slots)

    return build


# --------------------------------------------------------------------------
# eager inline builtins (superinstruction steps)
# --------------------------------------------------------------------------
#
# Each step runs *inside* the clause closure, after the head matched:
# ``step(machine, slots) -> bool``.  A False return fails the whole
# resolution attempt; the caller's trail unwind (to the pre-attempt
# mark) discards any partial bindings, which is observably identical
# to the builtin failing as a goal and the machine backtracking.

def compile_arith_node(sk):
    """Compile an arithmetic-expression skeleton to ``fn(slots) -> num``.

    Known operators become direct closure composition over
    :data:`~repro.engine.builtins._BINARY` / ``_UNARY`` — the same
    functions, wrapped with the same error translation, that
    :func:`~repro.engine.builtins.arith_eval` applies — so compiled
    and interpreted evaluation raise identical errors in identical
    order.  Anything else (atom constants incl. the dynamic
    ``random``, unknown functors) defers to ``arith_eval`` at run
    time, preserving its error behavior exactly.
    """
    t = type(sk)
    if t is int or t is float:
        return lambda slots: sk
    if t is SlotRef:
        index = sk.index

        def node(slots):
            v = slots[index]
            tv = type(v)
            if tv is int or tv is float:
                return v
            if v is _UNSET:
                raise InstantiationError("arithmetic expression")
            return arith_eval(v)

        return node
    if t is Struct:
        args = sk.args
        if len(args) == 2:
            fn = _BINARY.get(sk.name)
            if fn is not None:
                left = compile_arith_node(args[0])
                right = compile_arith_node(args[1])

                def node(slots):
                    try:
                        return fn(left(slots), right(slots))
                    except ZeroDivisionError as exc:
                        raise EvaluationError("zero_divisor") from exc

                return node
        elif len(args) == 1:
            fn = _UNARY.get(sk.name)
            if fn is not None:
                operand = compile_arith_node(args[0])

                def node(slots):
                    try:
                        return fn(operand(slots))
                    except ValueError as exc:
                        raise EvaluationError(str(exc)) from exc

                return node

        def node(slots):
            return arith_eval(_build(sk, slots))

        return node

    def node(slots):
        return arith_eval(sk)

    return node


def eager_compare(op, left, right):
    """One arithmetic comparison collapsed into the clause closure."""

    def step(machine, slots):
        return op(left(slots), right(slots))

    return step


def eager_is_slot(index, expr):
    """``Slot is Expr``: bind the register directly — no fresh Var, no
    ``is/2`` goal term, no trailing when the slot is body-only."""

    def step(machine, slots):
        value = expr(slots)
        cur = slots[index]
        if cur is _UNSET:
            slots[index] = value
            return True
        return unify(cur, value, machine.trail)

    return step


def eager_is_const(target, expr):
    """``Const is Expr``: type-exact value check, as unify would."""

    def step(machine, slots):
        value = expr(slots)
        return type(value) is type(target) and value == target

    return step


def eager_is_term(build, expr):
    def step(machine, slots):
        value = expr(slots)
        return unify(build(slots), value, machine.trail)

    return step


def eager_unify(left, right):
    def step(machine, slots):
        return unify(left(slots), right(slots), machine.trail)

    return step


def eager_struct_cmp(want_equal, left, right):
    def step(machine, slots):
        return (compare_terms(left(slots), right(slots)) == 0) is want_equal

    return step
