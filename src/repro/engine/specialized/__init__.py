"""Specialized clause kernels for the compiled SLD/SLG inner loop.

See :mod:`repro.engine.specialized.kernels` for the kernel factories
and :mod:`repro.engine.compile` for shape selection and caching.
"""

from .kernels import (
    clause_kernel,
    fused_fact_kernel,
    generic_kernel,
)

__all__ = ["clause_kernel", "fused_fact_kernel", "generic_kernel"]
