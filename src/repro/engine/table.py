"""Table space: subgoal frames, answer stores, suspensions.

The table space is the memory area the SLG-WAM adds to the WAM
(section 3.2): a map from *variant-canonical* subgoals to subgoal
frames, each holding its answers, its completion bookkeeping and its
suspended consumers.  Completed tables persist across queries (that is
the memo benefit) until reclaimed with ``abolish_all_tables`` or
deleted by ``tcut``/existential negation.
"""

from __future__ import annotations

from ..index import AnswerTrie
from ..store.tuplestore import MemoryTupleStore
from ..terms import (
    Struct,
    canonical_key,
    copy_term,
    instantiate_key,
    is_ground,
    resolve,
)
from ..terms.compare import canonical_key_ground, flat_ground_answer

__all__ = [
    "SubgoalFrame",
    "Suspension",
    "TableSpace",
    "INCOMPLETE",
    "COMPLETE",
    "LIFE_VALID",
    "LIFE_INVALID",
    "LIFE_REDERIVING",
    "frame_call_term",
]

INCOMPLETE = "incomplete"
COMPLETE = "complete"

# The maintenance lifecycle of a *completed* table under update
# (repro.engine.incremental).  Orthogonal to ``state``: a frame is
# ``valid`` while its answers agree with the current clause set,
# ``invalid`` once a flush proves a changed predicate reachable from
# it, and ``re-deriving`` while the semi-naive delta repair is
# rebuilding its answer set — after which it is ``valid`` again.
LIFE_VALID = "valid"
LIFE_INVALID = "invalid"
LIFE_REDERIVING = "re-deriving"


def frame_call_term(frame, variables=None):
    """Rebuild the call term a frame was checked in under.

    In dict mode the frame key is the flat canonical key and is parsed
    back with :func:`~repro.terms.instantiate_key`; in trie mode the
    key already *is* a (copied) term.  Either way the result is a fresh
    renaming safe to unify against — the table inspection builtins
    (``get_calls/2``, ``table_state/2``) and the observability layer's
    subgoal labels are both built on this.
    """
    key = frame.key
    if isinstance(key, tuple):
        return instantiate_key(key, variables)
    return copy_term(key)


class Suspension:
    """A consumer that ran out of answers while its table was incomplete.

    Stores everything needed to resume: the continuation goals, the
    call instance whose variables the continuation shares, how many
    answers were already consumed, and the trail segment between the
    scheduling base and the suspension point (the CAT approach — the
    forward trail *is* the saved consumer state).
    """

    __slots__ = ("goals", "call_term", "consumed", "snapshot")

    def __init__(self, goals, call_term, consumed, snapshot):
        self.goals = goals
        self.call_term = call_term
        self.consumed = consumed
        self.snapshot = snapshot


class SubgoalFrame:
    """Per-tabled-subgoal state.

    ``dfn``/``deplink`` implement the SLG-WAM's approximate SCC check:
    ``deplink`` is the smallest depth-first number of any incomplete
    subgoal this one's computation was observed to depend on; a
    generator whose ``deplink`` equals its own ``dfn`` when it exhausts
    its clauses is a *leader* and may complete its whole SCC.
    """

    __slots__ = (
        "key",
        "indicator",
        "seq",
        "state",
        "answers",
        "answer_ground",
        "answer_keys",
        "answer_store",
        "answer_trie",
        "consumers",
        "dfn",
        "deplink",
        "comp_index",
        "run",
        "gen_trail_mark",
        "negation_delayed",
        "scc_id",
        "scc_reach",
        "lifecycle",
        "owner",
    )

    def __init__(self, key, indicator, use_trie=False, seq=0):
        self.key = key
        self.indicator = indicator
        # Stable engine-wide sequence number (assigned by TableSpace
        # from its cumulative creation counter): the identity trace
        # events, profile spans and get_calls/2 all key on.
        self.seq = seq
        self.state = INCOMPLETE
        self.answers = []
        self.answer_ground = []
        if use_trie:
            self.answer_store = None
            self.answer_keys = None
            self.answer_trie = AnswerTrie()
        else:
            # The hash-mode answer table is a TupleStore driven through
            # add_keyed: membership (the duplicate check of section
            # 4.5 — "a hash index that includes all arguments of the
            # answer") is by canonical answer key, and the store's rows
            # hold the dereferenced argument values of every flat
            # ground answer in insertion order.  answer_keys aliases
            # the store's membership set so non-flat answers (which
            # have a key but no row) share the same duplicate check.
            self.answer_store = MemoryTupleStore(indicator, None)
            self.answer_keys = self.answer_store.tuples
            self.answer_trie = None
        self.consumers = []
        self.dfn = -1
        self.deplink = -1
        self.comp_index = -1
        self.run = None
        self.gen_trail_mark = 0
        self.negation_delayed = False
        # Static SCC identity from the analysis registry, stamped by the
        # machine when the generator is created: scc_id is the
        # predicate's component id in the registry's call graph,
        # scc_reach the frozenset of component ids its evaluation can
        # reach (None = unknown/unbounded, merge conservatively).
        self.scc_id = -1
        self.scc_reach = None
        self.lifecycle = LIFE_VALID
        # Session id of the run that generated this table (shared-KB
        # mode only; -1 otherwise).  A completed-variant hit from a
        # different session counts as table_hit_shared — the
        # cross-session answer-cache metric.
        self.owner = -1

    # -- answers ------------------------------------------------------------

    def add_answer(self, term):
        """Insert a (copied) answer; False when it is a duplicate.

        This is the duplicate check of section 4.5: "a hash index that
        includes all arguments of the answer", or, in trie mode, the
        integrated check-and-store traversal.

        One traversal produces both the duplicate-check key and the
        groundness bit.  Ground answers are stored *resolved* instead of
        copied — a resolved ground term contains no variable cells, so
        it is immune to backtracking, shares structure with the live
        heap term, and (recorded in ``answer_ground``) lets consumers
        unify against it directly with no ``copy_term`` and no fresh
        trail traffic from the answer side.
        """
        if self.answer_trie is not None:
            stored = copy_term(term)
            if not self.answer_trie.insert(stored):
                return False
            self.answers.append(stored)
            self.answer_ground.append(is_ground(stored))
            return True
        fast = flat_ground_answer(term)
        if fast is not None:
            # Flat ground answer: one loop produced both the key and the
            # dereferenced argument values; duplicates allocate nothing.
            key, struct, values, substituted = fast
            if not self.answer_store.add_keyed(key, values):
                return False
            self.answers.append(
                Struct(struct.name, values) if substituted else struct
            )
            self.answer_ground.append(True)
            return True
        key, ground = canonical_key_ground(term)
        if key in self.answer_keys:
            return False
        self.answer_keys.add(key)
        self.answers.append(resolve(term) if ground else copy_term(term))
        self.answer_ground.append(ground)
        return True

    def add_answers_bulk(self, terms, rows=None):
        """Bulk-install answers from a set-at-a-time evaluation.

        The caller (the hybrid bridge in :mod:`repro.engine.hybrid`)
        guarantees the terms are ground, variable-free and mutually
        distinct — the bottom-up fixpoint already deduplicated them —
        so the per-answer variant check, the groundness analysis and
        the answer-trie traversal of :meth:`add_answer` are all
        skipped; installation is list extends.  ``rows`` optionally
        carries the answers' frozen value rows, which land in the
        answer store so its row sequence mirrors ``answers``.  Only
        valid on a frame that is immediately marked complete
        afterwards: the duplicate-check structures are left untouched,
        so interleaving with :meth:`add_answer` would re-admit
        duplicates.
        """
        self.answers.extend(terms)
        self.answer_ground.extend([True] * len(terms))
        if rows is not None and self.answer_store is not None:
            self.answer_store.rows.extend(rows)
        return len(terms)

    def reset_answers(self):
        """Drop every stored answer, keeping the frame checked in.

        The incremental repair path (:mod:`repro.engine.incremental`)
        empties a stale completed table and bulk re-installs the
        repaired answer set; the frame object — and hence its key,
        sequence number and registry identity — survives, so variant
        hits, trace labels and profile spans keep working across the
        repair.  Returns the number of answers dropped (the caller
        adjusts the table-space gauge).
        """
        dropped = len(self.answers)
        self.answers = []
        self.answer_ground = []
        if self.answer_trie is not None:
            self.answer_trie = AnswerTrie()
        else:
            self.answer_store = MemoryTupleStore(self.indicator, None)
            self.answer_keys = self.answer_store.tuples
        return dropped

    def answer_count(self):
        return len(self.answers)

    @property
    def complete(self):
        return self.state == COMPLETE

    def mark_complete(self):
        self.state = COMPLETE
        self.consumers = []
        self.run = None

    def has_unconditional_answer(self):
        """For negation: is the (ground) subgoal true?"""
        return bool(self.answers)

    def __repr__(self):
        return (
            f"<SubgoalFrame {self.indicator} {self.state} "
            f"{len(self.answers)} answers>"
        )


class TableSpace:
    """The engine-wide store of subgoal frames.

    The call-pattern index (section 4.5) comes in two flavours: a hash
    on the whole variant-canonical key (``subgoal_index="dict"``, the
    default) or a subgoal trie (``"trie"``) where one traversal is both
    the variant check and the check-in.
    """

    def __init__(self, use_trie=False, subgoal_index="dict"):
        if subgoal_index not in ("dict", "trie"):
            raise ValueError("subgoal_index must be 'dict' or 'trie'")
        self.subgoal_index = subgoal_index
        if subgoal_index == "trie":
            from ..index.subgoal_trie import SubgoalTrie

            self._trie = SubgoalTrie()
            self.frames = None
        else:
            self._trie = None
            self.frames = {}
        self.use_trie = use_trie
        # Counters reported by Engine.table_statistics().
        self.subgoals_created = 0
        self.answers_inserted = 0
        self.duplicate_answers = 0
        # Table-space high-water mark: one unit per subgoal frame plus
        # one per stored answer (XSB's "table space used" statistic).
        self.space_live = 0
        self.space_peak = 0

    # -- frame check-in / lookup -------------------------------------------------

    def call_key(self, term):
        """The variant-canonical key of a call, or None in trie mode.

        Callers that look a subgoal up more than once (tnot, tfindall)
        compute the key once and pass it back via ``lookup_term``'s
        ``key`` argument instead of re-canonicalizing the term.
        """
        if self._trie is not None:
            return None
        return canonical_key(term)

    def lookup_term(self, term, key=None):
        """The frame for a variant of ``term``, or None.

        ``key`` may carry a precomputed :func:`canonical_key` of
        ``term`` (from :meth:`call_key`) to skip re-canonicalization.
        """
        if self._trie is not None:
            return self._trie.lookup(term)
        if key is None:
            key = canonical_key(term)
        return self.frames.get(key)

    def check_in(self, term, indicator):
        """Look a subgoal variant up, creating its frame on a miss.

        Returns ``(frame, created)``.  One canonicalization serves both
        the lookup and the frame key — the previous lookup-then-create
        dance canonicalized every new subgoal twice.
        """
        if self._trie is not None:
            frame = self._trie.lookup(term)
            if frame is not None:
                return frame, False
            frame = SubgoalFrame(copy_term(term), indicator,
                                 use_trie=self.use_trie,
                                 seq=self.subgoals_created)
            self._trie.insert(frame.key, frame)
        else:
            key = canonical_key(term)
            frame = self.frames.get(key)
            if frame is not None:
                return frame, False
            frame = SubgoalFrame(key, indicator, use_trie=self.use_trie,
                                 seq=self.subgoals_created)
            self.frames[key] = frame
        self.subgoals_created += 1
        self.space_live += 1
        if self.space_live > self.space_peak:
            self.space_peak = self.space_live
        return frame, True

    def create_term(self, term, indicator):
        """Check a new subgoal in; the caller guarantees it is new."""
        if self._trie is not None:
            frame = SubgoalFrame(copy_term(term), indicator,
                                 use_trie=self.use_trie,
                                 seq=self.subgoals_created)
            self._trie.insert(frame.key, frame)
        else:
            key = canonical_key(term)
            frame = SubgoalFrame(key, indicator, use_trie=self.use_trie,
                                 seq=self.subgoals_created)
            self.frames[key] = frame
        self.subgoals_created += 1
        self.space_live += 1
        if self.space_live > self.space_peak:
            self.space_peak = self.space_live
        return frame

    def note_answer(self, inserted):
        """Book-keeping for one ``add_answer`` outcome."""
        if inserted:
            self.answers_inserted += 1
            self.space_live += 1
            if self.space_live > self.space_peak:
                self.space_peak = self.space_live
        else:
            self.duplicate_answers += 1

    def note_bulk_answers(self, count):
        """Book-keeping for one :meth:`SubgoalFrame.add_answers_bulk`."""
        if count:
            self.answers_inserted += count
            self.space_live += count
            if self.space_live > self.space_peak:
                self.space_peak = self.space_live

    def delete(self, frame):
        """Remove a frame entirely (tcut / abandoned existential runs)."""
        if self._trie is not None:
            self._trie.remove(frame.key)
            self.space_live -= 1 + len(frame.answers)
            return
        existing = self.frames.get(frame.key)
        if existing is frame:
            del self.frames[frame.key]
            self.space_live -= 1 + len(frame.answers)

    def abolish_all(self):
        """``abolish_all_tables``: reclaim all table space."""
        if self._trie is not None:
            self._trie.clear()
        else:
            self.frames.clear()
        self.space_live = 0

    # -- inspection ----------------------------------------------------------------

    def all_frames(self):
        if self._trie is not None:
            return self._trie.frames()
        return list(self.frames.values())

    def frame_count(self):
        if self._trie is not None:
            return len(self._trie)
        return len(self.frames)

    def completed_count(self):
        return sum(1 for f in self.all_frames() if f.complete)

    def statistics(self):
        frames = self.all_frames()
        return {
            "subgoals": len(frames),
            "completed": sum(1 for f in frames if f.complete),
            "subgoals_created": self.subgoals_created,
            "answers_inserted": self.answers_inserted,
            "duplicate_answers": self.duplicate_answers,
            "answers_stored": sum(len(f.answers) for f in frames),
            "space_live": self.space_live,
            "space_peak": self.space_peak,
        }
