"""Well-founded semantics interpreter for non-stratified programs.

XSB's engine evaluates SLG restricted to modularly stratified programs
(section 3.2, footnote 4); "code that needs to use full (i.e.,
nonstratified) SLG is (currently) executed using a meta-interpreter
executing on top of the engine" (section 4.2), computing the
well-founded model [21] — equivalently the three-valued stable model
[11].  This module is that meta-interpreter.

Strategy: the program (datalog with negation; arithmetic and term
construction allowed as long as the relevant instantiation is finite)
is grounded *relevantly* — only rule instances whose positive part is
potentially derivable are produced — and the well-founded model of the
ground program is computed by the alternating fixpoint, the same
strategy the paper's comparator Glue-Nail uses [9].  On top of the
model, conditional answers are exposed as a *residual program*: rules
among undefined atoms with the true/false parts simplified away, which
is the delay-list view of SLG answers that [5] uses to enumerate
three-valued stable models.
"""

from __future__ import annotations

from ..bottomup.datalog import parse_program
from ..bottomup.wellfounded import alternating_fixpoint, ground_program
from ..errors import ReproError
from ..terms import Atom, Struct, Var, deref

__all__ = ["WFSInterpreter", "TRUE", "FALSE", "UNDEFINED", "needs_wfs", "solve"]

TRUE = "true"
FALSE = "false"
UNDEFINED = "undefined"


def _value_of(term):
    """Frozen ground value of a parsed term (no variables allowed)."""
    term = deref(term)
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Struct):
        return (term.name,) + tuple(_value_of(a) for a in term.args)
    if isinstance(term, Var):
        raise ReproError("WFS queries must be ground or open per argument")
    return term


def needs_wfs(engine, name, arity):
    """True when the registry reports the predicate's component as
    non-stratified — the only case that needs the meta-interpreter."""
    return engine.db.analysis.needs_wfs((name, arity))


def solve(engine, name, arity, args=None):
    """Route one query by the registry's stratification verdict.

    ``args`` uses None for open positions and frozen values for bound
    ones (the bottom-up value domain).  Stratified predicates run on
    the SLG engine — two-valued, so the undefined set is empty; only a
    predicate whose component the registry reports non-stratified pays
    for the alternating fixpoint.  Returns sorted
    ``(true_rows, undefined_rows)``.
    """
    if args is None:
        args = (None,) * arity
    if needs_wfs(engine, name, arity):
        return engine.db.analysis.wfs_interpreter(engine).query(name, args)
    from ..store.codec import thaw_value
    from ..terms import mkatom

    goal_args = tuple(
        Var() if value is None else thaw_value(value) for value in args
    )
    goal = Struct(name, goal_args) if arity else mkatom(name)
    rows = set()
    for _ in engine.query_iter(goal, raw=True):
        rows.add(tuple(_value_of(arg) for arg in goal_args))
    return sorted(rows), []


class WFSInterpreter:
    """Three-valued query answering over the well-founded model.

    Construct from program text (Prolog/datalog syntax); facts may be
    included in the text or supplied separately via :meth:`add_facts`.
    The model is computed lazily on first query and cached until the
    facts change.
    """

    def __init__(self, text=""):
        self.program, self.facts = parse_program(text, check_safety=False)
        self._model = None

    @classmethod
    def from_engine(cls, engine):
        """Lift a tuple-engine program into the WFS interpreter.

        The rules and facts come straight from the analysis registry's
        shared lowering (no unparse/reparse round trip), so the
        meta-interpreter evaluates exactly the IR every other layer
        analyzes.
        """
        interp = cls("")
        interp.program, interp.facts = engine.db.analysis.lowered_program()
        return interp

    def add_facts(self, name, rows):
        """Add EDB facts: rows of Python values (str = atom)."""
        rows = [tuple(row) for row in rows]
        if not rows:
            return self
        arity = len(rows[0])
        self.facts.setdefault((name, arity), []).extend(rows)
        self._model = None
        return self

    # -- model computation -------------------------------------------------------

    def model(self):
        """``(true_atoms, undefined_atoms)`` over ``(pred, args)`` pairs."""
        if self._model is None:
            rules = ground_program(self.program, self.facts)
            self._ground_rules = rules
            self._model = alternating_fixpoint(rules)
        return self._model

    def truth(self, pred, args):
        """Truth value of one ground atom: TRUE / UNDEFINED / FALSE."""
        true_atoms, undefined = self.model()
        atom = (pred, tuple(args))
        if atom in true_atoms:
            return TRUE
        if atom in undefined:
            return UNDEFINED
        return FALSE

    def query(self, pred, args):
        """Three-valued query: ``args`` uses None for open positions.

        Returns ``(true_rows, undefined_rows)`` of matching tuples.
        """
        true_atoms, undefined = self.model()

        def matches(row):
            return len(row) == len(args) and all(
                a is None or a == v for a, v in zip(args, row)
            )

        true_rows = sorted(
            row for (p, row) in true_atoms if p == pred and matches(row)
        )
        undef_rows = sorted(
            row for (p, row) in undefined if p == pred and matches(row)
        )
        return true_rows, undef_rows

    # -- residual program (answers conditioned by delays) --------------------------

    def residual(self):
        """Simplified rules among the undefined atoms.

        Each entry is ``(head_atom, positive_conditions,
        negative_conditions)`` with all true conditions removed and all
        rules containing false conditions dropped — the transformed
        program of section 3.1 "from which sets of 3-valued stable
        models can be computed".
        """
        true_atoms, undefined = self.model()
        residual = []
        for head, pos, neg in self._ground_rules:
            if head not in undefined:
                continue
            pos_left = []
            dead = False
            for atom in pos:
                if atom in true_atoms:
                    continue
                if atom in undefined:
                    pos_left.append(atom)
                else:
                    dead = True
                    break
            if dead:
                continue
            neg_left = []
            for atom in neg:
                if atom in true_atoms:
                    dead = True
                    break
                if atom in undefined:
                    neg_left.append(atom)
            if dead:
                continue
            residual.append((head, pos_left, neg_left))
        return residual

    def stable_models(self, limit=64):
        """Enumerate (total) stable models restricted to the undefined
        atoms by brute force over the residual program.

        For each assignment of the undefined atoms consistent with the
        residual rules under the stable-model condition, yields the set
        of atoms assigned true.  This realizes the paper's remark that
        conditional answers form a program from which three-valued
        stable models can be computed [5].
        """
        _, undefined = self.model()
        undefined = sorted(undefined)
        if len(undefined) > 16:
            raise ReproError("too many undefined atoms to enumerate")
        residual = self.residual()
        models = []
        for mask in range(1 << len(undefined)):
            assignment = {
                atom: bool(mask >> i & 1) for i, atom in enumerate(undefined)
            }
            if self._is_stable(residual, undefined, assignment):
                models.append({a for a, v in assignment.items() if v})
                if len(models) >= limit:
                    break
        return models

    @staticmethod
    def _is_stable(residual, undefined, assignment):
        """Gelfond-Lifschitz check restricted to the residual program."""
        # reduct: drop rules with a negative condition assigned true;
        # then the true atoms must be exactly the reduct's least model.
        reduct = []
        for head, pos, neg in residual:
            if any(assignment.get(a, False) for a in neg):
                continue
            reduct.append((head, pos))
        derived = set()
        changed = True
        while changed:
            changed = False
            for head, pos in reduct:
                if head not in derived and all(p in derived for p in pos):
                    derived.add(head)
                    changed = True
        return derived == {a for a, v in assignment.items() if v}
