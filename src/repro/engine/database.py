"""The predicate store: static and dynamic code, index plans, tabling flags.

XSB distinguishes *static* predicates (compiled, immutable while
loaded; hash or first-string indexing) from *dynamic* predicates
(modifiable tuple-at-a-time via assert/retract; hash indexing on any
field or combination of fields).  Both compile clauses the same way
here, which reproduces the paper's observation that "dynamic database
facts have almost identical representation as compiled facts and so
execute at essentially the same speed" (section 4.2).
"""

from __future__ import annotations

from ..errors import ReproError, TypeError_
from ..index import FirstStringIndex, IndexPlan, IndexSpec
from ..store import freeze_term, make_store, thaw_value
from ..store.codec import FreezeError
from ..terms import Atom, Struct, Var, bind, deref, mkatom, unify
from .clause import Clause, compile_clause

__all__ = [
    "Predicate",
    "Database",
    "RowClause",
    "mutation_generation",
]

HASH = "hash"
TRIE = "trie"  # first-string indexing

# A process-wide clause-mutation generation, bumped alongside every
# per-predicate ``mutations`` stamp.  Cached analyses (the hybrid
# planner's per-predicate verdicts) record the generation they were
# validated at: while it is unchanged, *nothing* in any database has
# been asserted or retracted, so the cache is valid by a single integer
# compare instead of a per-predicate stamp walk.  Spurious bumps (a
# mutation in an unrelated predicate or another engine) only cost the
# slow revalidation path, never correctness.
_GENERATION = [0]


def mutation_generation():
    return _GENERATION[0]


class RowClause:
    """A fact clause materialized on demand from one stored row.

    Row-backed predicates (:meth:`Predicate.extend_facts` in ``"rows"``
    mode) keep their extensional database as a TupleStore of frozen
    codec rows — a 1M-fact relation is one store plus this thin view,
    not a million :class:`~repro.engine.clause.Clause` objects.  A
    RowClause satisfies the clause duck type the resolution paths use
    (``seq``/``body``/``match_head``/``body_terms``/``to_term``/...);
    ``seq`` is the row id, stable because row-backed predicates promote
    to real clauses before any destructive mutation (see
    :meth:`Predicate._promote_rows`).  ``match_head`` compares the
    row's frozen values against the call arguments directly — the same
    register-against-row discipline as the compiled fused fact kernel —
    thawing a value to a term only to bind an unbound argument.
    """

    __slots__ = ("store", "name", "seq")

    body = ()
    nslots = 0
    source = None

    def __init__(self, store, name, seq):
        self.store = store
        self.name = name
        self.seq = seq

    @property
    def arity(self):
        return self.store.arity

    @property
    def indicator(self):
        return f"{self.name}/{self.store.arity}"

    @property
    def head_args(self):
        return tuple(
            thaw_value(value) for value in self.store.row_at(self.seq)
        )

    # -- resolution (the Clause duck type) --------------------------------

    def match_head(self, call_args, trail):
        """Row-vs-registers head match; ``[]`` (no slots) or None."""
        for value, arg in zip(self.store.row_at(self.seq), call_args):
            t = deref(arg)
            if isinstance(t, Var):
                bind(t, thaw_value(value), trail)
                continue
            tv = type(value)
            if tv is str:
                if not (isinstance(t, Atom) and t.name == value):
                    return None
            elif tv is tuple:
                if not unify(t, thaw_value(value), trail):
                    return None
            elif type(t) is not tv or t != value:
                return None
        return []

    def body_terms(self, slots):
        return []

    def head_term(self, slots):
        return self.to_term()

    def fresh_slots(self):
        return []

    # -- inspection -------------------------------------------------------

    def to_term(self):
        row = self.store.row_at(self.seq)
        if not row:
            return mkatom(self.name)
        return Struct(self.name, tuple(thaw_value(v) for v in row))

    def variant_key(self):
        from ..terms.compare import canonical_key

        return canonical_key(self.to_term())

    def __repr__(self):
        return f"<RowClause {self.indicator} #{self.seq}>"


class _RowClauseList:
    """The ``clauses`` view of a row-backed predicate.

    Sequence-shaped (``len``/``iter``/``[i]``) so every read-only
    clause consumer works unchanged; RowClause objects are minted per
    access and carry only (store, name, row id).  Row ids are exactly
    ``range(len(store))``: the store is append-only while row-backed
    (dedup skips never leave holes, and destructive operations promote
    to real clauses first).
    """

    __slots__ = ("pred",)

    def __init__(self, pred):
        self.pred = pred

    def __len__(self):
        return len(self.pred.row_store)

    def __iter__(self):
        pred = self.pred
        store = pred.row_store
        name = pred.name
        for rid in range(len(store)):
            yield RowClause(store, name, rid)

    def __getitem__(self, item):
        pred = self.pred
        store = pred.row_store
        count = len(store)
        if isinstance(item, slice):
            return [
                RowClause(store, pred.name, rid)
                for rid in range(*item.indices(count))
            ]
        if item < 0:
            item += count
        if not 0 <= item < count:
            raise IndexError(item)
        return RowClause(store, pred.name, item)

    def __repr__(self):
        return f"<_RowClauseList {len(self)} rows>"


class Predicate:
    """All clauses and metadata for one name/arity."""

    __slots__ = (
        "name",
        "arity",
        "clauses",
        "dynamic",
        "tabled",
        "index_kind",
        "index_plan",
        "trie_index",
        "next_seq",
        "module",
        "subsumptive",
        "mutations",
        "fact_store",
        "fact_store_stamp",
        "compiled_unit",
        "dispatch_count",
        "row_store",
        "_row_index",
        "_row_index_stamp",
        "delta_sink",
        "write_guard",
    )

    def __init__(self, name, arity, dynamic=False, module="usermod"):
        self.name = name
        self.arity = arity
        self.clauses = []
        self.dynamic = dynamic
        self.tabled = False
        self.index_kind = HASH
        self.index_plan = IndexPlan(arity)
        self.trie_index = None
        self.next_seq = 0
        self.module = module
        self.subsumptive = False
        # Clause-set version stamp.  Every assert/retract bumps it (and
        # the process-global generation); the analysis registry
        # (repro.analysis.registry) records the stamps of everything a
        # cached result looked at and revalidates against them, so
        # dynamic code invalidates exactly the dependent analyses
        # without any cross-predicate bookkeeping here.
        self.mutations = 0
        # The ground-fact side of the predicate as a TupleStore of
        # frozen rows (see fact_rows), cached against the mutations
        # stamp.  Clause indexing stays term-level in index_plan; this
        # store serves the set-at-a-time consumers (the hybrid bridge,
        # statistics aggregation) without re-freezing per plan.
        self.fact_store = None
        self.fact_store_stamp = -1
        # Compiled-closure unit (repro.engine.compile.CompiledUnit),
        # attached lazily by the machine when Engine(compile=) is on
        # and revalidated against the mutations stamp on every
        # dispatch — the same discipline as the analysis registry, so
        # assert/retract/abolish can never serve stale compiled code.
        self.compiled_unit = None
        # Calls dispatched while uncompiled; the machine compiles the
        # predicate once this clears Engine(compile_warmup=), so a
        # predicate that is only ever called a handful of times never
        # pays the mode scan or per-clause closure builds.
        self.dispatch_count = 0
        # Row mode (extend_facts materialize="rows"): the relation IS
        # a TupleStore and ``clauses`` is a lazy RowClause view over
        # it; _row_index maps first-column probe keys to row ids,
        # rebuilt lazily against the mutations stamp.  None = normal
        # clause-land predicate.
        self.row_store = None
        self._row_index = None
        self._row_index_stamp = -1
        # Typed update-delta sink (repro.engine.incremental): when the
        # owning engine runs with incremental table maintenance on,
        # every mutation below reports *what* changed — a fact-row
        # insert/remove, or a structural (rule-level) change — instead
        # of only bumping the stamps.  None (the default) keeps every
        # mutation site at one attribute read and one ``is not None``
        # test, the zero-cost-when-off contract.
        self.delta_sink = None
        # Concurrent-mode mutation hook (repro.engine.kb): when the
        # owning SharedKB runs in concurrent mode, every mutation below
        # first calls this to assert the KB write lock is held.  None
        # (the default) keeps the single-session contract: one
        # attribute read and one ``is not None`` test per mutation.
        self.write_guard = None

    @property
    def indicator(self):
        return f"{self.name}/{self.arity}"

    # -- index declarations ----------------------------------------------------

    def set_hash_index(self, field_sets, bucket_count=0):
        """Install ``:- index(p/N, [...])`` style indexing.

        ``field_sets`` is a list of position tuples, e.g. the paper's
        ``[1,2,3+5]`` arrives as ``[(1,), (2,), (3, 5)]``.  Existing
        clauses are re-indexed.
        """
        self._promote_rows()
        for positions in field_sets:
            for pos in positions:
                if not 1 <= pos <= self.arity:
                    raise TypeError_(f"index field in 1..{self.arity}", pos)
        self.index_kind = HASH
        self.index_plan = IndexPlan(
            self.arity, [IndexSpec(p) for p in field_sets], bucket_count
        )
        self.index_plan.rebuild(
            (c.seq, self._indexable_args(c), c) for c in self.clauses
        )
        self.trie_index = None

    def set_trie_index(self):
        """Install first-string indexing (static predicates only)."""
        self._promote_rows()
        if self.dynamic:
            # The paper, footnote 8: dynamic clauses currently support
            # only hash-based indexing.
            raise ReproError(
                f"{self.indicator}: first-string indexing requires static code"
            )
        self.index_kind = TRIE
        self.trie_index = FirstStringIndex()
        for clause in self.clauses:
            self.trie_index.insert(clause.seq, self._head_term_skeleton(clause), clause)

    def _indexable_args(self, clause):
        """Head-arg skeletons; SlotRefs act as variables for indexing."""
        return clause.head_args

    def _head_term_skeleton(self, clause):
        from ..terms import mkatom

        if not clause.head_args:
            return mkatom(self.name)
        return Struct(self.name, clause.head_args)

    # -- the ground-fact store ---------------------------------------------------

    def fact_rows(self):
        """The bodiless clauses of this predicate as a TupleStore.

        Rows are frozen value tuples (:func:`repro.store.freeze_term`);
        duplicate fact clauses collapse to one row, matching relation
        semantics.  The store is built lazily through
        :func:`repro.store.make_store` — so ``REPRO_TUPLESTORE``
        selects its backend — cached against the ``mutations`` stamp,
        and maintained incrementally by plain ``assertz`` of ground
        facts.  Raises :class:`~repro.store.FreezeError` when any
        bodiless clause is not a ground fact within the depth bound
        (callers treat that as "this predicate stays term-level").
        """
        store = self.fact_store
        if store is not None and self.fact_store_stamp == self.mutations:
            return store
        store = make_store(self.name, self.arity)
        unit = self.compiled_unit
        compiled_rows = (
            unit.rows
            if unit is not None and unit.stamp == self.mutations
            else None
        )
        for clause in self.clauses:
            if not clause.body:
                # The clause compiler freezes fused facts as it lowers
                # them; reuse those rows instead of re-freezing.  A
                # bodiless clause without a row (unfused, or over the
                # depth bound) falls through to freeze_term, keeping
                # FreezeError propagation identical.
                row = None
                if compiled_rows is not None:
                    row = compiled_rows.get(clause.seq)
                if row is None:
                    row = tuple(freeze_term(arg) for arg in clause.head_args)
                store.add(row)
        self.fact_store = store
        self.fact_store_stamp = self.mutations
        return store

    # -- row mode ---------------------------------------------------------------

    def _promote_rows(self):
        """Materialize a row-backed relation as real Clause objects.

        Any operation row mode cannot express tuple-at-a-time —
        asserting a rule or an asserta, retracting one clause,
        re-indexing — first lands here: every row becomes a
        :class:`~repro.engine.clause.Clause` with its row id as the
        clause ``seq`` (so a RowClause in a caller's hand still names
        the same clause), the index plan rebuilds over the
        materialized clauses, and the predicate is an ordinary
        clause-land predicate from then on.  The store stays attached
        as the cached fact store — its rows still mirror the clause
        set exactly.
        """
        store = self.row_store
        if store is None:
            return
        name = self.name
        clauses = []
        for rid in range(len(store)):
            clause = Clause(
                name,
                tuple(thaw_value(v) for v in store.row_at(rid)),
                (),
                0,
            )
            clause.seq = rid
            clauses.append(clause)
        self.clauses = clauses
        self.row_store = None
        self._row_index = None
        self.next_seq = len(clauses)
        if self.index_kind == TRIE:
            self.trie_index = FirstStringIndex()
            for clause in clauses:
                self.trie_index.insert(
                    clause.seq, self._head_term_skeleton(clause), clause
                )
        else:
            self.index_plan.rebuild(
                (c.seq, c.head_args, c) for c in clauses
            )

    def extend_facts(self, rows, backend=None, materialize="rows"):
        """Bulk-install ground fact rows as one batch; returns the count.

        ``rows`` are frozen codec values.  One mutation stamp, one
        index build, and the fact store deposited eagerly — against
        per-row :meth:`add_clause`, which pays index maintenance and a
        stamp bump per fact.

        ``materialize="rows"`` keeps the relation as the TupleStore
        itself (``backend`` selects it; ``"disk"`` for the mmap-backed
        run) with clauses minted lazily per access; duplicate rows
        collapse, relation-style.  Requires a backend with stable row
        addressing and a predicate with no term-level clauses —
        anything else falls back to ``"clauses"``: real Clause objects
        per row (duplicates kept), exactly like per-line assertz, just
        batched.
        """
        guard = self.write_guard
        if guard is not None:
            guard()
        sink = self.delta_sink
        if sink is not None:
            # The delta needs the batch twice (install + report), so
            # pin the stream before any consumer drains it.
            rows = [tuple(row) for row in rows]
        if materialize == "rows":
            store = self.row_store
            if store is None and not self.clauses:
                store = make_store(self.name, self.arity, backend=backend)
                if hasattr(store, "row_at"):
                    self.row_store = store
                    self.clauses = _RowClauseList(self)
                else:
                    store = None
            if store is not None:
                added = store.extend_rows(rows)
                self.next_seq = len(store)
                self.mutations += 1
                _GENERATION[0] += 1
                self._row_index = None
                self.fact_store = store
                self.fact_store_stamp = self.mutations
                if sink is not None:
                    sink.record_insert_many((self.name, self.arity), rows)
                return added
        if materialize == "rows":
            # Relation semantics were requested but the backend cannot
            # do row addressing: collapse in-batch duplicates here so
            # the fallback agrees with a row-backed load on the
            # answer set.
            rows = list(dict.fromkeys(tuple(row) for row in rows))
        else:
            # The clause path walks the batch more than once; pin the
            # stream (``rows`` may be a generator).
            rows = [tuple(row) for row in rows]
        self._promote_rows()
        name = self.name
        seq = self.next_seq
        clauses = []
        for row in rows:
            clause = Clause(
                name, tuple(thaw_value(v) for v in row), (), 0
            )
            clause.seq = seq
            seq += 1
            clauses.append(clause)
        self.next_seq = seq
        was_empty = not self.clauses
        self.clauses.extend(clauses)
        self.mutations += 1
        _GENERATION[0] += 1
        if self.index_kind == TRIE:
            for clause in clauses:
                self.trie_index.insert(
                    clause.seq, self._head_term_skeleton(clause), clause
                )
        else:
            self.index_plan.rebuild(
                (c.seq, c.head_args, c) for c in self.clauses
            )
        store = self.fact_store
        if store is not None and self.fact_store_stamp == self.mutations - 1:
            store.extend_rows(rows)
            self.fact_store_stamp = self.mutations
        elif was_empty:
            store = make_store(self.name, self.arity, backend=backend)
            store.extend_rows(rows)
            self.fact_store = store
            self.fact_store_stamp = self.mutations
        else:
            self.fact_store = None
        if sink is not None:
            sink.record_insert_many((self.name, self.arity), rows)
        return len(clauses)

    def add_clauses(self, clauses):
        """Install pre-compiled clauses as one batch (the consult
        cache's replay path): sequence numbers assigned in order, one
        mutation stamp, one index build — skipping exactly the
        per-clause work a cache hit exists to skip."""
        guard = self.write_guard
        if guard is not None:
            guard()
        self._promote_rows()
        seq = self.next_seq
        for clause in clauses:
            clause.seq = seq
            seq += 1
        self.next_seq = seq
        self.clauses.extend(clauses)
        self.mutations += 1
        _GENERATION[0] += 1
        if self.index_kind == TRIE:
            for clause in clauses:
                self.trie_index.insert(
                    clause.seq, self._head_term_skeleton(clause), clause
                )
        else:
            self.index_plan.rebuild(
                (c.seq, c.head_args, c) for c in self.clauses
            )
        self.fact_store = None
        sink = self.delta_sink
        if sink is not None:
            # A consult-cache replay mixes rules and facts in one
            # batch; the conservative structural delta re-derives
            # dependents rather than classifying every clause.
            sink.record_structural((self.name, self.arity))
        return len(clauses)

    def _row_candidates(self, call_args):
        """Row-mode clause selection: probe the first-column id index."""
        store = self.row_store
        if not call_args:
            return self.clauses
        arg = deref(call_args[0])
        if isinstance(arg, Atom):
            key = arg.name
        elif isinstance(arg, (int, float)):
            key = arg
        elif isinstance(arg, Struct):
            key = ("$s", arg.name, len(arg.args))
        else:
            return self.clauses  # unbound (or opaque): full scan
        index = self._row_index
        if index is None or self._row_index_stamp != self.mutations:
            # Buckets pack as id-or-[ids]: a key relation of N rows
            # costs N dict entries and zero list objects.
            index = {}
            for rid in range(len(store)):
                value = store.row_at(rid)[0]
                if type(value) is tuple:
                    row_key = ("$s", value[0], len(value) - 1)
                else:
                    row_key = value
                bucket = index.get(row_key)
                if bucket is None:
                    index[row_key] = rid
                elif type(bucket) is int:
                    index[row_key] = [bucket, rid]
                else:
                    bucket.append(rid)
            self._row_index = index
            self._row_index_stamp = self.mutations
        ids = index.get(key)
        if ids is None:
            return ()
        name = self.name
        if type(ids) is int:
            return (RowClause(store, name, ids),)
        return [RowClause(store, name, rid) for rid in ids]

    # -- clause management ------------------------------------------------------

    def add_clause(self, clause, front=False):
        guard = self.write_guard
        if guard is not None:
            guard()
        self._promote_rows()
        clause.seq = self.next_seq
        self.next_seq += 1
        self.mutations += 1
        _GENERATION[0] += 1
        if front:
            self.clauses.insert(0, clause)
        else:
            self.clauses.append(clause)
        if self.index_kind == TRIE:
            self.trie_index.insert(
                clause.seq, self._head_term_skeleton(clause), clause
            )
        else:
            self.index_plan.insert(
                clause.seq, clause.head_args, clause, front=front
            )
        store = self.fact_store
        sink = self.delta_sink
        row = None
        if not clause.body and (store is not None or sink is not None):
            # One freeze serves both the incremental fact-store append
            # and the update delta; a clause outside the row domain
            # leaves row = None (not a storable fact).
            try:
                row = tuple(freeze_term(arg) for arg in clause.head_args)
            except FreezeError:
                row = None
        if store is not None:
            # Appending a ground fact keeps the cached store current;
            # rules don't enter it, and asserta would have to reorder
            # rows, so both just invalidate.
            if (
                row is None
                or front
                or self.fact_store_stamp != self.mutations - 1
            ):
                self.fact_store = None
            else:
                store.add(row)
                self.fact_store_stamp = self.mutations
        if sink is not None:
            if row is None:
                sink.record_structural((self.name, self.arity))
            else:
                sink.record_insert((self.name, self.arity), row)
        return clause

    def remove_clause(self, clause):
        guard = self.write_guard
        if guard is not None:
            guard()
        if self.row_store is not None:
            # Tuple-at-a-time retraction exits row mode; the promoted
            # clause keeps the row id as its seq, so the caller's
            # RowClause still names it.
            seq = clause.seq
            self._promote_rows()
            clause = next(
                (c for c in self.clauses if c.seq == seq), None
            )
            if clause is None:
                return False
        elif type(clause) is RowClause:
            # A RowClause from a snapshot taken before an earlier
            # retraction promoted this predicate: its row id is still
            # the promoted clause's seq, so relocate it.
            clause = next(
                (c for c in self.clauses if c.seq == clause.seq), None
            )
            if clause is None:
                return False
        try:
            self.clauses.remove(clause)
        except ValueError:
            return False
        self.mutations += 1
        _GENERATION[0] += 1
        if self.index_kind == TRIE:
            self.trie_index.remove(clause.seq)
        else:
            self.index_plan.remove(clause.seq)
        # Duplicate fact clauses collapse to one stored row, so one
        # retraction cannot tell whether the row must go; rebuild
        # lazily instead of guessing.
        self.fact_store = None
        sink = self.delta_sink
        if sink is not None:
            self._record_removal(sink, clause)
        return True

    def _record_removal(self, sink, clause):
        """Emit the update delta for one retracted clause: a fact-row
        removal when the clause was a ground fact whose row has no
        surviving duplicate clause, a structural delta otherwise."""
        key = (self.name, self.arity)
        if clause.body:
            sink.record_structural(key)
            return
        try:
            row = tuple(freeze_term(arg) for arg in clause.head_args)
        except FreezeError:
            sink.record_structural(key)
            return
        # Duplicate fact clauses collapse to one relation row: the row
        # disappears only when no identical fact clause survives, so
        # probe the clause index for a surviving twin before reporting
        # the removal.
        for other in self.candidates(clause.head_args):
            if other.body:
                continue
            try:
                if tuple(
                    freeze_term(arg) for arg in other.head_args
                ) == row:
                    return
            except FreezeError:
                continue
        sink.record_remove(key, row)

    def retract_all_clauses(self):
        """Predicate-level retract: drop every clause at once."""
        guard = self.write_guard
        if guard is not None:
            guard()
        sink = self.delta_sink
        if sink is not None:
            # Wholesale emptying is reported structurally: dependent
            # tables re-derive from scratch (targeted, not global).
            sink.record_structural((self.name, self.arity))
        store = self.row_store
        if store is not None:
            # Row mode empties wholesale: clear the store in place
            # (captured consumers stay valid) and stay row-backed.
            store.clear()
            self.mutations += 1
            _GENERATION[0] += 1
            self._row_index = None
            self.next_seq = 0
            self.fact_store_stamp = self.mutations
            return
        self.clauses.clear()
        self.mutations += 1
        _GENERATION[0] += 1
        if self.index_kind == TRIE:
            self.trie_index = FirstStringIndex()
        else:
            self.index_plan.rebuild([])
        store = self.fact_store
        if store is not None:
            # In-place clear: captured index containers keep their
            # identity, so any consumer holding the store stays valid.
            store.clear()
            self.fact_store_stamp = self.mutations

    def candidates(self, call_args):
        """Clauses possibly matching the call, in clause order."""
        if self.row_store is not None:
            return self._row_candidates(call_args)
        if not call_args:
            return self.clauses
        if self.index_kind == TRIE:
            return self.trie_index.lookup_args(call_args)
        found = self.index_plan.lookup(call_args)
        if found is None:
            return self.clauses
        return found

    def __len__(self):
        return len(self.clauses)

    def __repr__(self):
        kind = "dynamic" if self.dynamic else "static"
        return f"<Predicate {self.indicator} {kind} {len(self.clauses)} clauses>"


class Database:
    """Maps name/arity to :class:`Predicate` and owns declarations."""

    def __init__(self):
        # Imported here, not at module level: the registry reaches back
        # into this module for mutation_generation.
        from ..analysis.registry import AnalysisRegistry

        self.predicates = {}
        self.hilog_symbols = set()
        self.analysis = AnalysisRegistry(self)
        self.delta_sink = None
        self.write_guard = None

    def lookup(self, name, arity):
        """The predicate for a call, or None when undefined."""
        return self.predicates.get((name, arity))

    def ensure(self, name, arity, dynamic=False):
        key = (name, arity)
        pred = self.predicates.get(key)
        if pred is None:
            guard = self.write_guard
            if guard is not None:
                guard()
            pred = Predicate(name, arity, dynamic=dynamic)
            pred.delta_sink = self.delta_sink
            pred.write_guard = self.write_guard
            self.predicates[key] = pred
        return pred

    def set_write_guard(self, guard):
        """Attach the concurrent-mode mutation hook (see
        :class:`repro.engine.kb.SharedKB`) to the database and every
        predicate, current and future."""
        self.write_guard = guard
        for pred in self.predicates.values():
            pred.write_guard = guard

    def set_delta_sink(self, sink):
        """Attach (or detach, with None) the typed update-delta sink
        every predicate reports its mutations to — the incremental
        table maintainer's feed (:mod:`repro.engine.incremental`)."""
        self.delta_sink = sink
        for pred in self.predicates.values():
            pred.delta_sink = sink

    def add_clause_term(self, term, dynamic=False, front=False):
        """Compile and store one clause; returns the Clause."""
        clause = compile_clause(term)
        pred = self.ensure(clause.name, clause.arity, dynamic=dynamic)
        if dynamic and not pred.dynamic and pred.clauses:
            raise ReproError(
                f"{pred.indicator} is static; reconsult it or declare it dynamic"
            )
        if dynamic:
            pred.dynamic = True
        pred.add_clause(clause, front=front)
        return clause

    def declare_tabled(self, name, arity):
        self.ensure(name, arity).tabled = True

    def declare_dynamic(self, name, arity):
        self.ensure(name, arity, dynamic=True).dynamic = True

    def abolish(self, name, arity):
        """Remove the predicate definition entirely."""
        guard = self.write_guard
        if guard is not None:
            guard()
        if self.predicates.pop((name, arity), None) is not None:
            # A removal is a mutation like any other: without the bump,
            # generation-validated analyses would keep serving results
            # that still mention the abolished predicate.
            _GENERATION[0] += 1
            sink = self.delta_sink
            if sink is not None:
                sink.record_structural((name, arity))

    def all_predicates(self):
        return list(self.predicates.values())

    def user_clause_count(self):
        return sum(len(p) for p in self.predicates.values())
