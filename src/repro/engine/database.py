"""The predicate store: static and dynamic code, index plans, tabling flags.

XSB distinguishes *static* predicates (compiled, immutable while
loaded; hash or first-string indexing) from *dynamic* predicates
(modifiable tuple-at-a-time via assert/retract; hash indexing on any
field or combination of fields).  Both compile clauses the same way
here, which reproduces the paper's observation that "dynamic database
facts have almost identical representation as compiled facts and so
execute at essentially the same speed" (section 4.2).
"""

from __future__ import annotations

from ..errors import ReproError, TypeError_
from ..index import FirstStringIndex, IndexPlan, IndexSpec
from ..store import freeze_term, make_store
from ..store.codec import FreezeError
from ..terms import Struct
from .clause import compile_clause

__all__ = ["Predicate", "Database", "mutation_generation"]

HASH = "hash"
TRIE = "trie"  # first-string indexing

# A process-wide clause-mutation generation, bumped alongside every
# per-predicate ``mutations`` stamp.  Cached analyses (the hybrid
# planner's per-predicate verdicts) record the generation they were
# validated at: while it is unchanged, *nothing* in any database has
# been asserted or retracted, so the cache is valid by a single integer
# compare instead of a per-predicate stamp walk.  Spurious bumps (a
# mutation in an unrelated predicate or another engine) only cost the
# slow revalidation path, never correctness.
_GENERATION = [0]


def mutation_generation():
    return _GENERATION[0]


class Predicate:
    """All clauses and metadata for one name/arity."""

    __slots__ = (
        "name",
        "arity",
        "clauses",
        "dynamic",
        "tabled",
        "index_kind",
        "index_plan",
        "trie_index",
        "next_seq",
        "module",
        "subsumptive",
        "mutations",
        "fact_store",
        "fact_store_stamp",
        "compiled_unit",
        "dispatch_count",
    )

    def __init__(self, name, arity, dynamic=False, module="usermod"):
        self.name = name
        self.arity = arity
        self.clauses = []
        self.dynamic = dynamic
        self.tabled = False
        self.index_kind = HASH
        self.index_plan = IndexPlan(arity)
        self.trie_index = None
        self.next_seq = 0
        self.module = module
        self.subsumptive = False
        # Clause-set version stamp.  Every assert/retract bumps it (and
        # the process-global generation); the analysis registry
        # (repro.analysis.registry) records the stamps of everything a
        # cached result looked at and revalidates against them, so
        # dynamic code invalidates exactly the dependent analyses
        # without any cross-predicate bookkeeping here.
        self.mutations = 0
        # The ground-fact side of the predicate as a TupleStore of
        # frozen rows (see fact_rows), cached against the mutations
        # stamp.  Clause indexing stays term-level in index_plan; this
        # store serves the set-at-a-time consumers (the hybrid bridge,
        # statistics aggregation) without re-freezing per plan.
        self.fact_store = None
        self.fact_store_stamp = -1
        # Compiled-closure unit (repro.engine.compile.CompiledUnit),
        # attached lazily by the machine when Engine(compile=) is on
        # and revalidated against the mutations stamp on every
        # dispatch — the same discipline as the analysis registry, so
        # assert/retract/abolish can never serve stale compiled code.
        self.compiled_unit = None
        # Calls dispatched while uncompiled; the machine compiles the
        # predicate once this clears Engine(compile_warmup=), so a
        # predicate that is only ever called a handful of times never
        # pays the mode scan or per-clause closure builds.
        self.dispatch_count = 0

    @property
    def indicator(self):
        return f"{self.name}/{self.arity}"

    # -- index declarations ----------------------------------------------------

    def set_hash_index(self, field_sets, bucket_count=0):
        """Install ``:- index(p/N, [...])`` style indexing.

        ``field_sets`` is a list of position tuples, e.g. the paper's
        ``[1,2,3+5]`` arrives as ``[(1,), (2,), (3, 5)]``.  Existing
        clauses are re-indexed.
        """
        for positions in field_sets:
            for pos in positions:
                if not 1 <= pos <= self.arity:
                    raise TypeError_(f"index field in 1..{self.arity}", pos)
        self.index_kind = HASH
        self.index_plan = IndexPlan(
            self.arity, [IndexSpec(p) for p in field_sets], bucket_count
        )
        self.index_plan.rebuild(
            (c.seq, self._indexable_args(c), c) for c in self.clauses
        )
        self.trie_index = None

    def set_trie_index(self):
        """Install first-string indexing (static predicates only)."""
        if self.dynamic:
            # The paper, footnote 8: dynamic clauses currently support
            # only hash-based indexing.
            raise ReproError(
                f"{self.indicator}: first-string indexing requires static code"
            )
        self.index_kind = TRIE
        self.trie_index = FirstStringIndex()
        for clause in self.clauses:
            self.trie_index.insert(clause.seq, self._head_term_skeleton(clause), clause)

    def _indexable_args(self, clause):
        """Head-arg skeletons; SlotRefs act as variables for indexing."""
        return clause.head_args

    def _head_term_skeleton(self, clause):
        from ..terms import mkatom

        if not clause.head_args:
            return mkatom(self.name)
        return Struct(self.name, clause.head_args)

    # -- the ground-fact store ---------------------------------------------------

    def fact_rows(self):
        """The bodiless clauses of this predicate as a TupleStore.

        Rows are frozen value tuples (:func:`repro.store.freeze_term`);
        duplicate fact clauses collapse to one row, matching relation
        semantics.  The store is built lazily through
        :func:`repro.store.make_store` — so ``REPRO_TUPLESTORE``
        selects its backend — cached against the ``mutations`` stamp,
        and maintained incrementally by plain ``assertz`` of ground
        facts.  Raises :class:`~repro.store.FreezeError` when any
        bodiless clause is not a ground fact within the depth bound
        (callers treat that as "this predicate stays term-level").
        """
        store = self.fact_store
        if store is not None and self.fact_store_stamp == self.mutations:
            return store
        store = make_store(self.name, self.arity)
        unit = self.compiled_unit
        compiled_rows = (
            unit.rows
            if unit is not None and unit.stamp == self.mutations
            else None
        )
        for clause in self.clauses:
            if not clause.body:
                # The clause compiler freezes fused facts as it lowers
                # them; reuse those rows instead of re-freezing.  A
                # bodiless clause without a row (unfused, or over the
                # depth bound) falls through to freeze_term, keeping
                # FreezeError propagation identical.
                row = None
                if compiled_rows is not None:
                    row = compiled_rows.get(clause.seq)
                if row is None:
                    row = tuple(freeze_term(arg) for arg in clause.head_args)
                store.add(row)
        self.fact_store = store
        self.fact_store_stamp = self.mutations
        return store

    # -- clause management ------------------------------------------------------

    def add_clause(self, clause, front=False):
        clause.seq = self.next_seq
        self.next_seq += 1
        self.mutations += 1
        _GENERATION[0] += 1
        if front:
            self.clauses.insert(0, clause)
        else:
            self.clauses.append(clause)
        if self.index_kind == TRIE:
            self.trie_index.insert(
                clause.seq, self._head_term_skeleton(clause), clause
            )
        else:
            self.index_plan.insert(
                clause.seq, clause.head_args, clause, front=front
            )
        store = self.fact_store
        if store is not None:
            # Appending a ground fact keeps the cached store current;
            # rules don't enter it, and asserta would have to reorder
            # rows, so both just invalidate.
            if (
                clause.body
                or front
                or self.fact_store_stamp != self.mutations - 1
            ):
                self.fact_store = None
            else:
                try:
                    store.add(
                        tuple(freeze_term(arg) for arg in clause.head_args)
                    )
                except FreezeError:
                    self.fact_store = None
                else:
                    self.fact_store_stamp = self.mutations
        return clause

    def remove_clause(self, clause):
        try:
            self.clauses.remove(clause)
        except ValueError:
            return False
        self.mutations += 1
        _GENERATION[0] += 1
        if self.index_kind == TRIE:
            self.trie_index.remove(clause.seq)
        else:
            self.index_plan.remove(clause.seq)
        # Duplicate fact clauses collapse to one stored row, so one
        # retraction cannot tell whether the row must go; rebuild
        # lazily instead of guessing.
        self.fact_store = None
        return True

    def retract_all_clauses(self):
        """Predicate-level retract: drop every clause at once."""
        self.clauses.clear()
        self.mutations += 1
        _GENERATION[0] += 1
        if self.index_kind == TRIE:
            self.trie_index = FirstStringIndex()
        else:
            self.index_plan.rebuild([])
        store = self.fact_store
        if store is not None:
            # In-place clear: captured index containers keep their
            # identity, so any consumer holding the store stays valid.
            store.clear()
            self.fact_store_stamp = self.mutations

    def candidates(self, call_args):
        """Clauses possibly matching the call, in clause order."""
        if not call_args:
            return self.clauses
        if self.index_kind == TRIE:
            return self.trie_index.lookup_args(call_args)
        found = self.index_plan.lookup(call_args)
        if found is None:
            return self.clauses
        return found

    def __len__(self):
        return len(self.clauses)

    def __repr__(self):
        kind = "dynamic" if self.dynamic else "static"
        return f"<Predicate {self.indicator} {kind} {len(self.clauses)} clauses>"


class Database:
    """Maps name/arity to :class:`Predicate` and owns declarations."""

    def __init__(self):
        # Imported here, not at module level: the registry reaches back
        # into this module for mutation_generation.
        from ..analysis.registry import AnalysisRegistry

        self.predicates = {}
        self.hilog_symbols = set()
        self.analysis = AnalysisRegistry(self)

    def lookup(self, name, arity):
        """The predicate for a call, or None when undefined."""
        return self.predicates.get((name, arity))

    def ensure(self, name, arity, dynamic=False):
        key = (name, arity)
        pred = self.predicates.get(key)
        if pred is None:
            pred = Predicate(name, arity, dynamic=dynamic)
            self.predicates[key] = pred
        return pred

    def add_clause_term(self, term, dynamic=False, front=False):
        """Compile and store one clause; returns the Clause."""
        clause = compile_clause(term)
        pred = self.ensure(clause.name, clause.arity, dynamic=dynamic)
        if dynamic and not pred.dynamic and pred.clauses:
            raise ReproError(
                f"{pred.indicator} is static; reconsult it or declare it dynamic"
            )
        if dynamic:
            pred.dynamic = True
        pred.add_clause(clause, front=front)
        return clause

    def declare_tabled(self, name, arity):
        self.ensure(name, arity).tabled = True

    def declare_dynamic(self, name, arity):
        self.ensure(name, arity, dynamic=True).dynamic = True

    def abolish(self, name, arity):
        """Remove the predicate definition entirely."""
        if self.predicates.pop((name, arity), None) is not None:
            # A removal is a mutation like any other: without the bump,
            # generation-validated analyses would keep serving results
            # that still mention the abolished predicate.
            _GENERATION[0] += 1

    def all_predicates(self):
        return list(self.predicates.values())

    def user_clause_count(self):
        return sum(len(p) for p in self.predicates.values())
