"""Incremental table maintenance: delta-driven re-derivation.

Before this module, any assert or retract left completed tables
untouched until the user reclaimed *all* of them with
``abolish_all_tables`` — wholesale invalidation, XSB's pre-incremental
story.  This module is the repository's version of XSB's incremental
tabling (Saha & Ramakrishnan's delete-rederive over the invalidation
graph): mutations emit typed per-predicate deltas, a flush at the next
query boundary computes the *affected-table closure* from the analysis
registry's call graph, and each affected completed table is either

* **kept** — its plan's exact reachable closure proves it independent
  of every changed predicate, so its ``valid`` stamp survives;
* **repaired** — for datalog-safe roots the table's answers are
  recomputed through the semi-naive delta machinery of
  :mod:`repro.bottomup.seminaive` against a persistent per-root
  *materialization*: retracted rows run DRed (over-delete everything
  derivable through them, re-derive what has an alternative proof),
  asserted rows run ordinary semi-naive insertion, and the repaired
  relation is bulk re-installed into the frame; or
* **abolished, targeted** — the root leaves the datalog-safe fragment
  (builtins, negation, non-ground answers) or its indicator cannot be
  resolved, so just *that* frame is dropped.  Nothing in this module
  ever calls ``abolish_all``.

The pipeline is wired behind ``Engine(incremental=)`` /
``REPRO_INCREMENTAL`` with the same zero-cost-when-off contract as
statistics and tracing: when off, every mutation site pays one
attribute read and an ``is not None`` test, and no maintainer exists.

Lifecycle: a completed frame is ``valid`` until a flush proves a
changed predicate reachable from it (``invalid``), transitions to
``re-deriving`` while its answers are being rebuilt, and back to
``valid`` when the repaired answer set is installed (see the
``LIFE_*`` constants in :mod:`repro.engine.table`).
"""

from __future__ import annotations

from ..bottomup.seminaive import (
    EvaluationStats,
    _bound_probe,
    _compile_plan,
    _delta_order,
    _join,
    _match_args,
    _rel,
    _rounds,
    evaluate,
)
from ..obs.trace import (
    EV_TABLE_ABOLISH,
    EV_TABLE_INVALIDATE,
    EV_TABLE_REPAIR_BEGIN,
    EV_TABLE_REPAIR_END,
)
from ..store.codec import thaw_value
from ..terms import Struct, mkatom
from .hybrid import _call_goal
from .table import LIFE_INVALID, LIFE_REDERIVING, LIFE_VALID, frame_call_term

__all__ = ["IncrementalMaintainer", "Materialization", "PredDelta"]


def _frame_key(frame):
    """``(name, arity)`` parsed back out of a frame's indicator."""
    name, sep, arity = frame.indicator.rpartition("/")
    if not sep:
        return None
    try:
        return name, int(arity)
    except ValueError:
        return None


class PredDelta:
    """The pending net change to one predicate since the last flush.

    ``ops`` maps frozen fact rows to their *last* transition (True =
    the row became present, False = it became absent).  Last-op-wins is
    exact under set semantics because the database only emits a delta
    when a row's presence actually changes, so replaying the final
    state of each row reproduces the net effect of any assert/retract
    interleaving.  ``structural`` marks changes row deltas cannot
    express — a rule clause, a consult replay, ``retract_all``,
    ``abolish`` — and forces dependent materializations to rebuild.
    """

    __slots__ = ("ops", "structural")

    def __init__(self):
        self.ops = {}
        self.structural = False


class Materialization:
    """A persistent bottom-up image of one root predicate's closure.

    Built from the root's cached :class:`~repro.engine.hybrid.HybridPlan`
    by evaluating the *full* (non-magic) program cold, over private
    copies of the plan's fact relations — the plan's own relations
    alias the live predicate stores and must not be mutated here.
    Between flushes the image is repaired in place: row deltas stream
    through the same compiled semi-naive join plans the fixpoint used,
    so a one-fact update costs a handful of delta joins instead of a
    re-evaluation.

    ``plans_by_delta`` is the delta-driven plan group of
    :mod:`repro.bottomup.seminaive`, except that — unlike ``prepare``,
    which skips pure-EDB body positions because base relations never
    change mid-fixpoint — it covers *every* body literal: here the EDB
    is exactly what changes.
    """

    __slots__ = ("root", "closure", "idb", "relations", "stats",
                 "plans_by_delta", "rules_by_head")

    def __init__(self, root, plan, closure):
        self.root = root
        self.closure = closure
        self.idb = set(plan.program.idb_predicates)
        self.stats = EvaluationStats()
        facts = {key: list(rel) for key, rel in plan.facts.items()}
        self.relations = evaluate(plan.program, facts, stats=self.stats)
        relations = self.relations
        plans_by_delta = {}
        rules_by_head = {}
        for rule in plan.program.rules:
            head_key = (rule.head_pred, len(rule.head_args))
            full = _rel(relations, head_key)
            rules_by_head.setdefault(head_key, []).append(rule)
            for index, literal in enumerate(rule.body):
                body_key = (literal[1], len(literal[2]))
                order = _delta_order(rule, index)
                compiled = _compile_plan(rule, order, relations)
                plans_by_delta.setdefault(body_key, []).append(
                    (rule, index, order, compiled, full, head_key)
                )
        self.plans_by_delta = plans_by_delta
        self.rules_by_head = rules_by_head

    def rel_key_for(self, key):
        """The relation a predicate's *base facts* live in.

        Facts of a predicate that also has rules sit under the
        ``$edb`` alias (fed to the original name by the plan's bridge
        rule); everything else is stored under its own name.
        """
        alias = (key[0] + "$edb", key[1])
        if alias in self.relations:
            return alias
        return key

    def can_accept(self, key):
        """Can a base-fact delta for ``key`` be expressed here?

        A rule-defined predicate with no ``$edb`` alias had no facts
        when the plan was translated; a fact asserted to it now has no
        relation to land in, so the materialization must rebuild.
        """
        if key in self.idb:
            return (key[0] + "$edb", key[1]) in self.relations
        return True

    def insert(self, rows_by_key):
        """Semi-naive delta insertion; returns base rows actually new."""
        relations = self.relations
        deltas = {}
        added = 0
        for key, rows in rows_by_key.items():
            rel_key = self.rel_key_for(key)
            full = _rel(relations, rel_key)
            fresh = [row for row in rows if full.add(row)]
            if fresh:
                added += len(fresh)
                deltas[rel_key] = fresh
        if deltas:
            _rounds(self.plans_by_delta, deltas, relations, self.stats)
        return added

    def delete(self, rows_by_key):
        """DRed: over-delete, re-derive survivors, re-insert.

        Returns ``(removed, rederived)``: base rows actually removed,
        and over-deleted derived rows put back because an alternative
        derivation (not using any deleted fact) still supports them.
        """
        relations = self.relations
        plans_by_delta = self.plans_by_delta
        stats = self.stats
        # Over-deletion, round by round.  Each round joins its deltas
        # *before* removing them — standard semi-naive form: every
        # consequence must be found while the supporting rows are still
        # in the relations the other body literals probe.  ``scheduled``
        # (insertion-ordered) prevents re-queueing a row and remembers
        # everything over-deleted for the re-derivation pass.
        scheduled = {}
        deltas = {}
        removed = 0
        for key, rows in rows_by_key.items():
            rel_key = self.rel_key_for(key)
            relation = relations.get(rel_key)
            if relation is None:
                continue
            present = [row for row in rows if row in relation]
            if present:
                removed += len(present)
                deltas[rel_key] = present
                scheduled[rel_key] = dict.fromkeys(present)
        while deltas:
            stats.iterations += 1
            derived = {}
            for body_key, rows in deltas.items():
                for rule, index, order, compiled, full, head_key in \
                        plans_by_delta.get(body_key, ()):
                    out = []
                    if compiled is not None:
                        compiled(rows, out.append)
                        stats.derivations += len(out)
                    else:
                        _join(rule, index, relations, body_key, rows,
                              stats, out, order=order)
                    if out:
                        derived.setdefault(head_key, []).extend(out)
            for rel_key, rows in deltas.items():
                relation = relations[rel_key]
                for row in rows:
                    relation.remove(row)
            deltas = {}
            for head_key, rows in derived.items():
                relation = relations.get(head_key)
                if relation is None:
                    continue
                seen = scheduled.setdefault(head_key, {})
                fresh = []
                for row in rows:
                    if row not in seen and row in relation:
                        seen[row] = None
                        fresh.append(row)
                if fresh:
                    deltas[head_key] = fresh
        # Re-derivation: an over-deleted IDB row with a derivation in
        # the post-deletion state comes back; semi-naive insertion then
        # restores everything transitively derivable from the
        # re-admitted rows.
        back = {}
        rederived = 0
        for key, rows in scheduled.items():
            if key not in self.idb:
                continue
            rules = self.rules_by_head.get(key, ())
            alive = [row for row in rows
                     if any(self._derives(rule, row) for rule in rules)]
            if alive:
                back[key] = alive
        deltas = {}
        for key, rows in back.items():
            full = relations[key]
            fresh = [row for row in rows if full.add(row)]
            if fresh:
                rederived += len(fresh)
                deltas[key] = fresh
        if deltas:
            _rounds(plans_by_delta, deltas, relations, stats)
        return removed, rederived

    def _derives(self, rule, row):
        """Does ``rule`` derive ``row`` in the current relations?"""
        bindings = {}
        added = _match_args(rule.head_args, row, bindings)
        if added is None:
            return False
        return self._satisfy(rule.body, 0, bindings)

    def _satisfy(self, body, step, bindings):
        if step == len(body):
            return True
        _, pred, args, _ = body[step]
        relation = self.relations.get((pred, len(args)))
        if relation is None:
            return False
        positions, key = _bound_probe(args, bindings)
        for candidate in relation.probe(positions, key):
            added = _match_args(args, candidate, bindings)
            if added is None:
                continue
            if self._satisfy(body, step + 1, bindings):
                for var in added:
                    del bindings[var]
                return True
            for var in added:
                del bindings[var]
        return False


class IncrementalMaintainer:
    """The engine's delta sink and flush driver.

    Installed as ``Database.delta_sink`` when incremental maintenance
    is on: every mutation site in :mod:`repro.engine.database` reports
    here (``record_*``), deltas accumulate lazily, and the machine
    flushes at the next *top-level* query boundary — mid-run semantics
    are untouched, and a mutation burst costs one maintenance pass
    however many updates it batches.
    """

    __slots__ = ("engine", "pending", "dirty", "materializations")

    def __init__(self, engine):
        self.engine = engine
        self.pending = {}
        self.dirty = False
        self.materializations = {}

    # -- the sink API (called from repro.engine.database) -------------------

    def _delta(self, key):
        delta = self.pending.get(key)
        if delta is None:
            delta = self.pending[key] = PredDelta()
        self.dirty = True
        stats = self.engine.stats
        if stats.enabled:
            stats.incr_deltas += 1
        return delta

    def record_insert(self, key, row):
        """One ground fact became present."""
        delta = self._delta(key)
        if not delta.structural:
            delta.ops[row] = True

    def record_remove(self, key, row):
        """One ground fact became absent."""
        delta = self._delta(key)
        if not delta.structural:
            delta.ops[row] = False

    def record_insert_many(self, key, rows):
        """A bulk ingest batch became present (counts as one delta)."""
        delta = self._delta(key)
        if not delta.structural:
            ops = delta.ops
            for row in rows:
                ops[row] = True

    def record_structural(self, key):
        """A change row deltas cannot express (rule, replay, abolish)."""
        delta = self._delta(key)
        delta.structural = True
        delta.ops.clear()

    # -- the flush (called by the machine at the query boundary) ------------

    def flush(self):
        """Drain pending deltas and bring the table space up to date."""
        pending = self.pending
        self.dirty = False
        if not pending:
            return
        self.pending = {}
        engine = self.engine
        stats = engine.stats
        if stats.enabled:
            stats.incr_flushes += 1
        else:
            stats = None
        tracer = engine.tracer
        trace = tracer if tracer is not None and tracer.enabled else None
        # The maintainer always repairs the *shared* table space: the
        # owning session's ``tables`` attribute may alias a private
        # space (Session.local_dynamic), which lives under the
        # pre-incremental wholesale-invalidation contract instead.
        tables = engine.kb.tables
        spans = engine.spans
        token = None
        if spans is not None:
            from ..obs.spans import STAGE_FLUSH

            token = spans.begin(
                STAGE_FLUSH, label=f"flush:{len(pending)} delta(s)"
            )
        kept = 0
        try:
            if self.materializations:
                self._update_materializations(pending, stats)
            completed = [f for f in tables.all_frames() if f.complete]
            if not completed:
                return
            changed = frozenset(pending)
            affected, universe = engine.db.analysis.affected_keys(changed)
            by_root = {}
            doomed = []
            for frame in completed:
                key = _frame_key(frame)
                if key is None:
                    doomed.append(frame)
                elif universe or key in affected:
                    by_root.setdefault(key, []).append(frame)
                else:
                    kept += 1
            for key, frames in by_root.items():
                kept += self._maintain_root(
                    key, frames, pending, changed, stats, trace, tables
                )
            for frame in doomed:
                self._invalidate(frame, stats, trace)
                self._abolish(frame, stats, trace, tables)
            if stats is not None:
                stats.incr_tables_kept += kept
        finally:
            if spans is not None:
                spans.end(token, detail=kept)

    def _update_materializations(self, pending, stats):
        """Apply (or give up on) the flush's deltas, mat by mat.

        A materialization survives only if every pending change inside
        its closure is a row delta it can express; otherwise it is
        discarded and the next repair of its root rebuilds it cold —
        which still repairs the root's tables, just without the delta
        shortcut.
        """
        for root, mat in list(self.materializations.items()):
            touched = [key for key in mat.closure if key in pending]
            if not touched:
                continue
            if any(pending[key].structural for key in touched) or not all(
                mat.can_accept(key) for key in touched
            ):
                del self.materializations[root]
                continue
            removals = {}
            inserts = {}
            for key in touched:
                dead = []
                live = []
                for row, alive in pending[key].ops.items():
                    (live if alive else dead).append(row)
                if dead:
                    removals[key] = dead
                if live:
                    inserts[key] = live
            if removals:
                removed, rederived = mat.delete(removals)
                if stats is not None:
                    stats.incr_rows_deleted += removed
                    stats.incr_rederived += rederived
            if inserts:
                added = mat.insert(inserts)
                if stats is not None:
                    stats.incr_rows_inserted += added

    def _maintain_root(self, key, frames, pending, changed, stats, trace,
                       tables):
        """Repair, keep, or abolish one root's completed frames.

        Returns how many of them stayed valid (proven independent by
        the plan's exact closure — a refinement over the call-graph
        reach that put them in the affected set).
        """
        engine = self.engine
        mat = self.materializations.get(key)
        if mat is None:
            pred = engine.db.predicates.get(key)
            if pred is None:
                plan = None
            else:
                plan = engine.db.analysis.hybrid_plan(engine, pred)
            if plan is None:
                # Outside the datalog-safe fragment (builtins, negation,
                # non-ground answers) or undefined: targeted abolish.
                for frame in frames:
                    self._invalidate(frame, stats, trace)
                    self._abolish(frame, stats, trace, tables)
                return 0
            closure = engine.db.analysis.plan_closure(key)
            if closure is None:
                closure = frozenset((key,))
            if not (changed & closure):
                return len(frames)
            # Built *after* the mutations landed, so this flush's
            # deltas are already reflected; structural changes are fine
            # here — the rebuilt plan carries the new rules.
            mat = self.materializations[key] = Materialization(
                key, plan, closure
            )
        elif not (changed & mat.closure):
            return len(frames)
        for frame in frames:
            self._invalidate(frame, stats, trace)
            self._repair(frame, key, mat, stats, trace, tables)
        return 0

    def _repair(self, frame, key, mat, stats, trace, tables):
        """Re-install one frame's answers from its materialization."""
        name, arity = key
        frame.lifecycle = LIFE_REDERIVING
        if trace is not None:
            trace.event(EV_TABLE_REPAIR_BEGIN, frame)
        goal = _call_goal(frame_call_term(frame), arity)
        if goal is None:
            # A call the bottom-up image cannot express (partially
            # instantiated structure argument): targeted abolish.
            self._abolish(frame, stats, trace, tables)
            return
        goal_args, repeated = goal
        relation = mat.relations.get(key)
        if relation is None:
            rows = []
        else:
            checks = [(i, g) for i, g in enumerate(goal_args) if g is not None]
            rows = relation.probe(
                tuple(i for i, _ in checks), tuple(g for _, g in checks)
            )
        if repeated:
            rows = [
                row
                for row in rows
                if all(
                    row[group[0]] == row[i]
                    for group in repeated
                    for i in group[1:]
                )
            ]
        else:
            # ``probe`` with no bound positions returns the live row
            # list; the frame's answer store must own its sequence.
            rows = list(rows)
        if arity == 0:
            answers = [mkatom(name)] if rows else []
            rows = [()] if rows else []
        else:
            answers = [
                Struct(name, tuple(thaw_value(v) for v in row))
                for row in rows
            ]
        tables.space_live -= frame.reset_answers()
        count = frame.add_answers_bulk(answers, rows=rows)
        tables.note_bulk_answers(count)
        frame.lifecycle = LIFE_VALID
        if stats is not None:
            stats.incr_tables_repaired += 1
        if trace is not None:
            trace.event(EV_TABLE_REPAIR_END, frame, count)
        spans = self.engine.spans
        if spans is not None:
            spans.observe("repair_rows", count)

    def _invalidate(self, frame, stats, trace):
        frame.lifecycle = LIFE_INVALID
        if stats is not None:
            stats.incr_tables_invalidated += 1
        if trace is not None:
            trace.event(EV_TABLE_INVALIDATE, frame)

    def _abolish(self, frame, stats, trace, tables):
        tables.delete(frame)
        if stats is not None:
            stats.incr_tables_abolished += 1
        if trace is not None:
            trace.event(EV_TABLE_ABOLISH, frame)
