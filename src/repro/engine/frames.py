"""Machine runtime records: goal lists and choice points.

Goals form an immutable linked continuation (so SLG suspensions can
keep them without copying); each node carries the choice-point-stack
height that a cut (``!``) executed in that goal should restore.

Choice points follow the WAM discipline: backtracking unwinds the
trail to the choice point's mark and asks it to ``retry``; a retry
either returns the next goal list or the EXHAUSTED sentinel, at which
point the machine pops it and keeps backtracking.  The two SLG choice
points — generator and consumer — live in :mod:`repro.engine.machine`
next to the scheduling logic they drive.
"""

from __future__ import annotations

__all__ = [
    "Goals",
    "ChoicePoint",
    "ClauseCP",
    "DisjCP",
    "IteratorCP",
    "EXHAUSTED",
    "FAILED",
    "goals_for_body",
]


class _Sentinel:
    __slots__ = ("label",)

    def __init__(self, label):
        self.label = label

    def __repr__(self):
        return self.label


EXHAUSTED = _Sentinel("EXHAUSTED")
FAILED = _Sentinel("FAILED")


class Goals:
    """One cons cell of the goal continuation."""

    __slots__ = ("term", "next", "cutbar")

    def __init__(self, term, next_goals, cutbar):
        self.term = term
        self.next = next_goals
        self.cutbar = cutbar

    def __repr__(self):
        parts = []
        node = self
        while node is not None and len(parts) < 6:
            parts.append(repr(node.term))
            node = node.next
        if node is not None:
            parts.append("...")
        return " ; ".join(parts)


def goals_for_body(body_terms, continuation, cutbar):
    """Chain body literals in front of the continuation."""
    goals = continuation
    for literal in reversed(body_terms):
        goals = Goals(literal, goals, cutbar)
    return goals


class ChoicePoint:
    """Base choice point; subclasses implement ``retry``."""

    __slots__ = ("trail_mark",)

    def __init__(self, trail_mark):
        self.trail_mark = trail_mark

    def retry(self, machine):
        raise NotImplementedError


class ClauseCP(ChoicePoint):
    """Alternatives of an ordinary (non-tabled) predicate call."""

    __slots__ = (
        "call_args", "continuation", "candidates", "pos", "body_cutbar", "unit",
    )

    def __init__(
        self, trail_mark, call_args, continuation, candidates, body_cutbar,
        unit=None,
    ):
        super().__init__(trail_mark)
        self.call_args = call_args
        self.continuation = continuation
        self.candidates = candidates
        self.pos = 0
        self.body_cutbar = body_cutbar
        # CompiledUnit of the predicate when clause compilation is on
        # (stamp-validated by the machine before construction); None
        # selects the template path below.
        self.unit = unit

    def retry(self, machine):
        trail = machine.trail
        candidates = self.candidates
        stats = machine.stats
        unit = self.unit
        if unit is not None:
            closures = unit.closures
            while self.pos < len(candidates):
                clause = candidates[self.pos]
                self.pos += 1
                closure = closures.get(clause.seq)
                if closure is None:
                    closure = unit.closure_for(clause, stats)
                result = closure(
                    machine, self.call_args, self.continuation,
                    self.body_cutbar,
                )
                if result is None:
                    trail.undo_to(self.trail_mark)
                    continue
                return result
            return EXHAUSTED
        while self.pos < len(candidates):
            clause = candidates[self.pos]
            self.pos += 1
            slots = clause.match_head(self.call_args, trail)
            if slots is None:
                trail.undo_to(self.trail_mark)
                continue
            if stats is not None:
                stats.clause_matches += 1
            if not clause.body:
                return self.continuation
            return goals_for_body(
                clause.body_terms(slots), self.continuation, self.body_cutbar
            )
        return EXHAUSTED


class DisjCP(ChoicePoint):
    """The pending right branch of ``(A ; B)`` (or the else of ``->``)."""

    __slots__ = ("alternative",)

    def __init__(self, trail_mark, alternative):
        super().__init__(trail_mark)
        self.alternative = alternative

    def retry(self, machine):
        alternative = self.alternative
        if alternative is EXHAUSTED:
            return EXHAUSTED
        self.alternative = EXHAUSTED
        return alternative


class IteratorCP(ChoicePoint):
    """Generic nondeterministic builtin support.

    ``thunks`` yields zero-argument callables; each is run after the
    trail is unwound and should perform its unifications, returning
    True to accept the alternative (the continuation is then resumed)
    or False to move on.
    """

    __slots__ = ("thunks", "continuation")

    def __init__(self, trail_mark, thunks, continuation):
        super().__init__(trail_mark)
        self.thunks = iter(thunks)
        self.continuation = continuation

    def retry(self, machine):
        trail = machine.trail
        for thunk in self.thunks:
            if thunk():
                return self.continuation
            trail.undo_to(self.trail_mark)
        return EXHAUSTED
