"""The public engine facade.

:class:`Engine` is one shared knowledge base plus one session over it,
in a single object — the historical single-user API, unchanged.  The
split underneath (:class:`~repro.engine.kb.SharedKB` holding everything
many sessions may consult, :class:`~repro.engine.session.Session`
holding everything per-evaluation) is what the concurrent query service
(:mod:`repro.server`) builds on: one engine, many sibling sessions via
:meth:`Engine.session`, completed tables shared across all of them.

One engine corresponds to one running XSB image; tables persist across
queries until abolished.
"""

from __future__ import annotations

import os

from .kb import RWLock, SharedKB
from .session import Session, python_to_term, term_to_python

__all__ = [
    "Engine",
    "RWLock",
    "Session",
    "SharedKB",
    "python_to_term",
    "term_to_python",
]


class Engine(Session):
    """An in-memory deductive database engine.

    Parameters
    ----------
    unknown:
        ``"error"`` (default) raises :class:`~repro.errors.ExistenceError`
        for calls to undefined predicates; ``"fail"`` makes them fail.
    answer_store:
        ``"hash"`` (default) stores table answers in a list with a
        full-answer hash index for the duplicate check; ``"trie"`` uses
        the integrated answer-trie store (section 4.5's "currently
        being developed" design — our tables ablation compares them).
    subgoal_index:
        the call-pattern index of section 4.5: ``"dict"`` (default)
        hashes the whole variant-canonical subgoal; ``"trie"`` checks
        subgoals into a discrimination net in one traversal.
    hilog_specialize:
        apply compile-time specialization of known HiLog calls
        (section 4.7) during consult.
    output:
        stream for ``write/1`` and friends.
    statistics:
        ``True`` (default) keeps the engine event counters live so
        ``statistics/0,2`` report real numbers; ``False`` disables all
        counting (each counting site then costs one ``is None`` test).
    hybrid:
        route datalog-safe tabled subgoals through the set-at-a-time
        magic-set + semi-naive evaluator (:mod:`repro.engine.hybrid`)
        instead of tuple-at-a-time SLG resolution; anything outside
        the safe fragment transparently falls back to SLG.  ``None``
        (default) reads the ``REPRO_HYBRID`` environment variable
        (``0``/``false``/``off`` disables; on otherwise).
    compile:
        lower clauses to shape-specialized closures on first dispatch
        (:mod:`repro.engine.compile`) instead of renaming the cached
        template on every resolution; clause shapes the compiler does
        not specialize run a generic closure byte-identical in
        behavior to the template path.  ``None`` (default) reads the
        ``REPRO_COMPILE`` environment variable (``0``/``false``/``off``
        disables; on otherwise).
    compile_warmup:
        number of calls a predicate must receive before its clauses
        are compiled; until then calls run the template path.  The
        mode scan, frozen-row batch and per-clause closures are an
        investment that a one-shot load never repays, so cold
        predicates stay on the template and hot ones compile once the
        count says the investment amortizes.  ``0`` compiles on the
        first call (what the exact-counter tests use).  ``None``
        (default) reads ``REPRO_COMPILE_WARMUP`` (default 64).
    trace:
        record typed SLG events (check-in hit/miss, answer
        insert/duplicate, suspension, resumption, completion, hybrid
        routing) in a bounded ring buffer (:mod:`repro.obs`).  ``True``
        enables the tracer with its default capacity, an integer sets
        the ring capacity, ``False`` disables it.  ``None`` (default)
        reads ``REPRO_TRACE`` (unset/``0``/``false``/``off`` disables;
        an integer > 1 doubles as the capacity).  ``trace_control/1``
        flips the switch from the language at run boundaries.
    profile:
        keep per-subgoal spans (cumulative self time, consumer counts)
        aggregated by :meth:`profile_report`.  ``None`` (default)
        follows ``trace``, so ``REPRO_TRACE=1`` lights up the whole
        observability layer at once.
    metrics:
        keep the query-level metrics registry (:mod:`repro.obs.metrics`)
        live: every top-level query runs under a root span with child
        spans per subsystem stage, and latency / answers / table-space
        histograms accumulate for :meth:`metrics_snapshot` and the
        ``write_metrics/2`` exposition builtin.  ``None`` (default)
        reads ``REPRO_METRICS`` (unset/``0``/``false``/``off``
        disables; on otherwise).
    objcache:
        serve :meth:`consult_file` from the hashed compiled-program
        cache (:mod:`repro.storage.objcache` — the section 4.6
        object-file load path): a repeat consult of unchanged source
        replays pre-compiled clauses, skipping lexer, parser and
        clause compiler.  ``None`` (default) reads ``REPRO_OBJCACHE``
        (``0``/``false``/``off`` disables; on otherwise).
        :meth:`consult_string` always compiles from source.
    objcache_dir:
        directory for cache entries; ``None`` (default) reads
        ``REPRO_OBJCACHE_DIR``, falling back to
        ``~/.cache/repro/objcache``.
    incremental:
        maintain completed tables *incrementally* under assert/retract
        (:mod:`repro.engine.incremental`): mutations emit typed
        per-predicate deltas, and at the next top-level query boundary
        the affected-table closure (from the analysis registry's call
        graph) decides which completed tables stay ``valid``, which are
        repaired through the semi-naive delta machinery (DRed for
        retracts, delta insertion for asserts), and which take a
        *targeted* abolish.  With it off, mutations leave tables
        untouched until ``abolish_all_tables`` — the pre-incremental
        contract.  ``None`` (default) reads ``REPRO_INCREMENTAL``
        (``0``/``false``/``off`` disables; on otherwise).
    """

    def __init__(
        self,
        unknown="error",
        answer_store="hash",
        subgoal_index="dict",
        hilog_specialize=True,
        output=None,
        statistics=True,
        hybrid=None,
        compile=None,
        compile_warmup=None,
        trace=None,
        profile=None,
        metrics=None,
        objcache=None,
        objcache_dir=None,
        incremental=None,
    ):
        kb = SharedKB(answer_store=answer_store, subgoal_index=subgoal_index)
        super().__init__(
            kb,
            unknown=unknown,
            hilog_specialize=hilog_specialize,
            output=output,
            statistics=statistics,
            hybrid=hybrid,
            compile=compile,
            compile_warmup=compile_warmup,
            trace=trace,
            profile=profile,
            metrics=metrics,
            objcache=objcache,
            objcache_dir=objcache_dir,
        )
        if incremental is None:
            incremental = os.environ.get(
                "REPRO_INCREMENTAL", "1"
            ).lower() not in ("0", "false", "off")
        if incremental:
            from .incremental import IncrementalMaintainer

            kb.incremental = IncrementalMaintainer(self)
            kb.db.set_delta_sink(kb.incremental)
            self.incremental = kb.incremental

    def __repr__(self):
        return (
            f"<Engine {self.db.user_clause_count()} clauses, "
            f"{self.tables.frame_count()} tables>"
        )
