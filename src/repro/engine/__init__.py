"""The public engine facade.

:class:`Engine` bundles the program database, the table space, the
operator table, HiLog declarations and the module system, and exposes
consulting and querying.  One engine corresponds to one running XSB
image; tables persist across queries until abolished.
"""

from __future__ import annotations

import os
import sys

from ..errors import ParseError, StorageError
from ..lang.ops import OperatorTable
from ..lang.parser import Parser
from ..modules import ModuleSystem
from ..terms import (
    Atom,
    Struct,
    Trail,
    Var,
    deref,
    is_proper_list,
    list_to_python,
    make_list,
    mkatom,
    resolve,
)
from ..obs import (
    MetricsRegistry,
    Profiler,
    SpanRecorder,
    SubgoalRegistry,
    Tracer,
)
from ..obs.spans import (
    STAGE_CONSULT,
    STAGE_PARSE,
    STAGE_SLG,
)
from ..perf import EngineStats
from ..terms.rename import copy_term
from .builtins import default_registry
from .clause import Clause
from .database import Database
from .machine import MODE_QUERY, Machine
from .table import TableSpace, frame_call_term

__all__ = ["Engine", "term_to_python", "python_to_term"]


def python_to_term(value):
    """Convert a Python value to a term: str -> atom, int/float kept,
    list/tuple -> Prolog list, terms passed through."""
    if isinstance(value, (Atom, Struct, Var, int, float)):
        return value
    if isinstance(value, str):
        return mkatom(value)
    if isinstance(value, (list, tuple)):
        return make_list([python_to_term(v) for v in value])
    raise TypeError(f"cannot convert {value!r} to a term")


def term_to_python(term):
    """Convert a term to a Python value: atoms -> str, numbers kept,
    proper lists -> list; other terms are returned resolved."""
    term = deref(term)
    if isinstance(term, Atom):
        if term.name == "[]":
            return []
        return term.name
    if isinstance(term, (int, float)):
        return term
    if isinstance(term, Struct) and is_proper_list(term):
        return [term_to_python(item) for item in list_to_python(term)]
    return resolve(term)


class Engine:
    """An in-memory deductive database engine.

    Parameters
    ----------
    unknown:
        ``"error"`` (default) raises :class:`~repro.errors.ExistenceError`
        for calls to undefined predicates; ``"fail"`` makes them fail.
    answer_store:
        ``"hash"`` (default) stores table answers in a list with a
        full-answer hash index for the duplicate check; ``"trie"`` uses
        the integrated answer-trie store (section 4.5's "currently
        being developed" design — our tables ablation compares them).
    subgoal_index:
        the call-pattern index of section 4.5: ``"dict"`` (default)
        hashes the whole variant-canonical subgoal; ``"trie"`` checks
        subgoals into a discrimination net in one traversal.
    hilog_specialize:
        apply compile-time specialization of known HiLog calls
        (section 4.7) during consult.
    output:
        stream for ``write/1`` and friends.
    statistics:
        ``True`` (default) keeps the engine event counters live so
        ``statistics/0,2`` report real numbers; ``False`` disables all
        counting (each counting site then costs one ``is None`` test).
    hybrid:
        route datalog-safe tabled subgoals through the set-at-a-time
        magic-set + semi-naive evaluator (:mod:`repro.engine.hybrid`)
        instead of tuple-at-a-time SLG resolution; anything outside
        the safe fragment transparently falls back to SLG.  ``None``
        (default) reads the ``REPRO_HYBRID`` environment variable
        (``0``/``false``/``off`` disables; on otherwise).
    compile:
        lower clauses to shape-specialized closures on first dispatch
        (:mod:`repro.engine.compile`) instead of renaming the cached
        template on every resolution; clause shapes the compiler does
        not specialize run a generic closure byte-identical in
        behavior to the template path.  ``None`` (default) reads the
        ``REPRO_COMPILE`` environment variable (``0``/``false``/``off``
        disables; on otherwise).
    compile_warmup:
        number of calls a predicate must receive before its clauses
        are compiled; until then calls run the template path.  The
        mode scan, frozen-row batch and per-clause closures are an
        investment that a one-shot load never repays, so cold
        predicates stay on the template and hot ones compile once the
        count says the investment amortizes.  ``0`` compiles on the
        first call (what the exact-counter tests use).  ``None``
        (default) reads ``REPRO_COMPILE_WARMUP`` (default 64).
    trace:
        record typed SLG events (check-in hit/miss, answer
        insert/duplicate, suspension, resumption, completion, hybrid
        routing) in a bounded ring buffer (:mod:`repro.obs`).  ``True``
        enables the tracer with its default capacity, an integer sets
        the ring capacity, ``False`` disables it.  ``None`` (default)
        reads ``REPRO_TRACE`` (unset/``0``/``false``/``off`` disables;
        an integer > 1 doubles as the capacity).  ``trace_control/1``
        flips the switch from the language at run boundaries.
    profile:
        keep per-subgoal spans (cumulative self time, consumer counts)
        aggregated by :meth:`profile_report`.  ``None`` (default)
        follows ``trace``, so ``REPRO_TRACE=1`` lights up the whole
        observability layer at once.
    metrics:
        keep the query-level metrics registry (:mod:`repro.obs.metrics`)
        live: every top-level query runs under a root span with child
        spans per subsystem stage, and latency / answers / table-space
        histograms accumulate for :meth:`metrics_snapshot` and the
        ``write_metrics/2`` exposition builtin.  ``None`` (default)
        reads ``REPRO_METRICS`` (unset/``0``/``false``/``off``
        disables; on otherwise).
    objcache:
        serve :meth:`consult_file` from the hashed compiled-program
        cache (:mod:`repro.storage.objcache` — the section 4.6
        object-file load path): a repeat consult of unchanged source
        replays pre-compiled clauses, skipping lexer, parser and
        clause compiler.  ``None`` (default) reads ``REPRO_OBJCACHE``
        (``0``/``false``/``off`` disables; on otherwise).
        :meth:`consult_string` always compiles from source.
    objcache_dir:
        directory for cache entries; ``None`` (default) reads
        ``REPRO_OBJCACHE_DIR``, falling back to
        ``~/.cache/repro/objcache``.
    incremental:
        maintain completed tables *incrementally* under assert/retract
        (:mod:`repro.engine.incremental`): mutations emit typed
        per-predicate deltas, and at the next top-level query boundary
        the affected-table closure (from the analysis registry's call
        graph) decides which completed tables stay ``valid``, which are
        repaired through the semi-naive delta machinery (DRed for
        retracts, delta insertion for asserts), and which take a
        *targeted* abolish.  With it off, mutations leave tables
        untouched until ``abolish_all_tables`` — the pre-incremental
        contract.  ``None`` (default) reads ``REPRO_INCREMENTAL``
        (``0``/``false``/``off`` disables; on otherwise).
    """

    def __init__(
        self,
        unknown="error",
        answer_store="hash",
        subgoal_index="dict",
        hilog_specialize=True,
        output=None,
        statistics=True,
        hybrid=None,
        compile=None,
        compile_warmup=None,
        trace=None,
        profile=None,
        metrics=None,
        objcache=None,
        objcache_dir=None,
        incremental=None,
    ):
        if answer_store not in ("hash", "trie"):
            raise ValueError("answer_store must be 'hash' or 'trie'")
        self.stats = EngineStats(enabled=statistics)
        self.db = Database()
        self.tables = TableSpace(
            use_trie=(answer_store == "trie"), subgoal_index=subgoal_index
        )
        self.trail = Trail()
        self.builtins = default_registry()
        self.operators = OperatorTable()
        self.modules = ModuleSystem()
        self.hilog_symbols = self.db.hilog_symbols
        self.unknown = unknown
        if hybrid is None:
            hybrid = os.environ.get("REPRO_HYBRID", "1").lower() not in (
                "0", "false", "off"
            )
        self.hybrid = bool(hybrid)
        if compile is None:
            compile = os.environ.get("REPRO_COMPILE", "1").lower() not in (
                "0", "false", "off"
            )
        self.compile = bool(compile)
        if compile_warmup is None:
            compile_warmup = int(os.environ.get("REPRO_COMPILE_WARMUP", "64"))
        self.compile_warmup = compile_warmup
        self.hilog_specialize = hilog_specialize
        if objcache is None:
            objcache = os.environ.get("REPRO_OBJCACHE", "1").lower() not in (
                "0", "false", "off"
            )
        self.objcache = bool(objcache)
        self.objcache_dir = objcache_dir
        if incremental is None:
            incremental = os.environ.get(
                "REPRO_INCREMENTAL", "1"
            ).lower() not in ("0", "false", "off")
        if incremental:
            from .incremental import IncrementalMaintainer

            self.incremental = IncrementalMaintainer(self)
            self.db.set_delta_sink(self.incremental)
        else:
            self.incremental = None
        self.output = output if output is not None else sys.stdout
        self.quiet = False
        if trace is None:
            raw = os.environ.get("REPRO_TRACE", "0").lower()
            if raw in ("0", "false", "off", ""):
                trace = False
            else:
                try:
                    trace = int(raw)
                except ValueError:
                    trace = True
        if profile is None:
            profile = bool(trace)
        self._obs_registry = SubgoalRegistry(render=self._render_subgoal)
        self.tracer = None
        self.profiler = None
        self.spans = None
        if metrics is None:
            metrics = os.environ.get("REPRO_METRICS", "0").lower() not in (
                "0", "false", "off", ""
            )
        self.metrics = MetricsRegistry() if metrics else None
        if trace:
            self.enable_trace(
                capacity=trace if isinstance(trace, int)
                and not isinstance(trace, bool) and trace > 1 else None
            )
        if profile:
            self.enable_profile()
        if self.metrics is not None:
            self._ensure_spans()
        self.counting = False
        self.call_counts = {}
        self.log_subgoals = False
        self.subgoal_log = []

    # -- loading ---------------------------------------------------------------

    def consult_string(self, text):
        """Consult program text (clauses and directives)."""
        from ..lang.reader import ProgramReader

        spans = self.spans
        token = (
            spans.begin(STAGE_CONSULT, label="consult:<string>")
            if spans is not None else None
        )
        try:
            ProgramReader(self).consult(text)
        finally:
            if spans is not None:
                spans.end(token)
        return self

    def consult_file(self, path):
        """Consult a source file, through the consult cache when on.

        With ``objcache`` enabled this is the object-file load of
        section 4.6: the file's content hash names a cache entry, a
        hit replays pre-compiled clauses and recorded load-time
        effects, a miss compiles from source and writes the entry for
        next time.  Behavior is identical either way — only the work
        skipped differs.
        """
        if self.objcache:
            from ..storage.objcache import consult_file_cached

            spans = self.spans
            token = (
                spans.begin(STAGE_CONSULT, label=f"consult:{path}")
                if spans is not None else None
            )
            try:
                return consult_file_cached(
                    self, path, cache_dir=self.objcache_dir
                )
            finally:
                if spans is not None:
                    spans.end(token)
        with open(path, "r", encoding="utf-8") as handle:
            return self.consult_string(handle.read())

    def add_fact(self, name, *args, dynamic=True, front=False):
        """Fast-path insertion of one ground fact, bypassing the parser.

        This is the analog of the formatted read + assert of section
        4.6: arguments are Python values (str -> atom) and the fact is
        compiled and indexed directly.
        """
        terms = tuple(python_to_term(a) for a in args)
        clause = Clause(name, terms, (), 0)
        pred = self.db.ensure(name, len(terms), dynamic=dynamic)
        pred.dynamic = pred.dynamic or dynamic
        pred.add_clause(clause, front=front)
        return clause

    def add_facts(self, name, rows, dynamic=True):
        """Bulk-insert ground facts from an iterable of tuples.

        The predicate lookup is hoisted out of the loop (keyed per
        arity, since rows may in principle vary), so bulk loading pays
        one database probe per relation rather than one per fact.
        """
        count = 0
        preds = {}
        for row in rows:
            terms = tuple(python_to_term(a) for a in row)
            pred = preds.get(len(terms))
            if pred is None:
                pred = self.db.ensure(name, len(terms), dynamic=dynamic)
                pred.dynamic = pred.dynamic or dynamic
                preds[len(terms)] = pred
            pred.add_clause(Clause(name, terms, (), 0))
            count += 1
        return count

    def bulk_add_facts(
        self, name, arity, rows, dynamic=True, backend=None,
        materialize="rows",
    ):
        """Set-at-a-time installation of one relation's ground facts.

        ``rows`` is any iterable (consumed once, so a generator
        streams) of tuples in the frozen row domain (str for atoms,
        int/float for numbers, nested tuples for ground structures —
        the same values :func:`repro.store.freeze_term` produces).
        The whole batch costs one database probe, one mutation stamp
        and one index build, against one of each *per fact* on the
        :meth:`add_facts` path — that gap is the ingest half of
        section 4.6's 12x.  A wrong-arity row raises
        :class:`~repro.errors.StorageError` mid-stream; rows before it
        may already be installed.

        With ``materialize="rows"`` (default) a previously empty
        predicate keeps the batch as a
        :class:`~repro.store.TupleStore` and serves clause heads as
        lazy row views; ``"clauses"`` materializes
        :class:`~repro.engine.clause.Clause` objects eagerly.
        ``backend`` picks the store backend (``REPRO_TUPLESTORE`` when
        ``None``), e.g. ``"disk"`` for the mmap-backed on-disk store.
        """
        def checked(batch):
            for row in batch:
                row = tuple(row)
                if len(row) != arity:
                    raise StorageError(
                        f"{name}/{arity}: bulk fact row has arity "
                        f"{len(row)}"
                    )
                yield row

        pred = self.db.ensure(name, arity, dynamic=dynamic)
        pred.dynamic = pred.dynamic or dynamic
        added = pred.extend_facts(
            checked(rows), backend=backend, materialize=materialize
        )
        stats = self.stats
        if stats.enabled:
            stats.load_bulk_facts += added
            stats.load_bulk_batches += 1
        spans = self.spans
        if spans is not None:
            from ..obs import EV_BULK_INGEST

            spans.point(
                EV_BULK_INGEST, label=f"bulk:{name}/{arity}", detail=added
            )
            spans.observe("bulk_ingest_rows", added)
        return added

    def assertz(self, text):
        """Assert one clause given as source text (dynamic code)."""
        term = self.parse(text)
        from ..hilog import hilog_encode

        self.db.add_clause_term(
            hilog_encode(term, self.hilog_symbols), dynamic=True
        )
        return self

    def load_library(self):
        """Consult the bundled list/set library (member/2, append/3,
        reverse/2, select/3, set operations, maplist/foldl, ...)."""
        from ..lib import load_library

        return load_library(self)

    # -- declarations ------------------------------------------------------------

    def table(self, name, arity):
        """Declare a predicate tabled (``:- table name/arity.``)."""
        self.db.declare_tabled(name, arity)
        return self

    def dynamic(self, name, arity):
        self.db.declare_dynamic(name, arity)
        return self

    def index(self, name, arity, field_sets, bucket_count=0):
        """Declare hash indexing, e.g. ``index('p', 5, [1, 2, (3, 5)])``."""
        normalized = [
            (fields,) if isinstance(fields, int) else tuple(fields)
            for fields in field_sets
        ]
        self.db.ensure(name, arity).set_hash_index(
            normalized, bucket_count=bucket_count
        )
        return self

    def index_trie(self, name, arity):
        """Declare first-string (trie) indexing for a static predicate."""
        self.db.ensure(name, arity).set_trie_index()
        return self

    # -- querying --------------------------------------------------------------------

    def parse(self, text):
        """Parse a single term using this engine's operator table."""
        from ..lang.parser import parse_term

        return parse_term(text, self.operators)

    def _goal_and_vars(self, goal):
        if isinstance(goal, str):
            text = goal if goal.rstrip().endswith(".") else goal + " ."
            parser = Parser(text, self.operators)
            result = parser.read_term()
            if result is None:
                raise ParseError("empty query")
            term, varmap = result
            from ..hilog import hilog_encode

            term = hilog_encode(term, self.hilog_symbols)
            return term, varmap
        from ..terms import term_variables

        named = {
            (v.name or f"_V{i}"): v
            for i, v in enumerate(term_variables(goal))
        }
        return goal, named

    def query_iter(self, goal, raw=False):
        """Iterate solutions as dicts {variable name: value}.

        Values are converted to Python (atoms -> str, lists -> list)
        unless ``raw=True``, in which case resolved term copies are
        returned.  Closing the iterator abandons the run and reclaims
        any tables it left incomplete.
        """
        spans = self.spans
        if spans is not None:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                return self._query_iter_metered(goal, raw, spans)
            metrics = self.metrics
            if metrics is not None and metrics.enabled:
                return self._query_iter_fast(goal, raw, spans)
        return self._query_iter_plain(goal, raw)

    def _query_iter_plain(self, goal, raw):
        term, varmap = self._goal_and_vars(goal)
        machine = Machine(self, MODE_QUERY)
        for _ in machine.solve(term):
            if raw:
                yield {
                    name: copy_term(var) for name, var in varmap.items()
                }
            else:
                yield {
                    name: term_to_python(var) for name, var in varmap.items()
                }

    def _query_iter_fast(self, goal, raw, spans):
        """Metrics-only query iterator: two clock reads per query (no
        child spans — there is no trace timeline to draw), observing
        latency and answer count when the generator closes."""
        started = spans.clock()
        answers = 0
        try:
            term, varmap = self._goal_and_vars(goal)
            machine = Machine(self, MODE_QUERY)
            for _ in machine.solve(term):
                answers += 1
                if raw:
                    yield {
                        name: copy_term(var)
                        for name, var in varmap.items()
                    }
                else:
                    yield {
                        name: term_to_python(var)
                        for name, var in varmap.items()
                    }
        finally:
            spans.end_query_fast(started, answers)

    def _query_iter_metered(self, goal, raw, spans):
        """The query iterator under a root span: parse and SLG child
        spans, then latency / answers / table-space observations when
        the generator closes.  Latency is wall time from first demand
        to exhaustion or close — consumer time between solutions is
        included, which is what a service-level latency means."""
        label = goal if isinstance(goal, str) else None
        root = spans.begin_query(
            label=f"?- {label.strip()}" if label is not None else "?- <term>"
        )
        answers = 0
        try:
            token = spans.begin(STAGE_PARSE)
            try:
                term, varmap = self._goal_and_vars(goal)
            finally:
                spans.end(token)
            machine = Machine(self, MODE_QUERY)
            token = spans.begin(STAGE_SLG)
            try:
                for _ in machine.solve(term):
                    answers += 1
                    if raw:
                        yield {
                            name: copy_term(var)
                            for name, var in varmap.items()
                        }
                    else:
                        yield {
                            name: term_to_python(var)
                            for name, var in varmap.items()
                        }
            finally:
                spans.end(token, detail=answers)
        finally:
            spans.end_query(root, answers)

    def query(self, goal, limit=None, raw=False):
        """All solutions (or the first ``limit``) as a list of dicts."""
        out = []
        iterator = self.query_iter(goal, raw=raw)
        try:
            for solution in iterator:
                out.append(solution)
                if limit is not None and len(out) >= limit:
                    break
        finally:
            iterator.close()
        return out

    def once(self, goal, raw=False):
        """First solution or None."""
        solutions = self.query(goal, limit=1, raw=raw)
        return solutions[0] if solutions else None

    def has_solution(self, goal):
        return self.once(goal) is not None

    def count(self, goal):
        """Number of solutions (drains the query)."""
        spans = self.spans
        if spans is not None:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                return self._count_traced(goal, spans)
            metrics = self.metrics
            if metrics is not None and metrics.enabled:
                # metrics-only fast path: root measurements, no spans
                started = spans.clock()
                total = 0
                try:
                    term, _ = self._goal_and_vars(goal)
                    machine = Machine(self, MODE_QUERY)
                    for _ in machine.solve(term):
                        total += 1
                finally:
                    spans.end_query_fast(started, total)
                return total
        machine = Machine(self, MODE_QUERY)
        term, _ = self._goal_and_vars(goal)
        total = 0
        for _ in machine.solve(term):
            total += 1
        return total

    def _count_traced(self, goal, spans):
        label = goal if isinstance(goal, str) else None
        root = spans.begin_query(
            label=f"?- {label.strip()}" if label is not None else "?- <term>"
        )
        total = 0
        try:
            token = spans.begin(STAGE_PARSE)
            try:
                term, _ = self._goal_and_vars(goal)
            finally:
                spans.end(token)
            machine = Machine(self, MODE_QUERY)
            token = spans.begin(STAGE_SLG)
            try:
                for _ in machine.solve(term):
                    total += 1
            finally:
                spans.end(token, detail=total)
        finally:
            spans.end_query(root, total)
        return total

    def run_goal(self, term):
        """Run a goal term once for its side effects; True on success."""
        spans = self.spans
        machine = Machine(self, MODE_QUERY)
        if spans is not None:
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                return self._run_goal_traced(term, spans, machine)
            metrics = self.metrics
            if metrics is not None and metrics.enabled:
                started = spans.clock()
                found = False
                try:
                    gen = machine.solve(term)
                    try:
                        for _ in gen:
                            found = True
                            break
                    finally:
                        gen.close()
                finally:
                    spans.end_query_fast(started, int(found))
                return found
        gen = machine.solve(term)
        try:
            for _ in gen:
                return True
            return False
        finally:
            gen.close()

    def _run_goal_traced(self, term, spans, machine):
        root = spans.begin_query(label="?- <goal>")
        found = False
        try:
            token = spans.begin(STAGE_SLG)
            gen = machine.solve(term)
            try:
                for _ in gen:
                    found = True
                    break
            finally:
                gen.close()
                spans.end(token, detail=int(found))
        finally:
            spans.end_query(root, int(found))
        return found

    # -- instrumentation / maintenance ----------------------------------------------

    def start_counting(self, log_subgoals=False):
        """Count predicate calls (used to reproduce Figure 2).

        With ``log_subgoals=True`` every call's variant-canonical form
        is recorded too, so *distinct subgoals* can be counted — the
        quantity Figure 2 plots for SLDNF over the game tree.
        """
        self.counting = True
        self.call_counts = {}
        self.log_subgoals = log_subgoals
        self.subgoal_log = []
        return self

    def stop_counting(self):
        self.counting = False
        return dict(self.call_counts)

    def distinct_subgoals(self, name, arity):
        """Distinct logged subgoal variants of one predicate."""
        return len(
            {
                key
                for (n, a, key) in self.subgoal_log
                if n == name and a == arity
            }
        )

    def table_statistics(self):
        return self.tables.statistics()

    # -- observability (repro.obs) ---------------------------------------------------

    def _render_subgoal(self, frame):
        """Printable form of a frame's call term (trace/profile labels)."""
        from ..lang.writer import term_to_str

        return term_to_str(frame_call_term(frame), self.operators)

    def _ensure_spans(self):
        """Create the per-query span recorder (idempotent) and hand it
        to the analysis registry as its rebuild observer."""
        if self.spans is None:
            self.spans = SpanRecorder(self)
        self.db.analysis.observer = self.spans
        return self.spans

    def enable_trace(self, capacity=None):
        """Switch the SLG event tracer on (new runs pick it up)."""
        if self.tracer is None:
            self.tracer = Tracer(
                **({} if capacity is None else {"capacity": capacity}),
                registry=self._obs_registry,
            )
        else:
            self.tracer.enabled = True
        self._ensure_spans()
        return self

    def disable_trace(self):
        if self.tracer is not None:
            self.tracer.enabled = False
        return self

    def enable_profile(self):
        """Switch the per-subgoal span profiler on."""
        if self.profiler is None:
            self.profiler = Profiler(self._obs_registry)
        else:
            self.profiler.enabled = True
        return self

    def disable_profile(self):
        if self.profiler is not None:
            self.profiler.enabled = False
        return self

    def trace_events(self):
        """The buffered trace events (oldest first); [] when off."""
        return self.tracer.events() if self.tracer is not None else []

    def write_trace_jsonl(self, path_or_file):
        """Export the trace ring as JSONL; returns the line count."""
        from ..obs import write_jsonl

        if self.tracer is None:
            raise ValueError("tracing is not enabled on this engine")
        return write_jsonl(self.tracer, path_or_file)

    def write_chrome_trace(self, path_or_file):
        """Export the trace ring in Chrome trace-event format."""
        from ..obs import write_chrome_trace

        if self.tracer is None:
            raise ValueError("tracing is not enabled on this engine")
        return write_chrome_trace(self.tracer, path_or_file)

    def enable_metrics(self):
        """Switch the query-level metrics registry on (idempotent)."""
        if self.metrics is None:
            self.metrics = MetricsRegistry()
        else:
            self.metrics.enabled = True
        self._ensure_spans()
        return self

    def disable_metrics(self):
        """Stop recording metrics; collected data stays snapshotable."""
        if self.metrics is not None:
            self.metrics.enabled = False
        return self

    def metrics_snapshot(self):
        """A JSON-able snapshot of the metrics registry (counters,
        gauges, histograms with p50/p90/p99); ``{}`` when metrics were
        never enabled.  Each snapshot takes one fresh ``table_space_
        bytes`` sample (gauge + histogram observation, scrape-style) —
        the fast query path only samples every 64th query, so short
        runs get their table-space distribution here."""
        if self.metrics is None:
            return {}
        if self.spans is not None and self.metrics.enabled:
            space = self.spans.table_space_bytes()
            self.metrics.set_gauge("table_space_bytes", space)
            self.metrics.observe("table_space_bytes", space)
        return self.metrics.snapshot()

    def write_metrics(self, path_or_file, fmt=None):
        """Write the metrics snapshot (``fmt`` ``"json"``/
        ``"prometheus"``; ``None`` infers from a ``.json`` suffix)."""
        from ..obs import write_metrics

        if self.metrics is None:
            raise ValueError("metrics are not enabled on this engine")
        return write_metrics(self.metrics_snapshot(), path_or_file, fmt=fmt)

    def profile_report(self):
        """Per-subgoal profile rows (self time, answers, consumers,
        byte estimates), most expensive first; [] when off."""
        return self.profiler.report() if self.profiler is not None else []

    def format_profile(self):
        """The profile report as a plain-text table."""
        from ..obs import format_profile

        return format_profile(self.profile_report())

    def tuple_stores(self):
        """Every live :class:`~repro.store.TupleStore` this engine owns,
        deduplicated by identity: predicate fact stores, hash-mode
        answer stores, and the relations of cached hybrid plans (base
        stores are shared with the fact stores, so sharing is why the
        walk dedups)."""
        seen = {}
        for pred in self.db.predicates.values():
            store = pred.fact_store
            if store is not None:
                seen[id(store)] = store
        for plan in self.db.analysis.plans():
            for relation in plan.facts.values():
                seen[id(relation)] = relation
            for prepared, _, _ in plan.rewrites.values():
                for relation in prepared.relations.values():
                    seen[id(relation)] = relation
        for frame in self.tables.all_frames():
            store = frame.answer_store
            if store is not None:
                seen[id(store)] = store
        return list(seen.values())

    def statistics(self):
        """Merged engine statistics: SLG scheduling counters, table-space
        usage, and the storage layer's index/probe counters — the keys
        ``statistics/2`` enumerates."""
        merged = self.stats.snapshot()
        merged.update(self.tables.statistics())
        stores = self.tuple_stores()
        merged["store_count"] = len(stores)
        merged["store_rows"] = sum(len(s) for s in stores)
        merged["store_probes"] = sum(s.stats.probes for s in stores)
        merged["store_scans"] = sum(s.stats.scans for s in stores)
        merged["store_index_builds"] = sum(
            s.stats.index_builds for s in stores
        )
        tracer = self.tracer
        merged["trace_events"] = len(tracer) if tracer is not None else 0
        merged["trace_dropped"] = tracer.dropped if tracer is not None else 0
        profiler = self.profiler
        merged["profile_subgoals"] = (
            profiler.span_count() if profiler is not None else 0
        )
        merged["profile_self_ns"] = (
            profiler.total_self_ns() if profiler is not None else 0
        )
        metrics = self.metrics
        merged["metrics_queries"] = (
            metrics.counters.get("queries", 0) if metrics is not None else 0
        )
        merged["metrics_spans"] = (
            metrics.counters.get("spans", 0) if metrics is not None else 0
        )
        merged["metrics_histograms"] = (
            len(metrics.histograms) if metrics is not None else 0
        )
        merged.update(self.db.analysis.statistics())
        return merged

    def reset_statistics(self):
        """Zero the scheduling counters (table-space usage is live
        state and is not reset)."""
        self.stats.reset()
        return self

    def abolish_all_tables(self):
        self.tables.abolish_all()
        return self

    def abolish_predicate(self, name, arity):
        """``abolish/2``: drop a predicate's clauses and every completed
        table that could observe them — its own and its dependents',
        computed from the analysis registry's call graph *before* the
        clauses go (afterwards the predicate is no longer a graph node
        and the dependency is invisible).  The table drops are
        *targeted* deletes, never ``abolish_all``; incomplete frames
        belong to in-flight runs and are left alone.
        """
        from .incremental import _frame_key

        key = (name, arity)
        if self.db.lookup(name, arity) is not None:
            affected, universe = self.db.analysis.affected_keys((key,))
            for frame in self.tables.all_frames():
                if not frame.complete:
                    continue
                fkey = _frame_key(frame)
                if (
                    universe
                    or fkey is None
                    or fkey == key
                    or fkey in affected
                ):
                    self.tables.delete(frame)
        self.db.abolish(name, arity)
        return self

    def predicate(self, name, arity):
        return self.db.lookup(name, arity)

    def analyze(self, name, arity):
        """Human-readable analysis-registry summary for one predicate
        (what the REPL's ``:analyze`` command prints)."""
        return self.db.analysis.describe(name, arity)

    def __repr__(self):
        return (
            f"<Engine {self.db.user_clause_count()} clauses, "
            f"{self.tables.frame_count()} tables>"
        )
