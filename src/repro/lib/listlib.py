"""The list/set library, written in the object language."""

from __future__ import annotations

__all__ = ["LISTS_LIBRARY", "load_library"]

LISTS_LIBRARY = """
% ---------------------------------------------------------------------
% lists — the standard list-processing library.
% ---------------------------------------------------------------------

member(X, [X|_]).
member(X, [_|T]) :- member(X, T).

memberchk(X, L) :- member(X, L), !.

append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).

reverse(L, R) :- reverse_(L, [], R).
reverse_([], Acc, Acc).
reverse_([H|T], Acc, R) :- reverse_(T, [H|Acc], R).

last([X], X) :- !.
last([_|T], X) :- last(T, X).

nth0(I, L, X) :- nth_(L, 0, I, X).
nth1(I, L, X) :- nth_(L, 1, I, X).
nth_([H|_], N, N, H).
nth_([_|T], N0, N, X) :- N1 is N0 + 1, nth_(T, N1, N, X).

sum_list([], 0).
sum_list([H|T], S) :- sum_list(T, S0), S is S0 + H.

max_list([X], X) :- !.
max_list([H|T], M) :- max_list(T, M0), M is max(H, M0).

min_list([X], X) :- !.
min_list([H|T], M) :- min_list(T, M0), M is min(H, M0).

numlist(L, H, []) :- L > H, !.
numlist(L, H, [L|T]) :- L1 is L + 1, numlist(L1, H, T).

select(X, [X|T], T).
select(X, [H|T], [H|R]) :- select(X, T, R).

selectchk(X, L, R) :- select(X, L, R), !.

delete([], _, []).
delete([X|T], X, R) :- !, delete(T, X, R).
delete([H|T], X, [H|R]) :- delete(T, X, R).

exclude_nonmember([], _, []).
exclude_nonmember([H|T], L, [H|R]) :-
    memberchk(H, L), !, exclude_nonmember(T, L, R).
exclude_nonmember([_|T], L, R) :- exclude_nonmember(T, L, R).

permutation([], []).
permutation(L, [H|T]) :- select(H, L, R), permutation(R, T).

% set operations on lists (the flat cousins of the HiLog sets of §4.7)
subtract([], _, []).
subtract([H|T], L, R) :- memberchk(H, L), !, subtract(T, L, R).
subtract([H|T], L, [H|R]) :- subtract(T, L, R).

intersection([], _, []).
intersection([H|T], L, [H|R]) :- memberchk(H, L), !, intersection(T, L, R).
intersection([_|T], L, R) :- intersection(T, L, R).

union([], L, L).
union([H|T], L, R) :- memberchk(H, L), !, union(T, L, R).
union([H|T], L, [H|R]) :- union(T, L, R).

list_to_set([], []).
list_to_set([H|T], [H|R]) :- delete(T, H, T1), list_to_set(T1, R).

subset_list([], _).
subset_list([H|T], L) :- memberchk(H, L), subset_list(T, L).

% pairs
pairs_keys_values([], [], []).
pairs_keys_values([K-V|T], [K|Ks], [V|Vs]) :- pairs_keys_values(T, Ks, Vs).

% folds expressed with findall-free recursion
maplist_1(_, []).
maplist_1(G, [H|T]) :- call(G, H), maplist_1(G, T).

maplist_2(_, [], []).
maplist_2(G, [H|T], [H2|T2]) :- call(G, H, H2), maplist_2(G, T, T2).

foldl_(_, [], Acc, Acc).
foldl_(G, [H|T], Acc0, Acc) :- call(G, H, Acc0, Acc1), foldl_(G, T, Acc1, Acc).
"""


def load_library(engine):
    """Consult the bundled library into an engine; returns the engine."""
    engine.consult_string(LISTS_LIBRARY)
    return engine
