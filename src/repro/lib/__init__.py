"""Bundled Prolog-source libraries.

XSB ships a Prolog library alongside the engine ("the rich and proven
environment of Prolog can be included in XSB", section 6); this
package holds the reproduction's equivalent, written in the object
language and consulted on demand with ``Engine.load_library()``.
"""

from .listlib import LISTS_LIBRARY, load_library

__all__ = ["LISTS_LIBRARY", "load_library"]
