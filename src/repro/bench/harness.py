"""Timing and table-printing helpers shared by the benchmarks.

The benchmarks report *relative* times and growth shapes, never
absolute numbers: the substrate is a Python simulation of the SLG-WAM,
so only who-wins / by-what-factor / where-crossovers-fall carry over
from the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

import json
import math
import platform
import time

__all__ = [
    "time_call",
    "RowTimer",
    "format_table",
    "banner",
    "geometric_mean",
    "write_json_results",
    "read_json_results",
    "compare_results",
]


def time_call(fn, *args, repeat=1, **kwargs):
    """Best-of-``repeat`` wall time of ``fn(*args)``; returns (seconds,
    last result)."""
    best = math.inf
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best, result


class RowTimer:
    """Collects labeled timings and renders them normalized."""

    def __init__(self, normalize_to=None):
        self.rows = []
        self.normalize_to = normalize_to

    def measure(self, label, fn, *args, repeat=1, **kwargs):
        seconds, result = time_call(fn, *args, repeat=repeat, **kwargs)
        self.rows.append((label, seconds))
        return seconds, result

    def add(self, label, seconds):
        self.rows.append((label, seconds))

    def normalized(self):
        base = None
        if self.normalize_to is not None:
            for label, seconds in self.rows:
                if label == self.normalize_to:
                    base = seconds
        if base is None and self.rows:
            base = self.rows[0][1]
        return [
            (label, seconds, seconds / base if base else float("nan"))
            for label, seconds in self.rows
        ]


def format_table(headers, rows, float_digits=3):
    """Plain-text table with right-aligned numeric columns."""
    def fmt(value):
        if isinstance(value, float):
            return f"{value:.{float_digits}f}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def banner(title):
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}"


def geometric_mean(values):
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


# --------------------------------------------------------------------------
# JSON result files (before/after comparisons)
# --------------------------------------------------------------------------

def _git_commit():
    """The current commit SHA, or "unknown" outside a git checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def write_json_results(path, results, meta=None, counters=None,
                       metrics=None):
    """Persist benchmark timings for later comparison.

    ``results`` maps series name to seconds (floats).  The interpreter
    version, the git commit, the machine and the active tuple-store
    backend are recorded so a comparison across Pythons, trees, hosts
    or storage backends is visibly apples-to-oranges.  ``counters``
    (optional) is a mapping of engine-statistics snapshots — e.g. one
    ``Engine.statistics()`` dict per series — stored alongside the
    timings so a perf regression can be diagnosed from the committed
    record (did clause_candidates blow up, or did wall time move on
    its own?).  ``metrics`` (optional) is a mapping of
    ``Engine.metrics_snapshot()`` dicts per series, embedding the
    latency/answer histograms (with p50/p90/p99) next to the best-of
    wall times.  Returns the payload written.
    """
    from ..store import backend_name

    payload = {
        "meta": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "commit": _git_commit(),
            "machine": platform.machine(),
            "platform": platform.platform(),
            "processor": platform.processor(),
            "tuple_store": backend_name(),
            **(meta or {}),
        },
        # None marks a measurement the platform could not take (e.g. no
        # resource.getrusage) and serializes as JSON null.
        "results": {
            name: None if seconds is None else float(seconds)
            for name, seconds in results.items()
        },
    }
    if counters is not None:
        payload["counters"] = {
            name: dict(snapshot) for name, snapshot in counters.items()
        }
    if metrics is not None:
        payload["metrics"] = {
            name: dict(snapshot) for name, snapshot in metrics.items()
        }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def read_json_results(path):
    """Load a file written by :func:`write_json_results`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return payload


def compare_results(before, after):
    """Per-series speedups plus their geometric mean.

    Takes two payloads (or their ``results`` dicts); returns
    ``(rows, geomean)`` where rows are ``(name, before_s, after_s,
    speedup)`` for the series present in both.
    """
    before = before.get("results", before)
    after = after.get("results", after)
    rows = []
    for name in sorted(before):
        if name in after and after[name] > 0:
            rows.append(
                (name, before[name], after[name], before[name] / after[name])
            )
    mean = geometric_mean([speedup for _, _, _, speedup in rows])
    return rows, mean
