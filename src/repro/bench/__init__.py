"""Benchmark substrate: workload generators and reporting helpers."""

from .data import (
    binary_tree_edges,
    chain_edges,
    cycle_edges,
    fanout_edges,
    join_relations,
    same_generation_facts,
)
from .harness import RowTimer, banner, format_table, geometric_mean, time_call

__all__ = [
    "chain_edges",
    "cycle_edges",
    "fanout_edges",
    "binary_tree_edges",
    "same_generation_facts",
    "join_relations",
    "time_call",
    "RowTimer",
    "format_table",
    "banner",
    "geometric_mean",
]
