"""Benchmark substrate: workload generators and reporting helpers."""

from .data import (
    binary_tree_edges,
    chain_edges,
    cycle_edges,
    fanout_edges,
    join_relations,
    same_generation_facts,
)
from .harness import (
    RowTimer,
    banner,
    compare_results,
    format_table,
    geometric_mean,
    read_json_results,
    time_call,
    write_json_results,
)

__all__ = [
    "chain_edges",
    "cycle_edges",
    "fanout_edges",
    "binary_tree_edges",
    "same_generation_facts",
    "join_relations",
    "time_call",
    "RowTimer",
    "format_table",
    "banner",
    "geometric_mean",
    "write_json_results",
    "read_json_results",
    "compare_results",
]
