"""Workload generators for the paper's experiments.

Each generator returns edge/fact tuples; callers feed them to
whichever engine is under test (``Engine.add_facts``, bottom-up fact
dicts, or the relational store).
"""

from __future__ import annotations

import random

__all__ = [
    "chain_edges",
    "cycle_edges",
    "fanout_edges",
    "binary_tree_edges",
    "same_generation_facts",
    "join_relations",
]


def chain_edges(length, start=1):
    """``edge(1,2). edge(2,3). ... edge(N-1,N).``"""
    return [(i, i + 1) for i in range(start, start + length - 1)]


def cycle_edges(length):
    """The figure 5 cycles: a chain of ``length`` nodes closed back to 1."""
    return chain_edges(length) + [(length, 1)]


def fanout_edges(width):
    """The figure 5 fanout structures: ``edge(1,1). ... edge(1,N).``"""
    return [(1, i) for i in range(1, width + 1)]


def binary_tree_edges(height):
    """``move/2`` facts for a complete binary tree of the given height
    (Table 2's workload): nodes 1 .. 2^(height+1)-1, node i moving to
    2i and 2i+1."""
    internal = 2**height - 1
    edges = []
    for node in range(1, internal + 1):
        edges.append((node, 2 * node))
        edges.append((node, 2 * node + 1))
    return edges


def same_generation_facts(families, depth):
    """``par/2`` facts forming ``families`` complete binary ancestries of
    the given depth — the classical same_generation workload."""
    facts = []
    for family in range(families):
        base = family * (2 ** (depth + 1))
        internal = 2**depth - 1
        for node in range(1, internal + 1):
            facts.append((base + 2 * node, base + node))
            facts.append((base + 2 * node + 1, base + node))
    return facts


def join_relations(size, fanout=1, seed=1994):
    """Two relations for the Table 3 indexed-join experiment.

    ``r(K, payload)`` with ``size`` tuples and ``s(K, payload)`` where
    each key appears ``fanout`` times, so the join yields
    ``size * fanout`` pairs.  A fixed seed keeps runs comparable.
    """
    rng = random.Random(seed)
    keys = list(range(size))
    rng.shuffle(keys)
    r = [(k, f"r{k}") for k in keys]
    s = []
    for k in range(size):
        for copy in range(fanout):
            s.append((k, f"s{k}_{copy}"))
    rng.shuffle(s)
    return r, s
