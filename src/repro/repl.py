"""The interactive toplevel.

"XSB is normally invoked using its read-eval-print loop interpreter,
[but] it can also directly execute compiled user programs" (section
4.2).  This module provides both: :class:`Toplevel` is the REPL, and
``python -m repro file.P --goal 'main.'`` is direct execution.

The REPL reads '.'-terminated goals, prints bindings one solution at a
time (``;`` asks for more, anything else stops), and accepts the usual
house-keeping forms: ``[file].`` consults a file, ``halt.`` leaves.
Lines starting with ``:`` are toplevel commands (``:profile``,
``:help``) rather than goals.  I/O is injected so the loop is fully
testable.

Observability flags: ``--trace FILE`` records SLG events for the whole
run and writes them at exit (Chrome trace-event JSON when FILE ends in
``.json``, JSONL otherwise); ``--profile`` prints the per-subgoal
profile report at exit.  Both are also reachable from the language via
``trace_control/1``.
"""

from __future__ import annotations

import sys

from .engine import Engine
from .errors import ReproError
from .lang.writer import term_to_str
from .terms import Atom, Struct, deref, is_proper_list, list_to_python

__all__ = ["Toplevel", "main"]

BANNER = "repro (XSB SIGMOD'94 reproduction) — type 'halt.' to leave"
PROMPT = "?- "
MORE_PROMPT = " ? "

HELP_TEXT = """\
goals end with '.'; ';' asks for more solutions
  [file].             consult a program file
  halt.               leave the toplevel
  statistics.         print every engine counter
  trace_control(on).  start SLG tracing + profiling (off/clear/dump(F)/chrome(F))
  write_metrics(F,P). write the metrics snapshot (F: json or prometheus)
  :profile            print the per-subgoal profile report
  :top [N]            per-predicate self-time/answer-rate (top N, default 10)
  :top on|off         refresh the :top view live after every query
  :analyze p/N        print the analysis-registry summary for p/N
  :tables             list tables with lifecycle, answers, and bytes
  :sessions           list live sessions over this knowledge base
  :help               this text
"""


class Toplevel:
    """A read-eval-print loop over one engine."""

    def __init__(self, engine=None, input_stream=None, output_stream=None):
        self.engine = engine if engine is not None else Engine()
        self.input = input_stream if input_stream is not None else sys.stdin
        self.output = (
            output_stream if output_stream is not None else sys.stdout
        )
        if engine is None:
            self.engine.output = self.output
        self.live_top = False  # ``:top on`` — reprint after every query

    # -- plumbing ------------------------------------------------------------

    def _write(self, text):
        self.output.write(text)

    def _read_goal_text(self):
        """Accumulate input lines until a clause-terminating '.'"""
        self._write(PROMPT)
        try:
            self.output.flush()
        except (ValueError, OSError):
            pass
        lines = []
        while True:
            line = self.input.readline()
            if not line:
                return None if not lines else " ".join(lines)
            lines.append(line.rstrip("\n"))
            joined = " ".join(lines).rstrip()
            if joined.endswith(".") or joined.lstrip().startswith(":"):
                return joined
            self._write("   ")

    # -- command handling ----------------------------------------------------------

    def _special_command(self, term):
        """Handle halt/consult forms; returns 'halt', True, or False."""
        term = deref(term)
        if isinstance(term, Atom) and term.name in ("halt", "end_of_file"):
            return "halt"
        if isinstance(term, Struct) and term.name == "halt":
            return "halt"
        if is_proper_list(term) and not (
            isinstance(term, Atom)
        ):
            # [file1, file2]. consults files, as in Prolog toplevels
            for item in list_to_python(term):
                item = deref(item)
                if isinstance(item, Atom):
                    self._consult_file(item.name)
            return True
        if (
            isinstance(term, Struct)
            and term.name == "consult"
            and len(term.args) == 1
        ):
            target = deref(term.args[0])
            if isinstance(target, Atom):
                self._consult_file(target.name)
                return True
        return False

    def _consult_file(self, path):
        try:
            self.engine.consult_file(path)
            self._write(f"% {path} consulted\n")
        except (OSError, ReproError) as error:
            self._write(f"error: {error}\n")

    # -- the loop --------------------------------------------------------------------

    def _colon_command(self, text):
        """``:``-prefixed toplevel commands; always returns True."""
        command = text.lstrip(":").strip().rstrip(".")
        if command == "profile":
            if self.engine.profiler is None:
                self._write(
                    "profiling is off — start with --profile or "
                    "trace_control(on).\n"
                )
            else:
                tracer = self.engine.tracer
                if tracer is not None and tracer.dropped > 0:
                    self._write(
                        f"% warning: {tracer.dropped} trace event(s) "
                        f"dropped (ring capacity {tracer.capacity}) — "
                        "the oldest window is missing from dumps\n"
                    )
                self._write(self.engine.format_profile() + "\n")
        elif command == "top" or command.startswith("top "):
            self._top_command(command[len("top"):].strip())
        elif command.startswith("analyze"):
            spec = command[len("analyze"):].strip()
            name, _, arity = spec.rpartition("/")
            if not name or not arity.isdigit():
                self._write("usage: :analyze name/arity\n")
            else:
                self._write(self.engine.analyze(name, int(arity)) + "\n")
        elif command == "tables":
            self._write(self._format_tables())
        elif command == "sessions":
            self._write(self._format_sessions())
        elif command == "help":
            self._write(HELP_TEXT)
        else:
            self._write(f"unknown command :{command} — try :help\n")
        return True

    def _top_command(self, argument):
        """``:top [N]`` prints the per-predicate view; ``:top on``/
        ``:top off`` toggle the live refresh after every query."""
        if argument == "on":
            self.live_top = True
            self._write("% :top live refresh on\n")
            return
        if argument == "off":
            self.live_top = False
            self._write("% :top live refresh off\n")
            return
        limit = 10
        if argument:
            if not argument.isdigit():
                self._write("usage: :top [N] | :top on | :top off\n")
                return
            limit = int(argument)
        self._write_top(limit)

    def _write_top(self, limit=10):
        if self.engine.profiler is None:
            self._write(
                "profiling is off — start with --profile or "
                "trace_control(on).\n"
            )
            return
        from .obs import aggregate_top, format_top

        rows = aggregate_top(self.engine.profile_report())
        if not rows:
            self._write("% (no profiled predicates yet)\n")
            return
        self._write(format_top(rows, limit=limit) + "\n")

    def _format_tables(self):
        """The ``:tables`` listing: every subgoal frame with its SLG
        state and its incremental-maintenance lifecycle (valid /
        invalid / re-deriving), plus how many update deltas are
        waiting for the next query-boundary flush."""
        engine = self.engine
        maintainer = engine.incremental
        if maintainer is None:
            header = "% tables (incremental maintenance: off)\n"
        else:
            pending = len(maintainer.pending)
            header = (
                "% tables (incremental maintenance: on, "
                f"{pending} predicate delta(s) pending)\n"
            )
        frames = engine.tables.all_frames()
        if not frames:
            return header + "%   (no tables)\n"
        from .obs import estimate_table_bytes

        lines = [header]
        total_answers = 0
        total_bytes = 0
        for frame in sorted(frames, key=lambda f: f.seq):
            answers = len(frame.answers)
            space = estimate_table_bytes(frame)
            total_answers += answers
            total_bytes += space
            lines.append(
                f"%   {frame.indicator:<20} {frame.state:<12} "
                f"{frame.lifecycle:<12} {answers} answers  "
                f"{space} bytes\n"
            )
        lines.append(
            f"%   {'total':<20} {len(frames)} table(s)"
            f"{'':<15} {total_answers} answers  {total_bytes} bytes\n"
        )
        return "".join(lines)

    def _format_sessions(self):
        """The ``:sessions`` listing: every live session registered on
        this engine's knowledge base, with its query count, table-space
        sharing mode, and the KB-wide cross-session hit ratio."""
        engine = self.engine
        kb = engine.kb
        sessions = kb.sessions()
        lines = [
            f"% sessions ({kb.sessions_active()} active, "
            f"shared-table hit ratio {kb.shared_hit_ratio():.3f})\n"
        ]
        for session in sorted(sessions, key=lambda s: s.sid):
            marker = " (this one)" if session is engine else ""
            tables = "shared" if session.tables_shared else "private"
            shared_hits = (
                session.stats.table_hit_shared
                if session.stats is not None else 0
            )
            lines.append(
                f"%   #{session.sid:<4} {session.queries} queries  "
                f"{tables} tables  {shared_hits} shared hit(s)"
                f"{marker}\n"
            )
        return "".join(lines)

    def run_goal(self, text):
        """Run one goal; prints bindings / yes / no. Returns False on halt."""
        if text.lstrip().startswith(":"):
            return self._colon_command(text.strip())
        try:
            term, varmap = self.engine._goal_and_vars(text)
        except ReproError as error:
            self._write(f"error: {error}\n")
            return True

        special = self._special_command(term)
        if special == "halt":
            return False
        if special:
            return True

        try:
            shown_any = False
            iterator = self.engine.query_iter(text, raw=True)
            try:
                for solution in iterator:
                    shown_any = True
                    visible = {
                        name: value
                        for name, value in solution.items()
                        if not name.startswith("_")
                    }
                    if visible:
                        bindings = ", ".join(
                            f"{name} = {term_to_str(value, self.engine.operators)}"
                            for name, value in sorted(visible.items())
                        )
                        self._write(bindings)
                    else:
                        self._write("yes")
                    self._write(MORE_PROMPT)
                    try:
                        self.output.flush()
                    except (ValueError, OSError):
                        pass
                    answer = self.input.readline()
                    if not answer or not answer.strip().startswith(";"):
                        self._write("\n")
                        break
                    self._write("\n")
                else:
                    if shown_any:
                        self._write("no (more)\n")
                    else:
                        self._write("no\n")
            finally:
                iterator.close()
        except ReproError as error:
            self._write(f"error: {error}\n")
        if self.live_top:
            self._write_top()
        return True

    def interact(self, banner=True):
        """Run the loop until EOF or halt."""
        if banner:
            self._write(BANNER + "\n")
        while True:
            text = self._read_goal_text()
            if text is None:
                self._write("\n")
                return
            if not text.strip(" ."):
                continue
            if not self.run_goal(text):
                return


def main(argv=None):
    """``python -m repro [files...] [--goal 'g.'] [--quiet] [--trace F] [--profile]``"""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro",
        description="An XSB-style tabled deductive database engine.",
    )
    parser.add_argument("files", nargs="*", help="program files to consult")
    parser.add_argument(
        "--goal",
        action="append",
        default=[],
        help="run this goal and exit (repeatable; direct execution mode)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the banner and statistics/0 header",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="record SLG events; write Chrome trace JSON (*.json) or "
        "JSONL to FILE at exit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile tabled subgoals; print the report at exit",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        help="record query-level metrics; write the snapshot to FILE at "
        "exit (JSON when FILE ends in .json, Prometheus text otherwise)",
    )
    arguments = parser.parse_args(argv)

    engine = Engine()
    if arguments.quiet:
        engine.quiet = True
    if arguments.trace:
        engine.enable_trace()
    if arguments.trace or arguments.profile:
        engine.enable_profile()
    if arguments.metrics:
        engine.enable_metrics()
    for path in arguments.files:
        engine.consult_file(path)
    if arguments.goal:
        # direct execution: run the goals, report success via exit code
        ok = True
        for goal in arguments.goal:
            ok = engine.run_goal(engine.parse(goal)) and ok
        _finish_observability(engine, arguments)
        return 0 if ok else 1
    Toplevel(engine).interact(banner=not arguments.quiet)
    _finish_observability(engine, arguments)
    return 0


def _finish_observability(engine, arguments):
    """Flush --trace / --profile / --metrics output at run end."""
    if arguments.trace:
        if arguments.trace.endswith(".json"):
            engine.write_chrome_trace(arguments.trace)
        else:
            engine.write_trace_jsonl(arguments.trace)
        if not arguments.quiet:
            sys.stderr.write(f"% trace written to {arguments.trace}\n")
    if arguments.profile:
        sys.stdout.write(engine.format_profile() + "\n")
    if getattr(arguments, "metrics", None):
        engine.write_metrics(arguments.metrics)
        if not arguments.quiet:
            sys.stderr.write(
                f"% metrics written to {arguments.metrics}\n"
            )


if __name__ == "__main__":
    raise SystemExit(main())
