"""The staged, generation-stamped analysis registry.

One :class:`AnalysisRegistry` hangs off every clause
:class:`~repro.engine.database.Database` and is the *only* way the
evaluation layers look at program structure.  Its stages mirror the
XSB compiler's passes (DESIGN.md maps them to the paper's sections):

1. **call graph** — predicate-level edges extracted by the shared
   walker (:mod:`repro.analysis.callgraph`) from compiled clauses;
2. **Tarjan SCCs + condensation reachability** — which components can
   reach which (:mod:`repro.analysis.graph`), consumed by the SLG
   machine's completion filter and the WFS router;
3. **negation-aware dependency graph** — edges carry polarity,
   restricted to rule-defined callees (facts cannot close a negative
   loop);
4. **stratification verdict** — strata when the program is stratified,
   the offending SCCs when not; drives WFS routing;
5. **datalog-safety / hybrid plans** — per-predicate reachable-closure
   screen over the lowered IR plus the translated bottom-up plan
   (:class:`~repro.engine.hybrid.HybridPlan`), the hybrid bridge's
   routing decision;
6. **adornment/mode summaries** — per-argument binding skeletons in
   the :mod:`~repro.analysis.adorn` vocabulary.

Every stage is lazy and cached.  Invalidation rides the store layer's
stamps: the process-global :func:`mutation_generation` makes the
no-change fast path one integer compare, and when the generation *has*
moved, per-predicate ``mutations`` stamps (compared together with
predicate object identity, so retract-then-reassert of an
identical-looking predicate cannot alias) decide whether the cached
result actually depends on anything that changed.  A hybrid plan's
snapshot lists exactly the predicates its reachable closure visited,
so an assert dirties exactly the plans downstream of the asserted
predicate and nothing else.
"""

from __future__ import annotations

from ..errors import SafetyError
from ..store.codec import MAX_TERM_DEPTH, FreezeError
from ..terms import Struct
from ..terms import Var as TermVar
from . import graph as _graphlib
from .callgraph import body_calls
from .ir import (
    REL,
    LoweringError,
    _args_ground,
    check_rule_safety,
    ground_head_row,
    ground_within_depth,
    lower_predicate,
)

__all__ = ["AnalysisRegistry", "EXCLUDED_CONTROL"]

# Control constructs are dispatched by name inside the machine's solve
# loop rather than through the builtin registry, so the datalog-safety
# screen must reject them explicitly; everything else non-user is
# caught by the builtin-registry probe.
EXCLUDED_CONTROL = frozenset(
    (",", ";", "->", "!", "true", "fail", "false", "\\+",
     "$answer", "$yield", "$ite", "$cutto", "tcut")
)


class _GraphState:
    """Stages 1–4, built together (one clause walk serves them all)."""

    __slots__ = (
        "generation",
        "stamps",
        "call_graph",
        "dep_edges",
        "opaque",
        "sccs",
        "scc_of",
        "reach",
        "strat",
    )

    def __init__(self, generation, stamps, call_graph, dep_edges, opaque):
        self.generation = generation
        self.stamps = stamps
        self.call_graph = call_graph
        self.dep_edges = dep_edges
        self.opaque = opaque
        sccs = _graphlib.tarjan_sccs(call_graph)
        scc_of = _graphlib.scc_index(sccs)
        reach = _graphlib.scc_reach(call_graph, sccs, scc_of)
        # Opacity makes static reachability a lower bound; a component
        # that is (or can reach) an opaque predicate may reach anything,
        # which the consumers read as reach = None (the universe).
        opaque_sccs = {scc_of[key] for key in opaque}
        if opaque_sccs:
            reach = [
                None if not opaque_sccs.isdisjoint(r) else r for r in reach
            ]
        self.sccs = sccs
        self.scc_of = scc_of
        self.reach = reach
        self.strat = None  # stage 4, computed on demand


class AnalysisRegistry:
    """Cached program analyses for one clause database."""

    __slots__ = (
        "db",
        "hits",
        "misses",
        "invalidations",
        "_generation",
        "_graph",
        "_scans",
        "_lowered",
        "_plans",
        "_modes",
        "_wfs",
        "observer",
    )

    def __init__(self, db):
        # Function-scope import: database.py constructs the registry,
        # so importing it here at module level would be circular.
        from ..engine.database import mutation_generation

        self.db = db
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self._generation = mutation_generation
        self._graph = None
        self._scans = {}
        self._lowered = {}
        self._plans = {}
        self._modes = {}
        self._wfs = None
        # The engine's span recorder (repro.obs.spans), set when
        # metrics or tracing are enabled; rebuilds report through it.
        self.observer = None

    # -- stages 1–3: call graph, SCCs, reachability --------------------

    def _ensure_graph(self):
        generation = self._generation()
        state = self._graph
        if state is not None:
            if state.generation == generation:
                self.hits += 1
                return state
            if self._stamps_fresh(state.stamps):
                state.generation = generation
                self.hits += 1
                return state
            self.invalidations += 1
        self.misses += 1
        observer = self.observer
        if observer is not None:
            from ..obs.spans import STAGE_ANALYSIS

            token = observer.begin(STAGE_ANALYSIS, label="analysis:graph")
            try:
                state = self._build_graph(generation)
            finally:
                observer.end(token, detail=len(self.db.predicates))
            from ..obs.trace import EV_ANALYSIS_REBUILD

            observer.point(
                EV_ANALYSIS_REBUILD, label="analysis_rebuild",
                detail=len(self.db.predicates),
            )
        else:
            state = self._build_graph(generation)
        self._graph = state
        return state

    def _stamps_fresh(self, stamps):
        predicates = self.db.predicates
        if len(predicates) != len(stamps):
            return False
        for key, (pred, stamp) in stamps.items():
            if predicates.get(key) is not pred or pred.mutations != stamp:
                return False
        return True

    def _scan_predicate(self, key, pred):
        """One predicate's clause-walk summary, memoized by mutation
        stamp: ``(callees, call_pairs, transparent, has_rule)``.

        The memo outlives graph rebuilds, so an assert to one predicate
        rescans that predicate alone — a rebuild over a large EDB reuses
        every other summary instead of re-walking its fact clauses.
        """
        entry = self._scans.get(key)
        if (
            entry is not None
            and entry[0] is pred
            and entry[1] == pred.mutations
        ):
            return entry[2]
        if pred.row_store is not None:
            # Row-backed relations are pure ground facts by
            # construction (a rule assert promotes them to clause-land
            # first), so the walk over — possibly millions of — lazy
            # row clauses is skipped outright.
            summary = (set(), [], True, False)
            self._scans[key] = (pred, pred.mutations, summary)
            return summary
        callees = set()
        pairs = []
        transparent = True
        has_rule = False
        for clause in pred.clauses:
            body = clause.body
            if body:
                has_rule = True
                for literal in body:
                    found = []
                    if not body_calls(literal, found):
                        transparent = False
                    for pair in found:
                        callees.add(pair[0])
                        pairs.append(pair)
            elif not has_rule and not _args_ground(clause.head_args):
                # A bodiless clause with a head variable is a rule, not
                # a fact; once one rule is seen the check is settled.
                has_rule = True
        summary = (callees, pairs, transparent, has_rule)
        self._scans[key] = (pred, pred.mutations, summary)
        return summary

    def _build_graph(self, generation):
        predicates = self.db.predicates
        stamps = {}
        summaries = {}
        rule_defined = set()
        for key, pred in predicates.items():
            stamps[key] = (pred, pred.mutations)
            summary = self._scan_predicate(key, pred)
            summaries[key] = summary
            if summary[3]:
                rule_defined.add(key)
        call_graph = {}
        dep_edges = {}
        opaque = set()
        for key, (callees, pairs, transparent, _) in summaries.items():
            # Copies, not the memoized sets: the adjacency is handed out
            # via call_graph() and must not alias the per-pred memo.
            call_graph[key] = set(callees)
            deps = dep_edges[key] = set()
            for callee, negative in pairs:
                if callee in rule_defined:
                    deps.add((callee, negative))
            if not transparent:
                opaque.add(key)
        return _GraphState(generation, stamps, call_graph, dep_edges, opaque)

    def call_graph(self):
        """Predicate-level adjacency: key -> set of callee keys."""
        return self._ensure_graph().call_graph

    def sccs(self):
        """Tarjan components, in reverse topological order."""
        return self._ensure_graph().sccs

    def scc_members(self, key):
        state = self._ensure_graph()
        own = state.scc_of.get(key)
        if own is None:
            return (key,)
        return tuple(sorted(state.sccs[own]))

    def scc_info(self, key):
        """``(scc_id, reach)`` for the machine's completion filter.

        ``reach`` is the frozenset of SCC ids the component can reach
        (itself included), or None when static analysis cannot bound it
        (a variable goal or ``call/N`` somewhere in the component's
        reachable part — the caller must assume the universe).  An
        unknown predicate gets ``(-1, None)``: maximally conservative.
        """
        state = self._ensure_graph()
        own = state.scc_of.get(key)
        if own is None:
            return -1, None
        return own, state.reach[own]

    def affected_keys(self, changed):
        """The affected-table closure of a set of changed predicates.

        ``changed`` is an iterable of ``(name, arity)`` keys that were
        asserted into, retracted from, or otherwise mutated.  Returns
        ``(affected, universe)``: ``affected`` is the set of defined
        predicate keys whose evaluation may depend on any changed key —
        every key whose SCC's condensation reach set intersects a
        changed SCC (unbounded reach counts as intersecting) — and
        ``universe`` is True when the closure cannot be bounded at all
        (a changed key is not a node of the current call graph, e.g. an
        abolished predicate whose dependents' reach sets no longer
        mention it).  The incremental table maintainer keeps completed
        tables outside this closure ``valid`` instead of abolishing
        them wholesale.
        """
        state = self._ensure_graph()
        scc_of = state.scc_of
        changed_sccs = set()
        for key in changed:
            own = scc_of.get(key)
            if own is None:
                return frozenset(), True
            changed_sccs.add(own)
        if not changed_sccs:
            return frozenset(), False
        reach = state.reach
        affected = set()
        for key, own in scc_of.items():
            r = reach[own]
            if r is None or not changed_sccs.isdisjoint(r):
                affected.add(key)
        return affected, False

    def plan_closure(self, key):
        """The predicate keys a cached hybrid plan's reachable-closure
        walk visited (its exact dependency set), or None when no plan
        entry is cached for ``key``.  No revalidation: the caller pairs
        this with :meth:`hybrid_plan`, which refreshed the entry."""
        entry = self._plans.get(key)
        if entry is None:
            return None
        return frozenset(k for k, _, _ in entry[0])

    # -- stage 4: stratification ---------------------------------------

    def stratification(self):
        """The negation verdict for the whole database.

        Returns a dict: ``stratified`` (bool), ``strata`` ({key:
        stratum} when stratified, None otherwise) and ``negative_sccs``
        (the SCC ids with an internal negative edge — the loops through
        negation).
        """
        state = self._ensure_graph()
        if state.strat is not None:
            self.hits += 1
            return state.strat
        self.misses += 1
        offending = _graphlib.negative_sccs(state.dep_edges, state.scc_of)
        strata = None if offending else _graphlib.stratify(state.dep_edges)
        state.strat = {
            "stratified": not offending,
            "strata": strata,
            "negative_sccs": tuple(sorted(offending)),
        }
        return state.strat

    def needs_wfs(self, key):
        """True when SLG would flounder on ``key``: some SCC reachable
        from it closes a loop through negation, so the query belongs on
        the well-founded-semantics interpreter."""
        verdict = self.stratification()
        if verdict["stratified"]:
            return False
        state = self._graph
        own = state.scc_of.get(key)
        if own is None:
            return False
        reach = state.reach[own]
        if reach is None:
            return True
        return not set(verdict["negative_sccs"]).isdisjoint(reach)

    # -- stage 5: lowering and datalog-safety / hybrid plans -----------

    def lowered_rules(self, key):
        """``(rules, has_facts)`` for one defined predicate, cached by
        its mutation stamp.  Raises KeyError for an unknown predicate
        and LoweringError for one outside the IR (variable goals)."""
        pred = self.db.predicates.get(key)
        if pred is None:
            raise KeyError(key)
        entry = self._lowered.get(key)
        if (
            entry is not None
            and entry[0] is pred
            and entry[1] == pred.mutations
        ):
            self.hits += 1
            return entry[2], entry[3]
        if entry is not None:
            self.invalidations += 1
        self.misses += 1
        rules, has_facts = lower_predicate(pred)
        self._lowered[key] = (pred, pred.mutations, rules, has_facts)
        return rules, has_facts

    def lowered_program(self):
        """The whole database as one bottom-up ``(Program, facts)``.

        The WFS interpreter's entry point: rules come from the shared
        lowering, fact rows straight from the ground bodiless clauses
        (no depth cap — the meta-interpreter must see every fact, not
        just the storable ones).
        """
        from ..bottomup.datalog import Program

        predicates = self.db.predicates
        rules = []
        facts = {}
        for key in sorted(predicates):
            pred = predicates[key]
            pred_rules, has_facts = self.lowered_rules(key)
            rules.extend(pred_rules)
            if has_facts:
                rows = facts.setdefault(key, [])
                for clause in pred.clauses:
                    if not clause.body:
                        row = ground_head_row(clause.head_args)
                        if row is not None:
                            rows.append(row)
        return Program(rules, check_safety=False), facts

    def hybrid_plan(self, engine, pred):
        """The :class:`~repro.engine.hybrid.HybridPlan` for ``pred``,
        or None when any reachable clause leaves the datalog-safe
        fragment.

        The result — including the negative verdict — is cached with a
        snapshot of every predicate the closure visited; assert or
        retract anywhere in that set (or defining a predicate the
        analysis saw as missing) invalidates it on the next call, and
        nothing else does.  While the global generation is unchanged,
        revalidation is one integer compare.
        """
        key = (pred.name, pred.arity)
        generation = self._generation()
        cache = self._plans.get(key)
        if cache is not None:
            if cache[2] == generation:
                self.hits += 1
                return cache[1]
            if self._snapshot_fresh(cache[0]):
                self.hits += 1
                self._plans[key] = (cache[0], cache[1], generation)
                return cache[1]
            self.invalidations += 1
        self.misses += 1
        observer = self.observer
        if observer is not None:
            from ..obs.spans import STAGE_ANALYSIS
            from ..obs.trace import EV_ANALYSIS_REBUILD

            token = observer.begin(
                STAGE_ANALYSIS, label=f"analysis:plan {key[0]}/{key[1]}"
            )
            try:
                snapshot, plan = self._build_plan(engine, pred)
            finally:
                observer.end(token)
            observer.point(
                EV_ANALYSIS_REBUILD,
                label=f"analysis_rebuild {key[0]}/{key[1]}",
                detail=len(snapshot),
            )
        else:
            snapshot, plan = self._build_plan(engine, pred)
        self._plans[key] = (snapshot, plan, generation)
        return plan

    def _snapshot_fresh(self, snapshot):
        predicates = self.db.predicates
        for key, known, stamp in snapshot:
            current = predicates.get(key)
            if current is not known:
                return False
            if known is not None and known.mutations != stamp:
                return False
        return True

    def _build_plan(self, engine, pred):
        """Reachable-closure walk + datalog-safety screen + translation.

        The screen accepts only positive REL literals over non-builtin,
        non-control predicates whose structure constants are ground
        within the codec depth bound — the fragment where bottom-up
        evaluation terminates whenever SLG does.
        """
        predicates = self.db.predicates
        builtins = engine.builtins
        snapshot = []
        seen = set()
        specs = []
        stack = [(pred.name, pred.arity)]
        while stack:
            key = stack.pop()
            if key in seen:
                continue
            seen.add(key)
            target = predicates.get(key)
            snapshot.append(
                (key, target, -1 if target is None else target.mutations)
            )
            if target is None:
                if engine.unknown != "fail":
                    # SLG would raise ExistenceError; preserve that.
                    return tuple(snapshot), None
                continue  # undefined-but-failing: an empty relation
            try:
                rules, has_facts = self.lowered_rules(key)
            except LoweringError:
                return tuple(snapshot), None  # call through a variable
            for rule in rules:
                for literal in rule.body:
                    if literal[0] != REL:
                        return tuple(snapshot), None  # is/2, comparisons, =/2
                    _, name, args, positive = literal
                    if not positive:
                        return tuple(snapshot), None  # negation
                    callee = (name, len(args))
                    if name in EXCLUDED_CONTROL or callee in builtins:
                        return tuple(snapshot), None
                    for arg in args:
                        if isinstance(arg, tuple) and not ground_within_depth(
                            arg, MAX_TERM_DEPTH
                        ):
                            return tuple(snapshot), None
                    stack.append(callee)
                for arg in rule.head_args:
                    if isinstance(arg, tuple) and not ground_within_depth(
                        arg, MAX_TERM_DEPTH
                    ):
                        return tuple(snapshot), None
                # Range restriction, checked per rule *during* the walk:
                # Program() applies the same check_rule_safety to every
                # rule, so this changes no verdict — it only fails fast.
                # A query on p(X,X). q(X) :- huge_edb(..) bails here at
                # p, before lowering (or collecting fact rows for) any
                # predicate deeper in the closure.
                try:
                    check_rule_safety(rule)
                except SafetyError:
                    return tuple(snapshot), None
            specs.append((target, rules, has_facts))
        from ..engine.hybrid import translate_plan

        try:
            plan = translate_plan(specs)
        except (FreezeError, SafetyError):
            plan = None
        return tuple(snapshot), plan

    def plan_for(self, name, arity):
        """The cached plan entry's plan (no revalidation), or None."""
        entry = self._plans.get((name, arity))
        return None if entry is None else entry[1]

    def plans(self):
        """Every live (positive) hybrid plan; the store walker's view."""
        return [entry[1] for entry in self._plans.values() if entry[1] is not None]

    # -- WFS interpreter cache -----------------------------------------

    def wfs_interpreter(self, engine):
        """A WFS meta-interpreter over the current database, cached by
        generation (any mutation rebuilds — alternating fixpoints are
        expensive enough that finer invalidation would be noise)."""
        generation = self._generation()
        cached = self._wfs
        if cached is not None and cached[0] == generation:
            self.hits += 1
            return cached[1]
        if cached is not None:
            self.invalidations += 1
        self.misses += 1
        from ..engine.wfs import WFSInterpreter

        interp = WFSInterpreter.from_engine(engine)
        self._wfs = (generation, interp)
        return interp

    # -- stage 6: adornment / mode summaries ---------------------------

    def modes(self, key):
        """Per-argument binding skeleton across a predicate's clause
        heads: 'v' variable everywhere, 'c' constant everywhere, 's'
        structure everywhere, 'm' mixed.  None for unknown predicates."""
        pred = self.db.predicates.get(key)
        if pred is None:
            return None
        entry = self._modes.get(key)
        if (
            entry is not None
            and entry[0] is pred
            and entry[1] == pred.mutations
        ):
            self.hits += 1
            return entry[2]
        if entry is not None:
            self.invalidations += 1
        self.misses += 1
        kinds = [set() for _ in range(pred.arity)]
        for clause in pred.clauses:
            for position, arg in enumerate(clause.head_args):
                if isinstance(arg, TermVar):
                    kinds[position].add("v")
                elif isinstance(arg, Struct):
                    kinds[position].add("s")
                else:
                    kinds[position].add("c")
        summary = "".join(
            next(iter(k)) if len(k) == 1 else ("?" if not k else "m")
            for k in kinds
        )
        self._modes[key] = (pred, pred.mutations, summary)
        return summary

    # -- reporting ------------------------------------------------------

    def statistics(self):
        """The ``analysis_*`` counter block merged into statistics/0,2.

        Counts are cumulative for the registry's lifetime (like the
        store layer's); the SCC/strata gauges read the *cached* state
        without forcing a build, so reporting never computes."""
        state = self._graph
        scc_count = len(state.sccs) if state is not None else 0
        strata_count = 0
        if state is not None and state.strat is not None:
            strata = state.strat["strata"]
            if strata:
                strata_count = max(strata.values()) + 1
        return {
            "analysis_cache_hits": self.hits,
            "analysis_cache_misses": self.misses,
            "analysis_invalidations": self.invalidations,
            "analysis_scc_count": scc_count,
            "analysis_strata_count": strata_count,
        }

    def describe(self, name, arity):
        """The ``:analyze`` REPL summary for one predicate."""
        key = (name, arity)
        pred = self.db.predicates.get(key)
        lines = [f"% analysis for {name}/{arity}"]
        if pred is None:
            lines.append("%   undefined predicate")
            return "\n".join(lines)
        state = self._ensure_graph()
        own = state.scc_of.get(key)
        members = self.scc_members(key)
        recursive = len(members) > 1 or key in state.call_graph.get(key, ())
        shown = ", ".join(f"{n}/{a}" for n, a in members)
        lines.append(f"%   clauses:    {len(pred.clauses)}")
        lines.append(f"%   tabled:     {'yes' if pred.tabled else 'no'}")
        lines.append(f"%   modes:      {self.modes(key) or '-'}")
        suffix = " (recursive)" if recursive else ""
        lines.append(f"%   scc:        [{shown}]{suffix}")
        if own is not None and state.reach[own] is None:
            lines.append("%   reach:      unbounded (dynamic calls)")
        verdict = self.stratification()
        if verdict["stratified"]:
            stratum = (verdict["strata"] or {}).get(key, 0)
            lines.append(f"%   stratified: yes (stratum {stratum})")
        elif self.needs_wfs(key):
            lines.append("%   stratified: no (route through WFS)")
        else:
            lines.append("%   stratified: no (elsewhere; this SCC is clean)")
        entry = self._plans.get(key)
        if entry is None:
            lines.append("%   hybrid:     not analyzed yet")
        elif entry[1] is None:
            lines.append("%   hybrid:     fallback (outside datalog fragment)")
        else:
            adorns = ", ".join(sorted(entry[1].rewrites)) or "none yet"
            lines.append(f"%   hybrid:     datalog-safe (adornments: {adorns})")
        return "\n".join(lines)
