"""The shared program IR: normalized rules over frozen values.

Every evaluation layer in this repository reasons about clauses in the
same normal form — the one the bottom-up engine executes directly and
the analysis registry (:mod:`repro.analysis.registry`) computes over:

* constants are frozen Python data (ints/floats/strings for atoms and
  numbers, tuples ``(functor, args...)`` for compounds — the same
  domain as :mod:`repro.store.codec`);
* variables are :class:`Var` instances, identity-scoped to their rule;
* a :class:`Rule` body is a list of literals of four kinds —
  ``(REL, pred, args, positive)`` for relational literals (negation is
  a polarity flag, not an operator), ``(CMP, op, left, right)`` for
  arithmetic comparison, ``(IS, target, expr)`` for arithmetic
  assignment and ``(UNIFY, left, right)`` for explicit unification.

Two front ends lower into this form and must stay in lock-step; both
live here so there is exactly one place that decides how a clause maps
to IR:

* :func:`term_rules` / :func:`term_literal` lower *parsed terms* (the
  path ``repro.bottomup.datalog.parse_program`` uses);
* :func:`lower_predicate` / :func:`skeleton_literal` lower *compiled
  clauses* (:class:`repro.engine.clause.Clause` skeletons, where
  variables are :class:`SlotRef` slot indexes) — the path the hybrid
  bridge and the WFS router use.

Before this module existed the two lowerings were separate and
disagreed on edge cases (``engine/hybrid._translate_rule`` treated
``tnot/1`` as an opaque builtin, the parser path as a polarity flip);
now a negated literal is a negative literal on both paths and the
safety screens decide what to do with it.
"""

from __future__ import annotations

from ..errors import ReproError, SafetyError, TypeError_
from ..terms import Atom, Struct
from ..terms import Var as TermVar
from ..terms import deref

# The compiled-clause lowering tests variables with isinstance(x, TermVar):
# SlotRef subclasses Var exactly so that skeleton inspectors need no
# special case (and importing it here would be circular — engine.clause
# is loaded through the engine package, which loads this module first).

__all__ = [
    "REL",
    "CMP",
    "IS",
    "UNIFY",
    "COMPARISON_OPS",
    "NEGATION_NAMES",
    "Var",
    "Rule",
    "LoweringError",
    "pattern_vars",
    "list_args",
    "term_pattern",
    "term_literal",
    "skeleton_pattern",
    "skeleton_literal",
    "is_fact_clause",
    "lower_predicate",
    "ground_head_row",
    "ground_within_depth",
    "check_rule_safety",
]

REL = "rel"
CMP = "cmp"
IS = "is"
UNIFY = "unify"

#: Binary arithmetic comparison operators that lower to CMP literals.
COMPARISON_OPS = frozenset(("<", ">", "=<", ">=", "=:=", "=\\="))

#: Unary operators that flip the polarity of the literal they wrap.
NEGATION_NAMES = frozenset(("\\+", "not", "tnot", "e_tnot"))


class LoweringError(ReproError):
    """A clause cannot be expressed in the IR (e.g. a variable goal)."""

    def __init__(self, culprit):
        self.culprit = culprit
        super().__init__(f"cannot lower to datalog IR: {culprit!r}")


class Var:
    """A rule variable (identity-scoped)."""

    __slots__ = ("name",)

    def __init__(self, name="_"):
        self.name = name

    def __repr__(self):
        return self.name


class Rule:
    """``head :- body`` with body literals of four kinds.

    * ``(REL, pred, args, positive)`` — a relational literal;
    * ``(CMP, op, left, right)`` — arithmetic comparison;
    * ``(IS, target, expr)`` — arithmetic assignment;
    * ``(UNIFY, left, right)`` — explicit unification/construction.
    """

    __slots__ = ("head_pred", "head_args", "body")

    def __init__(self, head_pred, head_args, body):
        self.head_pred = head_pred
        self.head_args = tuple(head_args)
        self.body = list(body)

    @property
    def indicator(self):
        return f"{self.head_pred}/{len(self.head_args)}"

    def rel_literals(self):
        return [lit for lit in self.body if lit[0] == REL]

    def __repr__(self):
        return f"<Rule {self.indicator} :- {len(self.body)} literals>"


def pattern_vars(pattern, out=None):
    if out is None:
        out = []
    if isinstance(pattern, Var):
        if pattern not in out:
            out.append(pattern)
    elif isinstance(pattern, tuple):
        for arg in pattern[1:]:
            pattern_vars(arg, out)
    return out


def list_args(args):
    """Wrap an argument tuple so pattern_vars can walk it."""
    return ("$args",) + tuple(args)


# --------------------------------------------------------------------------
# lowering from parsed terms (the parser front end)
# --------------------------------------------------------------------------

def term_pattern(term, varmap):
    """One parsed term as an IR pattern; ``varmap`` keys term identity."""
    term = deref(term)
    if isinstance(term, TermVar):
        var = varmap.get(id(term))
        if var is None:
            var = Var(term.name or f"V{len(varmap)}")
            varmap[id(term)] = var
        return var
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Struct):
        return (term.name,) + tuple(
            term_pattern(a, varmap) for a in term.args
        )
    return term


def term_literal(term, varmap, out, positive=True):
    """Lower one parsed body goal, appending IR literals to ``out``.

    Conjunctions flatten, negation operators flip the polarity of their
    argument, comparison/``is``/``=`` goals become CMP/IS/UNIFY
    literals and every other struct or atom a REL literal.
    """
    term = deref(term)
    if isinstance(term, Struct) and term.name == "," and len(term.args) == 2:
        term_literal(term.args[0], varmap, out, positive)
        term_literal(term.args[1], varmap, out, positive)
        return
    if (
        isinstance(term, Struct)
        and term.name in NEGATION_NAMES
        and len(term.args) == 1
    ):
        term_literal(term.args[0], varmap, out, positive=not positive)
        return
    if (
        isinstance(term, Struct)
        and term.name in COMPARISON_OPS
        and len(term.args) == 2
    ):
        out.append(
            (
                CMP,
                term.name,
                term_pattern(term.args[0], varmap),
                term_pattern(term.args[1], varmap),
            )
        )
        return
    if isinstance(term, Struct) and term.name == "is" and len(term.args) == 2:
        out.append(
            (
                IS,
                term_pattern(term.args[0], varmap),
                term_pattern(term.args[1], varmap),
            )
        )
        return
    if isinstance(term, Struct) and term.name == "=" and len(term.args) == 2:
        out.append(
            (
                UNIFY,
                term_pattern(term.args[0], varmap),
                term_pattern(term.args[1], varmap),
            )
        )
        return
    if isinstance(term, Struct):
        out.append(
            (
                REL,
                term.name,
                tuple(term_pattern(a, varmap) for a in term.args),
                positive,
            )
        )
        return
    if isinstance(term, Atom):
        out.append((REL, term.name, (), positive))
        return
    raise TypeError_("datalog literal", term)


# --------------------------------------------------------------------------
# lowering from compiled clauses (the store front end)
# --------------------------------------------------------------------------

def _slot_var(slot, varmap):
    var = varmap.get(slot.index)
    if var is None:
        var = Var(slot.name or f"S{slot.index}")
        varmap[slot.index] = var
    return var


def skeleton_pattern(skeleton, varmap):
    """One compiled-clause argument skeleton as an IR pattern.

    SlotRefs map to rule variables by slot index, atoms to their names,
    structs to tuples.  Iterative, like the skeletonizer itself, so a
    deep ground argument lowers without blowing the recursion limit
    (depth policy is the *consumer's* screen, not the lowering's).
    """
    if isinstance(skeleton, TermVar):  # a SlotRef: compiled variable
        return _slot_var(skeleton, varmap)
    if isinstance(skeleton, Atom):
        return skeleton.name
    if not isinstance(skeleton, Struct):
        return skeleton
    stack = [(skeleton.name, iter(skeleton.args), [])]
    while True:
        name, children, parts = stack[-1]
        descended = False
        for child in children:
            if isinstance(child, TermVar):
                parts.append(_slot_var(child, varmap))
            elif isinstance(child, Atom):
                parts.append(child.name)
            elif isinstance(child, Struct):
                stack.append((child.name, iter(child.args), []))
                descended = True
                break
            else:
                parts.append(child)
        if descended:
            continue
        stack.pop()
        node = (name,) + tuple(parts)
        if not stack:
            return node
        stack[-1][2].append(node)


def skeleton_literal(skeleton, varmap, out, positive=True):
    """Lower one compiled body-literal skeleton; mirrors term_literal."""
    if isinstance(skeleton, Struct):
        name, args = skeleton.name, skeleton.args
        n = len(args)
        if name == "," and n == 2:
            skeleton_literal(args[0], varmap, out, positive)
            skeleton_literal(args[1], varmap, out, positive)
            return
        if name in NEGATION_NAMES and n == 1:
            skeleton_literal(args[0], varmap, out, not positive)
            return
        if name in COMPARISON_OPS and n == 2:
            out.append(
                (
                    CMP,
                    name,
                    skeleton_pattern(args[0], varmap),
                    skeleton_pattern(args[1], varmap),
                )
            )
            return
        if name == "is" and n == 2:
            out.append(
                (
                    IS,
                    skeleton_pattern(args[0], varmap),
                    skeleton_pattern(args[1], varmap),
                )
            )
            return
        if name == "=" and n == 2:
            out.append(
                (
                    UNIFY,
                    skeleton_pattern(args[0], varmap),
                    skeleton_pattern(args[1], varmap),
                )
            )
            return
        out.append(
            (
                REL,
                name,
                tuple(skeleton_pattern(a, varmap) for a in args),
                positive,
            )
        )
        return
    if isinstance(skeleton, Atom):
        out.append((REL, skeleton.name, (), positive))
        return
    # A SlotRef (or stranger) in literal position: a call through a
    # variable, which has no first-order IR form.
    raise LoweringError(skeleton)


def _args_ground(head_args):
    """True when no variable occurs anywhere in the argument skeletons.

    SlotRef subclasses Var, so one isinstance test covers both; the
    walk is iterative because bulk-loaded facts can be very deep.
    """
    stack = list(head_args)
    while stack:
        node = stack.pop()
        if isinstance(node, TermVar):
            return False
        if isinstance(node, Struct):
            stack.extend(node.args)
    return True


def is_fact_clause(clause):
    """True for a compiled clause that is a ground bodiless fact."""
    return not clause.body and _args_ground(clause.head_args)


def lower_predicate(pred):
    """Lower one compiled predicate: ``(rules, has_facts)``.

    Ground bodiless clauses are *facts* — skipped here (their rows come
    from the predicate's fact store or :func:`ground_head_row`), only
    flagged via ``has_facts``.  Everything else, including a bodiless
    clause with a variable in the head, lowers to a :class:`Rule`.
    Raises :class:`LoweringError` for a variable body goal.
    """
    if getattr(pred, "row_store", None) is not None:
        # Row-backed relations hold only ground facts; their rows come
        # from the fact store, so there is nothing to lower per clause.
        return [], len(pred.clauses) > 0
    rules = []
    has_facts = False
    for clause in pred.clauses:
        if is_fact_clause(clause):
            has_facts = True
            continue
        varmap = {}
        head_args = tuple(
            skeleton_pattern(arg, varmap) for arg in clause.head_args
        )
        body = []
        for literal in clause.body:
            skeleton_literal(literal, varmap, body)
        rules.append(Rule(pred.name, head_args, body))
    return rules, has_facts


def ground_head_row(head_args):
    """A bodiless clause head as a frozen fact row, or None if nonground.

    Unlike the store codec this applies no depth cap — it serves
    consumers (the WFS lowering) that must see every fact the clause
    database holds, not just the storable ones.
    """
    if not _args_ground(head_args):
        return None
    empty = {}
    return tuple(skeleton_pattern(arg, empty) for arg in head_args)


def ground_within_depth(pattern, limit):
    """True when ``pattern`` holds no variable and nests below ``limit``.

    The hybrid bridge's screen for structure constants: patterns that
    build new structure bottom-up could diverge where SLG's
    demand-driven search would not, and over-deep terms stay on the
    iterative SLG kernels (mirroring the store codec's freeze cap).
    """
    stack = [(pattern, 0)]
    while stack:
        node, depth = stack.pop()
        if isinstance(node, Var):
            return False
        if isinstance(node, tuple):
            if depth >= limit:
                return False
            for arg in node[1:]:
                stack.append((arg, depth + 1))
    return True


# --------------------------------------------------------------------------
# safety (range restriction)
# --------------------------------------------------------------------------

def check_rule_safety(rule):
    """Left-to-right range restriction: every head variable, negated
    literal variable and comparison variable must be bound by an
    earlier positive relational literal (or IS/UNIFY definition)."""
    bound = set()
    for literal in rule.body:
        kind = literal[0]
        if kind == REL:
            _, _, args, positive = literal
            if positive:
                for var in pattern_vars(list_args(args)):
                    bound.add(var)
            else:
                for var in pattern_vars(list_args(args)):
                    if var not in bound:
                        raise SafetyError(
                            f"unsafe negation in {rule.indicator}: {var}"
                        )
        elif kind == CMP:
            _, _, left, right = literal
            for var in pattern_vars(left) + pattern_vars(right):
                if var not in bound:
                    raise SafetyError(
                        f"unsafe comparison in {rule.indicator}: {var}"
                    )
        elif kind == IS:
            _, target, expr = literal
            for var in pattern_vars(expr):
                if var not in bound:
                    raise SafetyError(
                        f"unsafe arithmetic in {rule.indicator}: {var}"
                    )
            for var in pattern_vars(target):
                bound.add(var)
        elif kind == UNIFY:
            _, left, right = literal
            left_vars = set(pattern_vars(left))
            right_vars = set(pattern_vars(right))
            if right_vars <= bound:
                bound |= left_vars
            elif left_vars <= bound:
                bound |= right_vars
            else:
                raise SafetyError(f"unsafe unification in {rule.indicator}")
    for var in pattern_vars(list_args(rule.head_args)):
        if var not in bound:
            raise SafetyError(
                f"rule for {rule.indicator} is not range-restricted: {var}"
            )
