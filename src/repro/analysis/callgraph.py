"""Call-graph extraction: one body walker for every consumer.

``body_calls`` is the single place that knows which constructs are
*control* (descend into their goal arguments), which are *goal meta*
(``findall/3`` runs its second argument), and which make a clause
statically opaque (a variable goal, ``call/N`` with construction).  It
works on parsed terms and on compiled clause skeletons alike —
:class:`~repro.engine.clause.SlotRef` subclasses ``Var``, so a slot in
goal position looks like exactly what it is: a call through a variable.

Consumers: the analysis registry builds the predicate call graph from
it, ``modules/table_all.py`` selects tabled predicates over it, and
``hilog/specialize.py`` shares :data:`CONTROL_NAMES` so its body
rewriter descends through the same constructs the analysis does.
"""

from __future__ import annotations

from ..terms import Atom, Struct, Var, deref
from .ir import NEGATION_NAMES

__all__ = [
    "CONTROL_CONSTRUCTS",
    "CONTROL_NAMES",
    "GOAL_META",
    "body_calls",
    "build_call_graph",
]

#: Control constructs dispatched by the machine's solve loop: the walk
#: descends into every argument instead of recording a call edge.
CONTROL_CONSTRUCTS = {
    (",", 2),
    (";", 2),
    ("->", 2),
    ("\\+", 1),
    ("not", 1),
    ("tnot", 1),
    ("e_tnot", 1),
    ("once", 1),
    ("ignore", 1),
    ("call", 1),
}

#: All-solutions builtins whose *goal* argument positions the walk
#: descends into (other arguments are templates/results, not calls).
GOAL_META = {
    ("findall", 3): (1,),
    ("tfindall", 3): (1,),
    ("bagof", 3): (1,),
    ("setof", 3): (1,),
    ("forall", 2): (0, 1),
}

#: The construct *names* above — the set body rewriters descend through
#: (arity checks matter for call-graph precision, not for rewriting).
CONTROL_NAMES = frozenset(
    {name for name, _ in CONTROL_CONSTRUCTS}
    | {name for name, _ in GOAL_META}
)


def body_calls(goal, out, negative=False):
    """Collect called predicate indicators from one body goal.

    Appends ``((name, arity), negative)`` pairs to ``out`` and returns
    True when the goal was fully analyzable — False when it contains a
    call the static walk cannot resolve (a variable in goal position,
    or ``call/N`` with N >= 2, whose target predicate is constructed at
    run time).  Negation operators flip the polarity flag for the goals
    they wrap; ``forall/2`` is negative on both arguments (it is
    ``\\+ (Cond, \\+ Action)`` by definition).
    """
    goal = deref(goal)
    if isinstance(goal, Struct):
        name = goal.name
        arity = len(goal.args)
        key = (name, arity)
        if key in CONTROL_CONSTRUCTS:
            flip = negative or name in NEGATION_NAMES
            transparent = True
            for arg in goal.args:
                if not body_calls(arg, out, flip):
                    transparent = False
            return transparent
        positions = GOAL_META.get(key)
        if positions is not None:
            flip = negative or name == "forall"
            transparent = True
            for position in positions:
                if not body_calls(goal.args[position], out, flip):
                    transparent = False
            return transparent
        out.append((key, negative))
        if name == "call" and arity >= 2:
            # call(F, A...) constructs its target at run time; record
            # the call/N edge (there may be a user definition) but flag
            # the clause opaque so downstream reachability stays
            # conservative.
            return False
        return True
    if isinstance(goal, Atom):
        out.append(((goal.name, 0), negative))
        return True
    if isinstance(goal, Var):
        return False
    return True  # numbers etc.: a type error at run time, not a call


def build_call_graph(clauses):
    """Edges head-indicator -> called-indicator over a clause batch.

    ``clauses`` are parsed clause terms (``Head`` or ``Head :- Body``);
    this is the consult-unit-level view ``table_all`` selects over.
    """
    edges = {}
    for clause in clauses:
        clause = deref(clause)
        if (
            isinstance(clause, Struct)
            and clause.name == ":-"
            and len(clause.args) == 2
        ):
            head = deref(clause.args[0])
            body = clause.args[1]
        else:
            head = clause
            body = None
        if isinstance(head, Struct):
            head_key = (head.name, len(head.args))
        elif isinstance(head, Atom):
            head_key = (head.name, 0)
        else:
            continue
        callees = edges.setdefault(head_key, set())
        if body is not None:
            found = []
            body_calls(body, found)
            callees.update(key for key, _negative in found)
    return edges
