"""Graph algorithms shared by every analysis stage.

This is the *only* place in the tree that implements Tarjan's SCC
algorithm, dependency-graph condensation and stratification
(``tools/check_no_duplicate_analysis.py`` enforces that in CI).  The
functions are deliberately engine-agnostic: nodes are opaque hashable
keys (predicate indicators in practice), graphs plain dicts of sets.
"""

from __future__ import annotations

from ..errors import SafetyError

__all__ = [
    "tarjan_sccs",
    "scc_index",
    "scc_reach",
    "dependency_edges",
    "stratify",
    "negative_sccs",
]


def tarjan_sccs(graph):
    """Tarjan's strongly connected components, iteratively.

    ``graph`` maps node -> iterable of successors; successors that are
    not themselves keys of ``graph`` are ignored (a callee with no
    definition cannot be part of a cycle).  Children are visited in
    sorted order so the SCC list is deterministic, and components are
    emitted in reverse topological order of the condensation — every
    SCC appears after all SCCs it can reach.
    """
    index_counter = [0]
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in graph:
                    continue
                if child not in index:
                    index[child] = lowlink[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def scc_index(sccs):
    """Map each node to the index of its SCC in ``sccs``."""
    of = {}
    for i, scc in enumerate(sccs):
        for node in scc:
            of[node] = i
    return of


def scc_reach(graph, sccs, scc_of):
    """Per-SCC reachability over the condensation.

    Returns a list aligned with ``sccs``: the frozenset of SCC indexes
    reachable from each component (including itself).  Relies on
    Tarjan's reverse-topological emission order — by the time an SCC is
    processed, every component it points into is already done.
    """
    reach = []
    for i, scc in enumerate(sccs):
        out = {i}
        for node in scc:
            for child in graph.get(node, ()):
                j = scc_of.get(child)
                if j is not None and j != i:
                    out.update(reach[j])
        reach.append(frozenset(out))
    return reach


def dependency_edges(rules, idb):
    """Edges head -> (callee, negative?) over the ``idb`` predicates.

    ``rules`` is an iterable of IR :class:`~repro.analysis.ir.Rule`
    objects; only REL body literals whose indicator is in ``idb``
    contribute edges (facts and builtins cannot be part of a negative
    cycle).
    """
    edges = {}
    for rule in rules:
        key = (rule.head_pred, len(rule.head_args))
        deps = edges.setdefault(key, set())
        for literal in rule.body:
            if literal[0] != "rel":
                continue
            _, pred, args, positive = literal
            callee = (pred, len(args))
            if callee in idb:
                deps.add((callee, not positive))
    return edges


def stratify(edges):
    """Assign strata; raises SafetyError when not stratified.

    ``edges`` maps pred_key -> set of ``(callee, negative?)`` pairs.
    Returns {pred_key: stratum}; a predicate's stratum is strictly
    above any predicate it depends on negatively.
    """
    keys = set(edges)
    for deps in edges.values():
        keys.update(callee for callee, _ in deps)
    strata = {key: 0 for key in keys}
    changed = True
    rounds = 0
    limit = len(keys) * len(keys) + len(keys) + 1
    while changed:
        changed = False
        rounds += 1
        if rounds > limit:
            raise SafetyError("program is not stratified")
        for key, deps in edges.items():
            for callee, negative in deps:
                needed = strata[callee] + (1 if negative else 0)
                if strata[key] < needed:
                    strata[key] = needed
                    changed = True
    return strata


def negative_sccs(edges, scc_of):
    """SCC indexes containing an internal negative edge.

    A program is stratifiable exactly when this is empty: a negative
    edge inside a strongly connected component is a loop through
    negation, and one outside never is.
    """
    offending = set()
    for key, deps in edges.items():
        own = scc_of.get(key)
        if own is None:
            continue
        for callee, negative in deps:
            if negative and scc_of.get(callee) == own:
                offending.add(own)
                break
    return offending
