"""Program analysis: one IR, one pipeline, every consumer.

This package is the single home of program structure analysis — the
shared rule IR (:mod:`.ir`), the graph algorithms (:mod:`.graph`), the
call-graph walker (:mod:`.callgraph`), the adornment vocabulary
(:mod:`.adorn`) and the generation-stamped :class:`AnalysisRegistry`
(:mod:`.registry`) that every clause database carries.  The SLG
machine, the hybrid bridge, the bottom-up translator, ``table_all``,
the HiLog specializer and the WFS router all consume these analyses
instead of re-deriving their own; ``tools/check_no_duplicate_analysis.py``
keeps it that way.
"""

from .ir import (  # noqa: F401
    CMP,
    COMPARISON_OPS,
    IS,
    NEGATION_NAMES,
    REL,
    UNIFY,
    LoweringError,
    Rule,
    Var,
    check_rule_safety,
    ground_head_row,
    ground_within_depth,
    is_fact_clause,
    list_args,
    lower_predicate,
    pattern_vars,
    skeleton_literal,
    skeleton_pattern,
    term_literal,
    term_pattern,
)
from .graph import (  # noqa: F401
    dependency_edges,
    negative_sccs,
    scc_index,
    scc_reach,
    stratify,
    tarjan_sccs,
)
from .callgraph import (  # noqa: F401
    CONTROL_CONSTRUCTS,
    CONTROL_NAMES,
    GOAL_META,
    body_calls,
    build_call_graph,
)
from .adorn import adorned_name, adornment_of, magic_name  # noqa: F401
from .registry import AnalysisRegistry, EXCLUDED_CONTROL  # noqa: F401

__all__ = [
    "REL",
    "CMP",
    "IS",
    "UNIFY",
    "COMPARISON_OPS",
    "NEGATION_NAMES",
    "Var",
    "Rule",
    "LoweringError",
    "pattern_vars",
    "list_args",
    "term_pattern",
    "term_literal",
    "skeleton_pattern",
    "skeleton_literal",
    "is_fact_clause",
    "lower_predicate",
    "ground_head_row",
    "ground_within_depth",
    "check_rule_safety",
    "tarjan_sccs",
    "scc_index",
    "scc_reach",
    "dependency_edges",
    "stratify",
    "negative_sccs",
    "CONTROL_CONSTRUCTS",
    "CONTROL_NAMES",
    "GOAL_META",
    "body_calls",
    "build_call_graph",
    "adornment_of",
    "adorned_name",
    "magic_name",
    "AnalysisRegistry",
    "EXCLUDED_CONTROL",
]
