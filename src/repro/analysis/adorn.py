"""Adornment naming: the binding-pattern vocabulary of the analyses.

An *adornment* summarizes which argument positions of a call are bound
('b') and which free ('f') — the paper's §2 sideways-information-
passing annotation.  The magic rewrite (:mod:`repro.bottomup.magic`)
specializes predicates per adornment and the analysis registry reports
per-predicate binding/mode summaries in the same vocabulary, so the
string conventions live here, shared by both.
"""

from __future__ import annotations

__all__ = ["adornment_of", "adorned_name", "magic_name"]


def adornment_of(args):
    """'b'/'f' string for a query argument list (None marks free)."""
    return "".join("f" if a is None else "b" for a in args)


def adorned_name(pred, adornment):
    return f"{pred}__{adornment}"


def magic_name(pred, adornment):
    return f"m_{pred}__{adornment}"
