"""The query service's line protocol: JSON objects, one per line.

A request is either a JSON object (``{"op": "query", "goal":
"path(1, X)"}``) or a bare goal line, which is shorthand for the
``query`` op.  A response is always one JSON object terminated by a
newline, with ``"ok"`` telling the two shapes apart:

``{"ok": true, ...}``
    Success; the payload depends on the op (``answers`` for queries,
    ``snapshot`` for metrics, ...).
``{"ok": false, "error": "<class>", "message": "..."}``
    Failure — a parse/evaluation error, an unknown op, or admission
    control turning the request away (``"error": "overloaded"``).

Ops:

``query``  ``goal`` (text), optional ``limit`` — solutions as a list
    of ``{var: value}`` dicts.
``update``  ``goal`` — run a goal that may mutate the shared database
    (assert/retract builtins) under the KB write lock.
``assert``  ``clause`` — assert one clause given as source text.
``consult``  ``text`` — consult program text.
``local``  ``name``, ``arity`` — declare a session-local dynamic
    predicate (this session stops sharing tables; see
    :meth:`repro.engine.session.Session.local_dynamic`).
``statistics`` — the session's merged statistics dict.
``metrics`` — the service-wide metrics snapshot (every session's
    registry merged exactly; see :func:`repro.obs.metrics.merge_snapshots`).
``sessions`` — live sessions with per-session query counts.
``ping`` / ``close`` — liveness and connection teardown.

Values in answers are JSON-rendered: atoms/numbers/lists natively,
anything structured through the writer (``term_to_str``), so every
response line is valid JSON whatever the program returns.
"""

from __future__ import annotations

import json

__all__ = ["decode_request", "encode_response", "jsonable", "error_response"]


def decode_request(line):
    """One request dict from one wire line (bare goal -> query op)."""
    text = line.strip()
    if not text:
        return None
    if text.startswith("{"):
        request = json.loads(text)
        if not isinstance(request, dict) or "op" not in request:
            raise ValueError("request object needs an 'op' field")
        return request
    return {"op": "query", "goal": text}


def encode_response(response):
    """One wire line (newline-terminated JSON) from a response dict."""
    return json.dumps(response, sort_keys=True, default=str) + "\n"


def error_response(kind, message):
    return {"ok": False, "error": kind, "message": str(message)}


def jsonable(value, operators=None):
    """Render one answer value for the wire: JSON natives pass
    through, lists recurse, terms go through the writer."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [jsonable(v, operators) for v in value]
    from ..lang.writer import term_to_str

    try:
        return term_to_str(value, operators)
    except Exception:
        return repr(value)
