"""The threaded TCP front door: one acceptor, one reader thread per
connection, all evaluation on the service's worker pool.

A connection maps 1:1 to a session: the handler opens one on accept,
reads newline-delimited requests, hands each to
:meth:`~repro.server.service.QueryService.handle` (which blocks the
*reader* thread, never a pool worker, while the request runs), and
writes one response line back.  ``close`` — or EOF — tears the session
down.  Graceful shutdown closes the listener first, then lets the
in-flight connections finish their current request.
"""

from __future__ import annotations

import socket
import threading

from .protocol import decode_request, encode_response, error_response
from .service import QueryService

__all__ = ["TCPQueryServer", "serve_tcp"]


class TCPQueryServer:
    """A line-protocol TCP server over one :class:`QueryService`."""

    def __init__(self, engine, host="127.0.0.1", port=0, service=None,
                 **service_options):
        self.service = (
            service if service is not None
            else QueryService(engine, **service_options)
        )
        self._listener = socket.create_server((host, port))
        self.address = self._listener.getsockname()
        self._threads = []
        self._accepting = threading.Event()
        self._acceptor = None

    @property
    def port(self):
        return self.address[1]

    # -- serving ------------------------------------------------------------

    def start(self):
        """Accept connections on a background thread; returns self."""
        self._accepting.set()
        self._acceptor = threading.Thread(
            target=self._accept_loop, name="repro-accept", daemon=True
        )
        self._acceptor.start()
        return self

    def _accept_loop(self):
        while self._accepting.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                break  # listener closed: shutdown
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn):
        sid = None
        try:
            sid = self.service.open_session()
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            hello = {"ok": True, "hello": "repro", "sid": sid}
            writer.write(encode_response(hello))
            writer.flush()
            for line in reader:
                request = None
                try:
                    request = decode_request(line)
                except ValueError as exc:
                    response = error_response("bad_request", exc)
                else:
                    if request is None:
                        continue
                    response = self.service.handle(sid, request)
                writer.write(encode_response(response))
                writer.flush()
                if request is not None and request.get("op") == "close":
                    break
        except (RuntimeError, OSError):
            pass  # service closed or client went away mid-write
        finally:
            if sid is not None:
                self.service.close_session(sid)
            try:
                conn.close()
            except OSError:
                pass

    # -- shutdown -----------------------------------------------------------

    def close(self):
        """Stop accepting, drain in-flight requests, close the service."""
        self._accepting.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        if self._acceptor is not None:
            self._acceptor.join(timeout=5)
        self.service.close(wait=True)
        for thread in self._threads:
            thread.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def serve_tcp(engine, host="127.0.0.1", port=0, **service_options):
    """Start a :class:`TCPQueryServer` and return it (already
    accepting); ``server.port`` is the bound port when ``port=0``."""
    return TCPQueryServer(engine, host=host, port=port,
                          **service_options).start()
