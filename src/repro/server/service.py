"""The concurrent query service: many sessions, one shared knowledge
base, a bounded thread pool.

This is the deployment shape the SharedKB/Session split exists for —
XSB's "deductive database engine" framing means many clients querying
one program, not one REPL.  The service:

* turns the engine's knowledge base concurrent
  (:meth:`~repro.engine.kb.SharedKB.enable_concurrency`) exactly once,
* opens one :class:`~repro.engine.session.Session` per client (a
  sibling of the seed engine — same flags, own metrics registry, own
  trail and SLG state),
* runs every request on a fixed :class:`~concurrent.futures.
  ThreadPoolExecutor` (``REPRO_SERVER_WORKERS`` or a CPU-derived
  default; ``1`` is the serial-equivalence configuration the CI leg
  pins),
* applies **admission control** before anything touches the pool: a
  bounded count of in-flight requests service-wide (``max_pending``)
  and a per-session cap (``session_cap``); past either bound a request
  is rejected immediately with an ``"overloaded"`` error rather than
  queued without bound, and
* shuts down **gracefully**: ``close()`` stops admitting, drains the
  requests already accepted, then releases the pool.

Threading contract: one request runs on one worker thread from start
to finish (a query is drained eagerly inside :meth:`execute`), so the
KB's reentrant eval/write locks always see a consistent owning thread.
A session itself is single-threaded — its trail and machine state are
not shareable — which the per-session lock enforces even if a client
pipelines requests.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

from ..errors import ReproError
from .protocol import error_response, jsonable

__all__ = ["QueryService", "default_workers"]

DEFAULT_QUERY_LIMIT = 10000


def default_workers():
    """``REPRO_SERVER_WORKERS`` if set, else min(8, cpu count)."""
    raw = os.environ.get("REPRO_SERVER_WORKERS")
    if raw:
        workers = int(raw)
        if workers < 1:
            raise ValueError("REPRO_SERVER_WORKERS must be >= 1")
        return workers
    return min(8, os.cpu_count() or 1)


class _ClientSession:
    """One client's slot: the session plus its admission bookkeeping."""

    __slots__ = ("session", "lock", "pending")

    def __init__(self, session):
        self.session = session
        # Serializes the session: its trail/machine state is
        # single-threaded even though the KB underneath is shared.
        self.lock = threading.Lock()
        self.pending = 0


class QueryService:
    """The shared-KB query service.

    ``engine`` is the seed session whose knowledge base all clients
    share — typically an :class:`~repro.engine.Engine` that consulted
    the program before the service starts.  Client sessions are
    spawned from it (:meth:`~repro.engine.session.Session.session`),
    so they inherit its flags; each gets its own metrics registry,
    which :meth:`metrics_snapshot` merges exactly.
    """

    def __init__(self, engine, workers=None, max_pending=None,
                 session_cap=4, query_limit=DEFAULT_QUERY_LIMIT):
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError("workers must be >= 1")
        engine.kb.enable_concurrency()
        self.engine = engine
        self.workers = workers
        self.max_pending = max_pending if max_pending is not None else workers * 8
        self.session_cap = session_cap
        self.query_limit = query_limit
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-query"
        )
        self._lock = threading.Lock()
        self._clients = {}
        self._pending = 0
        self._closed = False
        self._idle = threading.Condition(self._lock)

    # -- session lifecycle --------------------------------------------------

    def open_session(self, **overrides):
        """Open a client session; returns its sid."""
        with self._lock:
            if self._closed:
                raise RuntimeError("query service is closed")
        overrides.setdefault("metrics", True)
        session = self.engine.session(**overrides)
        with self._lock:
            self._clients[session.sid] = _ClientSession(session)
        return session.sid

    def close_session(self, sid):
        with self._lock:
            self._clients.pop(sid, None)

    def session(self, sid):
        client = self._clients.get(sid)
        if client is None:
            raise KeyError(f"no such session: {sid}")
        return client.session

    # -- admission + dispatch -----------------------------------------------

    def _admit(self, sid):
        """Reserve one in-flight slot, or explain why not."""
        with self._lock:
            if self._closed:
                return "closed", "query service is shutting down"
            client = self._clients.get(sid)
            if client is None:
                return "no_session", f"no such session: {sid}"
            if self._pending >= self.max_pending:
                return "overloaded", (
                    f"service at capacity ({self.max_pending} in flight)"
                )
            if client.pending >= self.session_cap:
                return "overloaded", (
                    f"session {sid} at capacity ({self.session_cap} in flight)"
                )
            self._pending += 1
            client.pending += 1
        return None

    def _release(self, sid):
        with self._lock:
            self._pending -= 1
            client = self._clients.get(sid)
            if client is not None:
                client.pending -= 1
            if self._pending == 0:
                self._idle.notify_all()

    def submit(self, sid, request):
        """Admit and schedule one request; returns a Future resolving
        to the response dict.  Rejections resolve immediately."""
        rejected = self._admit(sid)
        if rejected is not None:
            future = _done_future(error_response(*rejected))
            return future
        try:
            return self.executor.submit(self._run, sid, request)
        except RuntimeError:  # executor already shut down
            self._release(sid)
            return _done_future(
                error_response("closed", "query service is shutting down")
            )

    def _run(self, sid, request):
        try:
            return self.execute(sid, request)
        finally:
            self._release(sid)

    def handle(self, sid, request):
        """Admit, run, and wait — the synchronous client surface."""
        return self.submit(sid, request).result()

    # -- the ops ------------------------------------------------------------

    def execute(self, sid, request):
        """Run one already-admitted request on the calling thread."""
        client = self._clients.get(sid)
        if client is None:
            return error_response("no_session", f"no such session: {sid}")
        op = request.get("op", "query")
        handler = _OPS.get(op)
        if handler is None:
            return error_response("unknown_op", f"unknown op: {op}")
        with client.lock:
            try:
                return handler(self, client.session, request)
            except KeyError as exc:
                return error_response(
                    "bad_request", f"op '{op}' requires field {exc}"
                )
            except ReproError as exc:
                return error_response("repro_error", exc)
            except Exception as exc:  # protocol boundary: never crash a worker
                return error_response(type(exc).__name__, exc)

    def _op_query(self, session, request):
        goal = request["goal"]
        limit = request.get("limit", self.query_limit)
        operators = session.operators
        solutions = session.query(goal, limit=limit)
        answers = [
            {var: jsonable(value, operators) for var, value in solution.items()}
            for solution in solutions
        ]
        return {"ok": True, "answers": answers, "count": len(answers)}

    def _op_update(self, session, request):
        ok = session.run_update(request["goal"])
        return {"ok": True, "applied": bool(ok)}

    def _op_assert(self, session, request):
        session.assertz(request["clause"])
        return {"ok": True}

    def _op_consult(self, session, request):
        session.consult_string(request["text"])
        return {"ok": True}

    def _op_local(self, session, request):
        session.local_dynamic(request["name"], int(request["arity"]))
        return {"ok": True, "shared_tables": session.tables_shared}

    def _op_statistics(self, session, request):
        return {"ok": True, "statistics": session.statistics()}

    def _op_metrics(self, session, request):
        return {"ok": True, "snapshot": self.metrics_snapshot()}

    def _op_sessions(self, session, request):
        return {"ok": True, "sessions": self.sessions()}

    def _op_ping(self, session, request):
        return {"ok": True, "pong": True}

    def _op_close(self, session, request):
        self.close_session(session.sid)
        return {"ok": True, "closed": session.sid}

    # -- aggregation --------------------------------------------------------

    def sessions(self):
        """Live sessions over the whole KB (service clients and the
        seed engine alike), with per-session query counts."""
        out = []
        for session in self.engine.kb.sessions():
            out.append({
                "sid": session.sid,
                "queries": session.queries,
                "shared_tables": session.tables_shared,
            })
        return out

    def metrics_snapshot(self):
        """Every live session's registry merged exactly (counters add,
        histogram buckets add) — see :func:`repro.obs.metrics.
        merge_snapshots`; the associativity of that merge is what makes
        the aggregate independent of session iteration order."""
        from ..obs.metrics import merge_snapshots

        merged = {}
        for session in self.engine.kb.sessions():
            snap = session.metrics_snapshot()
            if snap:
                merged = merge_snapshots(merged, snap) if merged else snap
        return merged

    # -- shutdown -----------------------------------------------------------

    def drain(self, timeout=None):
        """Block until no requests are in flight."""
        with self._idle:
            return self._idle.wait_for(lambda: self._pending == 0, timeout)

    def close(self, wait=True):
        """Graceful shutdown: stop admitting, drain accepted work,
        release the pool.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if wait:
            self.drain()
        self.executor.shutdown(wait=wait)
        with self._lock:
            self._clients.clear()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    def __repr__(self):
        state = "closed" if self._closed else "open"
        return (
            f"<QueryService {state} {len(self._clients)} sessions, "
            f"{self.workers} workers, {self._pending} in flight>"
        )


_OPS = {
    "query": QueryService._op_query,
    "update": QueryService._op_update,
    "assert": QueryService._op_assert,
    "consult": QueryService._op_consult,
    "local": QueryService._op_local,
    "statistics": QueryService._op_statistics,
    "metrics": QueryService._op_metrics,
    "sessions": QueryService._op_sessions,
    "ping": QueryService._op_ping,
    "close": QueryService._op_close,
}


def _done_future(value):
    from concurrent.futures import Future

    future = Future()
    future.set_result(value)
    return future
