"""The asyncio front door: the same line protocol, served from an
event loop, with evaluation still on the service's thread pool.

SLG resolution is synchronous Python, so the event loop must never run
it inline; instead every decoded request goes through
:meth:`QueryService.submit` (admission control included) and the
resulting :class:`concurrent.futures.Future` is awaited via
:func:`asyncio.wrap_future`.  The loop therefore multiplexes thousands
of idle connections while at most ``workers`` queries evaluate — the
standard shape for a blocking core behind an async edge.
"""

from __future__ import annotations

import asyncio

from .protocol import decode_request, encode_response, error_response
from .service import QueryService

__all__ = ["AsyncQueryServer", "serve_async"]


class AsyncQueryServer:
    """An asyncio server over one :class:`QueryService`."""

    def __init__(self, engine, host="127.0.0.1", port=0, service=None,
                 **service_options):
        self.service = (
            service if service is not None
            else QueryService(engine, **service_options)
        )
        self.host = host
        self.port = port
        self._server = None

    async def start(self):
        """Bind and start serving; returns self (``self.port`` is the
        bound port when constructed with ``port=0``)."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def _serve_connection(self, reader, writer):
        sid = None
        try:
            sid = self.service.open_session()
            writer.write(
                encode_response(
                    {"ok": True, "hello": "repro", "sid": sid}
                ).encode("utf-8")
            )
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_request(line.decode("utf-8"))
                except ValueError as exc:
                    response = error_response("bad_request", exc)
                    request = None
                else:
                    if request is None:
                        continue
                    future = self.service.submit(sid, request)
                    response = await asyncio.wrap_future(future)
                writer.write(encode_response(response).encode("utf-8"))
                await writer.drain()
                if request is not None and request.get("op") == "close":
                    break
        except (RuntimeError, ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            if sid is not None:
                self.service.close_session(sid)
            try:
                writer.close()
            except Exception:
                pass

    async def close(self):
        """Stop accepting, then drain and close the service (off-loop,
        since the drain blocks)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.close
        )

    async def __aenter__(self):
        return self

    async def __aexit__(self, *exc):
        await self.close()


async def serve_async(engine, host="127.0.0.1", port=0, **service_options):
    """Start an :class:`AsyncQueryServer`; ``await server.close()`` to
    stop it."""
    server = AsyncQueryServer(engine, host=host, port=port,
                              **service_options)
    return await server.start()
