"""The concurrent query service over one shared knowledge base.

Layers (each importable on its own):

:mod:`repro.server.service`
    :class:`QueryService` — sessions, the worker pool, admission
    control, graceful shutdown.  Embeddable: no sockets.
:mod:`repro.server.protocol`
    The JSON-lines wire format shared by both front doors.
:mod:`repro.server.tcp`
    Threaded TCP front door (:func:`serve_tcp`).
:mod:`repro.server.aio`
    asyncio front door (:func:`serve_async`) — the event loop
    multiplexes connections, the pool evaluates.

Quickstart::

    from repro import Engine
    from repro.server import serve_tcp

    engine = Engine()
    engine.consult_string(":- table path/2. ...")
    server = serve_tcp(engine, port=7171)
    ...
    server.close()
"""

from .protocol import decode_request, encode_response, jsonable
from .service import QueryService, default_workers
from .tcp import TCPQueryServer, serve_tcp
from .aio import AsyncQueryServer, serve_async

__all__ = [
    "AsyncQueryServer",
    "QueryService",
    "TCPQueryServer",
    "decode_request",
    "default_workers",
    "encode_response",
    "jsonable",
    "serve_async",
    "serve_tcp",
]
