"""Term inspection: canonical (variant) keys, ordering, groundness.

The subgoal table and the answer tables of the SLG engine are keyed by
*variant* equivalence — two terms are variants when they are equal up
to a consistent renaming of variables.  ``canonical_key`` produces a
hashable tree with variables replaced by first-occurrence indices, so
variant checking is a dict lookup, which is XSB's "index on call
patterns" (section 4.5 of the paper).
"""

from __future__ import annotations

from .term import Atom, Struct, Var
from .unify import deref

__all__ = [
    "canonical_key",
    "is_variant",
    "is_ground",
    "resolve",
    "term_variables",
    "compare_terms",
    "subsumes",
]

# Tags used inside canonical keys.  Plain tuples keep hashing fast.
_VAR = 0
_ATOM = 1
_NUM = 2
_STRUCT = 3


def canonical_key(term):
    """Return a hashable key identifying ``term`` up to variable renaming."""
    varmap = {}
    return _canon(term, varmap)


def _canon(term, varmap):
    term = deref(term)
    if isinstance(term, Var):
        index = varmap.get(id(term))
        if index is None:
            index = len(varmap)
            varmap[id(term)] = index
        return (_VAR, index)
    if isinstance(term, Atom):
        return (_ATOM, term.name)
    if isinstance(term, Struct):
        return (_STRUCT, term.name, tuple(_canon(a, varmap) for a in term.args))
    return (_NUM, type(term).__name__, term)


def is_variant(left, right):
    """True when the two terms are equal up to variable renaming."""
    return canonical_key(left) == canonical_key(right)


def is_ground(term):
    """True when ``term`` contains no unbound variables."""
    stack = [term]
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            return False
        if isinstance(t, Struct):
            stack.extend(t.args)
    return True


def resolve(term):
    """Return a copy of ``term`` with all bound variables substituted.

    Unbound variables are shared between input and output, so the result
    is safe to keep across backtracking only when it is ground; callers
    that store answers use :func:`repro.terms.rename.copy_term` instead.
    """
    term = deref(term)
    if isinstance(term, Struct):
        args = tuple(resolve(a) for a in term.args)
        if all(x is y for x, y in zip(args, term.args)):
            return term
        return Struct(term.name, args)
    return term


def term_variables(term):
    """Return the distinct unbound variables of ``term`` in first-occurrence
    order (the order Prolog's ``term_variables/2`` specifies)."""
    seen = set()
    out = []
    stack = [term]
    # Depth-first, left-to-right; the stack is popped from the end so we
    # push argument lists reversed.
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            if id(t) not in seen:
                seen.add(id(t))
                out.append(t)
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))
    return out


def _order_class(term):
    """Standard order of terms: Var < Number < Atom < Struct."""
    if isinstance(term, Var):
        return 0
    if isinstance(term, (int, float)):
        return 1
    if isinstance(term, Atom):
        return 2
    if isinstance(term, Struct):
        return 3
    return 4


def compare_terms(left, right):
    """Three-way comparison in the standard order of terms."""
    left = deref(left)
    right = deref(right)
    lc, rc = _order_class(left), _order_class(right)
    if lc != rc:
        return -1 if lc < rc else 1
    if lc == 0:
        li, ri = id(left), id(right)
        return 0 if li == ri else (-1 if li < ri else 1)
    if lc == 1:
        return 0 if left == right else (-1 if left < right else 1)
    if lc == 2:
        if left.name == right.name:
            return 0
        return -1 if left.name < right.name else 1
    if lc == 3:
        if len(left.args) != len(right.args):
            return -1 if len(left.args) < len(right.args) else 1
        if left.name != right.name:
            return -1 if left.name < right.name else 1
        for la, ra in zip(left.args, right.args):
            c = compare_terms(la, ra)
            if c:
                return c
        return 0
    ls, rs = repr(left), repr(right)
    return 0 if ls == rs else (-1 if ls < rs else 1)


def subsumes(general, specific):
    """True when ``general`` subsumes ``specific`` (one-way matching).

    Neither term is modified.  Used by the safety analyser and tests;
    the engine proper uses variant checking.
    """
    bindings = {}
    stack = [(general, specific)]
    while stack:
        g, s = stack.pop()
        g = deref(g)
        s = deref(s)
        if isinstance(g, Var):
            bound = bindings.get(id(g))
            if bound is None:
                bindings[id(g)] = s
            elif compare_terms(bound, s) != 0 or not _same_shape(bound, s):
                return False
            continue
        if isinstance(s, Var):
            return False
        if isinstance(g, Struct):
            if (
                not isinstance(s, Struct)
                or g.name != s.name
                or len(g.args) != len(s.args)
            ):
                return False
            stack.extend(zip(g.args, s.args))
        elif isinstance(g, Atom):
            if not (isinstance(s, Atom) and g.name == s.name):
                return False
        else:
            if type(g) is not type(s) or g != s:
                return False
    return True


def _same_shape(left, right):
    """Structural identity including variable identity (no renaming)."""
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = deref(a)
        b = deref(b)
        if a is b:
            continue
        if isinstance(a, Var) or isinstance(b, Var):
            return False
        if isinstance(a, Struct):
            if (
                not isinstance(b, Struct)
                or a.name != b.name
                or len(a.args) != len(b.args)
            ):
                return False
            stack.extend(zip(a.args, b.args))
        elif isinstance(a, Atom):
            if not (isinstance(b, Atom) and a.name == b.name):
                return False
        else:
            if type(a) is not type(b) or a != b:
                return False
    return True
