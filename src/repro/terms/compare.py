"""Term inspection: canonical (variant) keys, ordering, groundness.

The subgoal table and the answer tables of the SLG engine are keyed by
*variant* equivalence — two terms are variants when they are equal up
to a consistent renaming of variables.  ``canonical_key`` produces a
hashable *flat* preorder token string (a tuple of scalars) with
variables replaced by first-occurrence indices, so variant checking is
a dict lookup, which is XSB's "index on call patterns" (section 4.5 of
the paper).

The key is flat on purpose: a nested-tuple key mirrors the term's
shape, and CPython hashes and compares nested tuples recursively *in
C*, so a 10k-deep term's key would raise ``RecursionError`` from
``hash()`` even though every Python-level kernel here is iterative.
Flat tuples hash and compare element-wise.  Since every struct token
carries its arity, the preorder string determines the tree uniquely
(``instantiate_key`` parses it back).
"""

from __future__ import annotations

from .term import Atom, Struct, Var
from .unify import deref

__all__ = [
    "canonical_key",
    "canonical_key_ground",
    "flat_ground_answer",
    "is_variant",
    "is_ground",
    "resolve",
    "term_variables",
    "compare_terms",
    "subsumes",
]

# Token tags of the flat canonical-key string.  Each tag is followed by
# a fixed number of operands, so the string parses deterministically:
# _VAR index | _ATOM name | _NUM typename value | _STRUCT name arity.
_VAR = 0
_ATOM = 1
_NUM = 2
_STRUCT = 3


def canonical_key(term):
    """Return a hashable key identifying ``term`` up to variable renaming."""
    return canonical_key_ground(term)[0]


def canonical_key_ground(term):
    """Return ``(key, is_ground)`` in a single traversal.

    The groundness bit falls out of the variable-numbering map for free
    (the term is ground iff no variable was numbered); the tabling layer
    uses it to skip ``copy_term`` for ground answers.

    One preorder pass, one flat output tuple: no per-node allocation,
    and no recursion anywhere — not even inside ``hash()``/``==`` on
    the result, which nested keys would hit in C on deep terms.
    """
    varmap = {}
    out = []
    append = out.append
    stack = [term]
    pop = stack.pop
    while stack:
        t = pop()
        while isinstance(t, Var):
            ref = t.ref
            if ref is None:
                break
            t = ref
        if isinstance(t, Struct):
            append(_STRUCT)
            append(t.name)
            args = t.args
            append(len(args))
            stack.extend(reversed(args))
        elif isinstance(t, Atom):
            append(_ATOM)
            append(t.name)
        elif isinstance(t, Var):
            index = varmap.get(id(t))
            if index is None:
                index = len(varmap)
                varmap[id(t)] = index
            append(_VAR)
            append(index)
        else:
            append(_NUM)
            append(type(t).__name__)
            append(t)
    return tuple(out), not varmap


def flat_ground_answer(term):
    """Single-pass fast path for the dominant answer shape: a struct
    whose arguments all dereference to scalars.

    Returns ``(key, struct, values, changed)`` — the canonical key, the
    dereferenced struct, its dereferenced argument values, and whether
    any argument was a bound variable (i.e. whether the caller must
    allocate a substituted struct to store).  Returns ``None`` when the
    term is not a struct or has an unbound or compound argument, in
    which case the caller falls back to the general kernels.

    The point is that the tabling layer's answer insert otherwise walks
    the term twice (duplicate-check key, then resolve-for-storage);
    for flat ground answers one loop produces both, and nothing is
    allocated at all for a duplicate.
    """
    t = term
    while isinstance(t, Var):
        ref = t.ref
        if ref is None:
            return None
        t = ref
    if not isinstance(t, Struct):
        return None
    args = t.args
    out = [_STRUCT, t.name, len(args)]
    append = out.append
    values = []
    changed = False
    for child in args:
        v = child
        while isinstance(v, Var):
            ref = v.ref
            if ref is None:
                return None
            v = ref
        if isinstance(v, Struct):
            return None
        if isinstance(v, Atom):
            append(_ATOM)
            append(v.name)
        else:
            append(_NUM)
            append(type(v).__name__)
            append(v)
        if v is not child:
            changed = True
        values.append(v)
    return tuple(out), t, values, changed


def is_variant(left, right):
    """True when the two terms are equal up to variable renaming.

    Walks both terms simultaneously maintaining a variable bijection —
    cheaper than building two canonical keys and comparing them.
    """
    lmap = {}
    rmap = {}
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = deref(a)
        b = deref(b)
        if isinstance(a, Var):
            if not isinstance(b, Var):
                return False
            la = lmap.get(id(a))
            rb = rmap.get(id(b))
            if la is None and rb is None:
                index = len(lmap)
                lmap[id(a)] = index
                rmap[id(b)] = index
            elif la is None or la != rb:
                return False
            continue
        if isinstance(b, Var):
            return False
        if isinstance(a, Struct):
            if (
                not isinstance(b, Struct)
                or a.name != b.name
                or len(a.args) != len(b.args)
            ):
                return False
            stack.extend(zip(a.args, b.args))
        elif isinstance(a, Atom):
            if not (isinstance(b, Atom) and a.name == b.name):
                return False
        else:
            if type(a) is not type(b) or a != b:
                return False
    return True


def is_ground(term):
    """True when ``term`` contains no unbound variables."""
    stack = [term]
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            return False
        if isinstance(t, Struct):
            stack.extend(t.args)
    return True


def resolve(term):
    """Return a copy of ``term`` with all bound variables substituted.

    Unbound variables are shared between input and output, so the result
    is safe to keep across backtracking only when it is ground; callers
    that store answers use :func:`repro.terms.rename.copy_term` instead.
    Untouched subterms are shared with the input (no pointless
    reallocation of already-resolved structure).
    """
    term = deref(term)
    if not isinstance(term, Struct):
        return term
    # Fast path: a struct whose arguments dereference to scalars (the
    # shape of virtually every relational answer) needs no frame walk.
    flat = []
    changed = False
    for child in term.args:
        v = child
        while isinstance(v, Var):
            ref = v.ref
            if ref is None:
                break
            v = ref
        if isinstance(v, Struct):
            flat = None
            break
        if v is not child:
            changed = True
        flat.append(v)
    if flat is not None:
        if not changed:
            return term
        return Struct(term.name, flat)
    parts = []
    stack = [(term, iter(term.args), parts)]
    while True:
        src, it, parts = stack[-1]
        descended = False
        for child in it:
            value = deref(child)
            if isinstance(value, Struct):
                child_parts = []
                stack.append((value, iter(value.args), child_parts))
                descended = True
                break
            parts.append(value)
        if descended:
            continue
        stack.pop()
        if all(x is y for x, y in zip(parts, src.args)):
            node = src
        else:
            node = Struct(src.name, parts)
        if not stack:
            return node
        stack[-1][2].append(node)


def term_variables(term):
    """Return the distinct unbound variables of ``term`` in first-occurrence
    order (the order Prolog's ``term_variables/2`` specifies)."""
    seen = set()
    out = []
    stack = [term]
    # Depth-first, left-to-right; the stack is popped from the end so we
    # push argument lists reversed.
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            if id(t) not in seen:
                seen.add(id(t))
                out.append(t)
        elif isinstance(t, Struct):
            stack.extend(reversed(t.args))
    return out


def _order_class(term):
    """Standard order of terms: Var < Number < Atom < Struct."""
    if isinstance(term, Var):
        return 0
    if isinstance(term, (int, float)):
        return 1
    if isinstance(term, Atom):
        return 2
    if isinstance(term, Struct):
        return 3
    return 4


def compare_terms(left, right):
    """Three-way comparison in the standard order of terms.

    Iterative: argument pairs of equal structs are pushed (reversed, so
    the leftmost differing argument decides) instead of recursing.
    """
    stack = [(left, right)]
    while stack:
        left, right = stack.pop()
        left = deref(left)
        right = deref(right)
        if left is right:
            continue
        lc, rc = _order_class(left), _order_class(right)
        if lc != rc:
            return -1 if lc < rc else 1
        if lc == 0:
            li, ri = id(left), id(right)
            if li == ri:
                continue
            return -1 if li < ri else 1
        if lc == 1:
            if left == right:
                continue
            return -1 if left < right else 1
        if lc == 2:
            if left.name == right.name:
                continue
            return -1 if left.name < right.name else 1
        if lc == 3:
            if len(left.args) != len(right.args):
                return -1 if len(left.args) < len(right.args) else 1
            if left.name != right.name:
                return -1 if left.name < right.name else 1
            stack.extend(zip(reversed(left.args), reversed(right.args)))
            continue
        ls, rs = repr(left), repr(right)
        if ls == rs:
            continue
        return -1 if ls < rs else 1
    return 0


def subsumes(general, specific):
    """True when ``general`` subsumes ``specific`` (one-way matching).

    Neither term is modified.  Used by the safety analyser and tests;
    the engine proper uses variant checking.
    """
    bindings = {}
    stack = [(general, specific)]
    while stack:
        g, s = stack.pop()
        g = deref(g)
        s = deref(s)
        if isinstance(g, Var):
            bound = bindings.get(id(g))
            if bound is None:
                bindings[id(g)] = s
            elif compare_terms(bound, s) != 0 or not _same_shape(bound, s):
                return False
            continue
        if isinstance(s, Var):
            return False
        if isinstance(g, Struct):
            if (
                not isinstance(s, Struct)
                or g.name != s.name
                or len(g.args) != len(s.args)
            ):
                return False
            stack.extend(zip(g.args, s.args))
        elif isinstance(g, Atom):
            if not (isinstance(s, Atom) and g.name == s.name):
                return False
        else:
            if type(g) is not type(s) or g != s:
                return False
    return True


def _same_shape(left, right):
    """Structural identity including variable identity (no renaming)."""
    stack = [(left, right)]
    while stack:
        a, b = stack.pop()
        a = deref(a)
        b = deref(b)
        if a is b:
            continue
        if isinstance(a, Var) or isinstance(b, Var):
            return False
        if isinstance(a, Struct):
            if (
                not isinstance(b, Struct)
                or a.name != b.name
                or len(a.args) != len(b.args)
            ):
                return False
            stack.extend(zip(a.args, b.args))
        elif isinstance(a, Atom):
            if not (isinstance(b, Atom) and a.name == b.name):
                return False
        else:
            if type(a) is not type(b) or a != b:
                return False
    return True
