"""Copying and renaming of terms (``copy_term/2`` and friends).

All walks here are iterative (explicit stacks): terms nest one level
per list element, so the SLG engine routinely meets terms thousands of
levels deep, and recursive kernels would both pay a Python call per
node and die with ``RecursionError`` on deep data.
"""

from __future__ import annotations

from .term import Struct, Var
from .unify import deref

__all__ = ["copy_term", "instantiate_key"]


def copy_term(term, varmap=None):
    """Return a structurally-identical copy with fresh variables.

    Bound variables are chased and their values copied, so the result
    is independent of later backtracking — this is the operation the
    SLG engine uses to move answers into table space and back
    (section 3.2 of the paper).  ``varmap`` may be supplied to share a
    renaming across several terms (e.g. a clause head and body).
    """
    if varmap is None:
        varmap = {}
    term = deref(term)
    if isinstance(term, Var):
        fresh = varmap.get(id(term))
        if fresh is None:
            fresh = Var(term.name)
            varmap[id(term)] = fresh
        return fresh
    if not isinstance(term, Struct):
        return term
    # Post-order copy: each frame is (source struct, shared iterator
    # over its remaining args, copied args so far).
    parts = []
    stack = [(term, iter(term.args), parts)]
    while True:
        src, it, parts = stack[-1]
        descended = False
        for child in it:
            child = deref(child)
            if isinstance(child, Var):
                fresh = varmap.get(id(child))
                if fresh is None:
                    fresh = Var(child.name)
                    varmap[id(child)] = fresh
                parts.append(fresh)
            elif isinstance(child, Struct):
                child_parts = []
                stack.append((child, iter(child.args), child_parts))
                descended = True
                break
            else:
                parts.append(child)
        if descended:
            continue
        stack.pop()
        node = Struct(src.name, parts)
        if not stack:
            return node
        stack[-1][2].append(node)


# Canonical-key tags mirrored from repro.terms.compare.
_VAR = 0
_ATOM = 1
_NUM = 2
_STRUCT = 3


def instantiate_key(key, variables=None):
    """Rebuild a term from a canonical key (see ``canonical_key``).

    Parses the flat preorder token string: every ``_STRUCT`` token
    carries its arity, so an open frame closes exactly when it has
    collected that many arguments.  Variable indices are mapped to
    fresh variables (or to the supplied ``variables`` list, extended as
    needed).  Together with ``canonical_key`` this round-trips terms
    through table space: the table stores hashable keys, and answer
    resolution instantiates them back into heap terms.
    """
    from .term import mkatom  # local import to avoid a cycle at module load

    if variables is None:
        variables = []

    stack = []  # open frames: [name, arity, parts]
    i = 0
    n = len(key)
    while i < n:
        tag = key[i]
        if tag == _STRUCT:
            stack.append([key[i + 1], key[i + 2], []])
            i += 3
            continue
        if tag == _VAR:
            index = key[i + 1]
            while len(variables) <= index:
                variables.append(Var())
            value = variables[index]
            i += 2
        elif tag == _ATOM:
            value = mkatom(key[i + 1])
            i += 2
        else:  # _NUM
            value = key[i + 2]
            i += 3
        while stack:
            frame = stack[-1]
            parts = frame[2]
            parts.append(value)
            if len(parts) < frame[1]:
                break
            stack.pop()
            value = Struct(frame[0], parts)
        else:
            return value
    # A bare struct key with arity 0 cannot occur (atoms tokenize as
    # _ATOM), so falling out of the loop means a truncated key.
    raise ValueError("truncated canonical key")
