"""Copying and renaming of terms (``copy_term/2`` and friends)."""

from __future__ import annotations

from .term import Struct, Var
from .unify import deref

__all__ = ["copy_term", "instantiate_key"]


def copy_term(term, varmap=None):
    """Return a structurally-identical copy with fresh variables.

    Bound variables are chased and their values copied, so the result
    is independent of later backtracking — this is the operation the
    SLG engine uses to move answers into table space and back
    (section 3.2 of the paper).  ``varmap`` may be supplied to share a
    renaming across several terms (e.g. a clause head and body).
    """
    if varmap is None:
        varmap = {}
    return _copy(term, varmap)


def _copy(term, varmap):
    term = deref(term)
    if isinstance(term, Var):
        fresh = varmap.get(id(term))
        if fresh is None:
            fresh = Var(term.name)
            varmap[id(term)] = fresh
        return fresh
    if isinstance(term, Struct):
        return Struct(term.name, tuple(_copy(a, varmap) for a in term.args))
    return term


# Canonical-key tags mirrored from repro.terms.compare.
_VAR = 0
_ATOM = 1
_NUM = 2
_STRUCT = 3


def instantiate_key(key, variables=None):
    """Rebuild a term from a canonical key (see ``canonical_key``).

    Variable indices are mapped to fresh variables (or to the supplied
    ``variables`` list, extended as needed).  Together with
    ``canonical_key`` this round-trips terms through table space: the
    table stores hashable keys, and answer resolution instantiates them
    back into heap terms.
    """
    from .term import mkatom  # local import to avoid a cycle at module load

    if variables is None:
        variables = []

    def build(node):
        tag = node[0]
        if tag == _VAR:
            index = node[1]
            while len(variables) <= index:
                variables.append(Var())
            return variables[index]
        if tag == _ATOM:
            return mkatom(node[1])
        if tag == _STRUCT:
            return Struct(node[1], tuple(build(child) for child in node[2]))
        return node[2]

    return build(key)
