"""Helpers for Prolog lists (``'.'/2`` cells terminated by ``[]``)."""

from __future__ import annotations

from ..errors import TypeError_
from .term import NIL, Atom, Struct
from .unify import deref

__all__ = ["make_list", "list_to_python", "is_proper_list", "CONS"]

CONS = "."


def make_list(items, tail=NIL):
    """Build a Prolog list term from a Python iterable."""
    result = tail
    for item in reversed(list(items)):
        result = Struct(CONS, (item, result))
    return result


def list_to_python(term):
    """Convert a proper Prolog list into a Python list.

    Raises :class:`repro.errors.TypeError_` on partial or improper lists.
    """
    out = []
    term = deref(term)
    while True:
        if isinstance(term, Atom) and term is NIL:
            return out
        if isinstance(term, Struct) and term.name == CONS and len(term.args) == 2:
            out.append(deref(term.args[0]))
            term = deref(term.args[1])
            continue
        raise TypeError_("proper list", term)


def is_proper_list(term):
    """True when ``term`` is a complete, NIL-terminated list."""
    term = deref(term)
    while True:
        if isinstance(term, Atom) and term is NIL:
            return True
        if isinstance(term, Struct) and term.name == CONS and len(term.args) == 2:
            term = deref(term.args[1])
            continue
        return False
