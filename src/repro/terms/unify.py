"""Binding, trailing and unification.

The engine binds variables destructively and records every binding on a
trail; backtracking (and SLG consumer suspension) restores state by
unwinding the trail to a saved mark.  This mirrors the WAM's
bind/trail/unwind discipline, which is what makes tuple-at-a-time
evaluation cheap.
"""

from __future__ import annotations

from .term import Atom, Struct, Var

__all__ = [
    "Trail",
    "deref",
    "bind",
    "unify",
    "undo_to",
    "occurs_in",
]


class Trail:
    """A stack of variables bound since the start of the computation.

    ``mark()`` returns the current height; ``undo_to(mark)`` unbinds
    everything above the mark.  ``snapshot(mark)`` copies the segment of
    bindings above ``mark`` so a suspended SLG consumer can be resumed
    later (the CAT approach: the forward trail is the saved state).
    """

    __slots__ = ("entries",)

    def __init__(self):
        self.entries = []

    def mark(self):
        return len(self.entries)

    def push(self, var):
        self.entries.append(var)

    def undo_to(self, mark):
        entries = self.entries
        while len(entries) > mark:
            entries.pop().ref = None

    def snapshot(self, mark):
        """Copy the (variable, value) pairs bound above ``mark``."""
        return [(var, var.ref) for var in self.entries[mark:]]

    def reinstall(self, snapshot):
        """Re-apply a snapshot taken by :meth:`snapshot`, trailing each
        binding so that ordinary backtracking undoes the resumption."""
        entries = self.entries
        for var, value in snapshot:
            if var.ref is None:
                var.ref = value
                entries.append(var)

    def __len__(self):
        return len(self.entries)


def deref(term):
    """Follow variable bindings to the representative term."""
    while isinstance(term, Var):
        ref = term.ref
        if ref is None:
            return term
        term = ref
    return term


def bind(var, value, trail):
    """Bind an unbound variable, recording it on the trail."""
    var.ref = value
    trail.push(var)


def undo_to(trail, mark):
    """Module-level alias of :meth:`Trail.undo_to` for symmetry."""
    trail.undo_to(mark)


def unify(left, right, trail):
    """Unify two terms destructively; True on success.

    On failure the caller is responsible for unwinding the trail to its
    pre-call mark (choice points always hold one).  No occurs check is
    performed, as in the WAM; :func:`occurs_in` is available for code
    that needs soundness checks (e.g. the safety analyser).
    """
    stack = [(left, right)]
    entries = trail.entries
    while stack:
        a, b = stack.pop()
        # deref inlined: this is the innermost loop of the whole engine.
        while isinstance(a, Var):
            ref = a.ref
            if ref is None:
                break
            a = ref
        while isinstance(b, Var):
            ref = b.ref
            if ref is None:
                break
            b = ref
        if a is b:
            continue
        if isinstance(a, Var):
            a.ref = b
            entries.append(a)
        elif isinstance(b, Var):
            b.ref = a
            entries.append(b)
        elif isinstance(a, Struct):
            if (
                not isinstance(b, Struct)
                or a.name != b.name
                or len(a.args) != len(b.args)
            ):
                return False
            stack.extend(zip(a.args, b.args))
        elif isinstance(a, Atom):
            if not (isinstance(b, Atom) and a.name == b.name):
                return False
        else:
            # Numbers and opaque payloads: type-exact equality.  Guard
            # against int/float and bool/int coercion surprises.
            if type(a) is not type(b) or a != b:
                return False
    return True


def occurs_in(var, term):
    """True when the (unbound) variable occurs inside ``term``."""
    stack = [term]
    while stack:
        t = deref(stack.pop())
        if t is var:
            return True
        if isinstance(t, Struct):
            stack.extend(t.args)
    return False
