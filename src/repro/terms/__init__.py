"""Term representation, unification and term utilities."""

from .compare import (
    canonical_key,
    compare_terms,
    is_ground,
    is_variant,
    resolve,
    subsumes,
    term_variables,
)
from .listutil import is_proper_list, list_to_python, make_list
from .rename import copy_term, instantiate_key
from .term import (
    CUT,
    FAIL,
    NIL,
    TRUE,
    Atom,
    Struct,
    Var,
    functor_arity,
    is_callable_term,
    mkatom,
    mkstruct,
)
from .unify import Trail, bind, deref, occurs_in, undo_to, unify

__all__ = [
    "Var",
    "Atom",
    "Struct",
    "mkatom",
    "mkstruct",
    "functor_arity",
    "is_callable_term",
    "NIL",
    "TRUE",
    "FAIL",
    "CUT",
    "Trail",
    "deref",
    "bind",
    "unify",
    "undo_to",
    "occurs_in",
    "canonical_key",
    "is_variant",
    "is_ground",
    "resolve",
    "term_variables",
    "compare_terms",
    "subsumes",
    "copy_term",
    "instantiate_key",
    "make_list",
    "list_to_python",
    "is_proper_list",
]
