"""Term representation for the repro engine.

Terms follow the WAM model translated to Python: variables are mutable
cells bound destructively (and undone via a trail, see
:mod:`repro.terms.unify`), atoms are interned so equality is identity,
and compound terms are immutable ``(functor, args)`` records.

Numbers are plain Python ``int``/``float`` objects; any Python object
that is not a :class:`Var`, :class:`Atom` or :class:`Struct` unifies
only with an identical object, which also gives a natural escape hatch
for opaque payloads.
"""

from __future__ import annotations

from sys import intern as _intern

__all__ = [
    "Var",
    "Atom",
    "Struct",
    "mkatom",
    "mkstruct",
    "is_callable_term",
    "functor_arity",
    "NIL",
    "TRUE",
    "FAIL",
    "CUT",
]


class Var:
    """A logic variable: an unbound cell or a forwarding reference.

    ``ref`` is ``None`` while the variable is unbound; binding sets it
    to another term (possibly another variable).  ``name`` is kept only
    for printing source-level variables; machine-generated variables
    print as ``_G<id>``.
    """

    __slots__ = ("ref", "name")
    _counter = 0

    def __init__(self, name=None):
        self.ref = None
        self.name = name

    def __repr__(self):
        if self.ref is not None:
            return f"Var({self.ref!r})"
        return self.name or f"_G{id(self) & 0xFFFFFF:x}"


class Atom:
    """An interned constant symbol.

    Use :func:`mkatom` to obtain instances; direct construction bypasses
    the intern table and breaks identity-based equality.
    """

    __slots__ = ("name",)
    _table: dict = {}

    def __init__(self, name):
        self.name = name

    def __repr__(self):
        return self.name

    def __hash__(self):
        return hash(self.name)

    def __eq__(self, other):
        return self is other or (isinstance(other, Atom) and other.name == self.name)

    def __ne__(self, other):
        return not self.__eq__(other)

    def __reduce__(self):
        # Serialize through the intern table so identity-based equality
        # survives pickling (object files, section 4.6).
        return (mkatom, (self.name,))


def mkatom(name):
    """Return the unique :class:`Atom` for ``name``, creating it if needed.

    The name string is interned on first creation, so every atom name
    — and every functor string derived from one — is a shared string
    object and dict lookups keyed by it short-circuit on identity.
    """
    atom = Atom._table.get(name)
    if atom is None:
        atom = Atom(_intern(name))
        Atom._table[atom.name] = atom
    return atom


class Struct:
    """A compound term ``functor(arg1, ..., argN)`` with N >= 1.

    ``name`` is the functor string and ``args`` a tuple of terms.  HiLog
    terms are represented after encoding, i.e. as ``apply/N`` structs
    whose first argument is the (possibly compound) functor term.
    """

    __slots__ = ("name", "args")

    def __init__(self, name, args):
        self.name = name
        self.args = tuple(args)

    @property
    def arity(self):
        return len(self.args)

    @property
    def indicator(self):
        return f"{self.name}/{len(self.args)}"

    def __repr__(self):
        inner = ",".join(repr(a) for a in self.args)
        return f"{self.name}({inner})"

    def __reduce__(self):
        return (Struct, (self.name, self.args))


def mkstruct(name, *args):
    """Convenience constructor: ``mkstruct('f', x, y)`` is ``f(x, y)``.

    With no arguments it returns the interned atom instead, matching
    Prolog where ``f()`` is not a term.
    """
    if not args:
        return mkatom(name)
    return Struct(name, args)


def is_callable_term(term):
    """True for terms that may appear as goals: atoms and structs."""
    return isinstance(term, (Atom, Struct))


def functor_arity(term):
    """Return the ``(name, arity)`` pair of a callable term."""
    if isinstance(term, Atom):
        return term.name, 0
    if isinstance(term, Struct):
        return term.name, len(term.args)
    raise TypeError(f"not a callable term: {term!r}")


# Frequently-used interned atoms.
NIL = mkatom("[]")
TRUE = mkatom("true")
FAIL = mkatom("fail")
CUT = mkatom("!")
