"""Observability: structured SLG tracing, profiling, metrics, exporters.

The counters in :mod:`repro.perf` answer "how many"; this package
answers "which subgoal, when, for how long — and what is the p99".
Five pieces:

* :mod:`repro.obs.trace` — a bounded ring-buffer tracer of typed SLG
  events (check-in hit/miss, answer insert/duplicate, suspension,
  resumption, completion, hybrid routing) plus engine-stage events
  (query/stage spans, objcache hit/miss, compile, bulk ingest, disk
  spill), each stamped with a monotonic clock and a stable id.
* :mod:`repro.obs.profile` — per-subgoal spans: cumulative self time,
  answer and consumer counts, and table-space byte estimates,
  aggregated into a sortable profile report and the per-predicate
  ``:top`` view.
* :mod:`repro.obs.metrics` — the metrics registry: counters, gauges
  and log-scaled histograms with mergeable snapshots, p50/p90/p99
  extraction, and Prometheus-text / JSON exposition.
* :mod:`repro.obs.spans` — the per-query span recorder that brackets
  every top-level goal and each subsystem stage, fanning out to the
  metrics registry and the tracer.
* :mod:`repro.obs.export` — JSONL and Chrome ``chrome://tracing``
  trace-event exporters (stage spans render as a nested timeline).

Everything follows the zero-cost-when-disabled discipline of the
counters layer: the machine caches ``engine.tracer`` / ``engine.profiler``
in locals once per run, engine-stage hook sites test ``engine.spans``
once, and a disabled subsystem is simply ``None``.
"""

from .export import (
    chrome_trace_events,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from .metrics import (
    Histogram,
    MetricsRegistry,
    merge_histograms,
    merge_snapshots,
    render_json,
    render_prometheus,
    write_metrics,
)
from .profile import (
    Profiler,
    aggregate_top,
    estimate_table_bytes,
    estimate_term_bytes,
    format_profile,
    format_top,
)
from .spans import SpanRecorder, note_disk_spill
from .trace import (
    EV_ANALYSIS_REBUILD,
    EV_ANSWER_BULK,
    EV_ANSWER_DUP,
    EV_ANSWER_INSERT,
    EV_BULK_INGEST,
    EV_COMPILE_UNIT,
    EV_COMPLETE,
    EV_DISK_SPILL,
    EV_HYBRID_FALLBACK,
    EV_HYBRID_ROUTE,
    EV_OBJCACHE_HIT,
    EV_OBJCACHE_MISS,
    EV_RESUME,
    EV_SPAN_BEGIN,
    EV_SPAN_END,
    EV_SUBGOAL_HIT,
    EV_SUBGOAL_MISS,
    EV_SUSPEND,
    EVENT_KINDS,
    SubgoalRegistry,
    Tracer,
)

__all__ = [
    "Tracer",
    "SubgoalRegistry",
    "Profiler",
    "MetricsRegistry",
    "Histogram",
    "SpanRecorder",
    "EVENT_KINDS",
    "EV_SUBGOAL_MISS",
    "EV_SUBGOAL_HIT",
    "EV_ANSWER_INSERT",
    "EV_ANSWER_DUP",
    "EV_ANSWER_BULK",
    "EV_SUSPEND",
    "EV_RESUME",
    "EV_COMPLETE",
    "EV_HYBRID_ROUTE",
    "EV_HYBRID_FALLBACK",
    "EV_SPAN_BEGIN",
    "EV_SPAN_END",
    "EV_ANALYSIS_REBUILD",
    "EV_COMPILE_UNIT",
    "EV_OBJCACHE_HIT",
    "EV_OBJCACHE_MISS",
    "EV_BULK_INGEST",
    "EV_DISK_SPILL",
    "estimate_term_bytes",
    "estimate_table_bytes",
    "format_profile",
    "aggregate_top",
    "format_top",
    "merge_histograms",
    "merge_snapshots",
    "render_prometheus",
    "render_json",
    "write_metrics",
    "note_disk_spill",
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
]
