"""Observability: structured SLG tracing, profiling, and exporters.

The counters in :mod:`repro.perf` answer "how many"; this package
answers "which subgoal, when, and for how long".  Three pieces:

* :mod:`repro.obs.trace` — a bounded ring-buffer tracer of typed SLG
  events (check-in hit/miss, answer insert/duplicate, suspension,
  resumption, completion, hybrid routing), each stamped with a
  monotonic clock and a stable subgoal id.
* :mod:`repro.obs.profile` — per-subgoal spans: cumulative self time,
  answer and consumer counts, and table-space byte estimates,
  aggregated into a sortable profile report.
* :mod:`repro.obs.export` — JSONL and Chrome ``chrome://tracing``
  trace-event exporters.

Everything follows the zero-cost-when-disabled discipline of the
counters layer: the machine caches ``engine.tracer`` / ``engine.profiler``
in locals once per run, and a disabled subsystem is simply ``None``.
"""

from .export import (
    chrome_trace_events,
    jsonl_lines,
    write_chrome_trace,
    write_jsonl,
)
from .profile import (
    Profiler,
    estimate_table_bytes,
    estimate_term_bytes,
    format_profile,
)
from .trace import (
    EV_ANSWER_BULK,
    EV_ANSWER_DUP,
    EV_ANSWER_INSERT,
    EV_COMPLETE,
    EV_HYBRID_FALLBACK,
    EV_HYBRID_ROUTE,
    EV_RESUME,
    EV_SUBGOAL_HIT,
    EV_SUBGOAL_MISS,
    EV_SUSPEND,
    EVENT_KINDS,
    SubgoalRegistry,
    Tracer,
)

__all__ = [
    "Tracer",
    "SubgoalRegistry",
    "Profiler",
    "EVENT_KINDS",
    "EV_SUBGOAL_MISS",
    "EV_SUBGOAL_HIT",
    "EV_ANSWER_INSERT",
    "EV_ANSWER_DUP",
    "EV_ANSWER_BULK",
    "EV_SUSPEND",
    "EV_RESUME",
    "EV_COMPLETE",
    "EV_HYBRID_ROUTE",
    "EV_HYBRID_FALLBACK",
    "estimate_term_bytes",
    "estimate_table_bytes",
    "format_profile",
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
]
