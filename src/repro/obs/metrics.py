"""The metrics registry: counters, gauges, log-scaled histograms.

The counters layer (:mod:`repro.perf`) answers "how many over the
engine's lifetime"; this module answers *distributional* questions —
"what is the p50/p99 query latency?" — which is the measurement the
ROADMAP's concurrent-query-service benchmark needs.  XSB exposes the
same family of numbers through ``statistics/1`` regions (table space,
program space, CPU time); the histogram registry is that idea with
percentiles.

Design:

* **Log-scaled buckets.**  A histogram observation ``v`` (a
  non-negative number, typically nanoseconds or bytes) lands in bucket
  ``int(v).bit_length()`` — bucket 0 holds ``v < 1``, bucket ``i >= 1``
  holds ``2**(i-1) <= v < 2**i``.  Powers of two give ~2x relative
  error, cost one ``bit_length`` per observation, and need at most ~65
  buckets for any 64-bit value, stored sparsely.
* **Mergeable snapshots.**  :meth:`Histogram.snapshot` returns a plain
  dict (JSON-able); :func:`merge_histograms` adds bucket counts, so
  merging is exact, commutative and associative — snapshots from
  several engines (the future query-service workers) combine into one
  distribution.
* **Nearest-rank percentiles.**  ``percentile(q)`` walks the cumulative
  bucket counts to the nearest-rank bucket and interpolates linearly
  inside it; the result is always within the bucket that contains the
  true (sorted-list) nearest-rank value, and exact min/max tighten the
  edge buckets.  The property tests pin this contract against a
  sorted-list oracle.

Zero-cost discipline: a disabled metrics layer is ``engine.metrics is
None``; hook sites go through :mod:`repro.obs.spans`, which performs
that single test.
"""

from __future__ import annotations

import json
import math
import threading

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "merge_histograms",
    "merge_snapshots",
    "render_prometheus",
    "render_json",
    "write_metrics",
]


def bucket_index(value):
    """The log2 bucket for one observation (0 for values below 1)."""
    value = int(value)
    return value.bit_length() if value > 0 else 0


def bucket_bounds(index):
    """``(low, high)`` of bucket ``index``: values land in
    ``low <= v < high``; bucket 0 is ``[0, 1)``."""
    if index <= 0:
        return (0, 1)
    return (1 << (index - 1), 1 << index)


class Histogram:
    """A log2-bucketed histogram over non-negative observations."""

    __slots__ = ("buckets", "count", "sum", "min", "max")

    def __init__(self):
        self.buckets = {}
        self.count = 0
        self.sum = 0
        self.min = None
        self.max = None

    def observe(self, value):
        if value < 0:
            value = 0
        buckets = self.buckets
        # inlined bucket_index — this is the hot call of the registry
        index = int(value).bit_length()
        buckets[index] = buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, q):
        """Nearest-rank percentile (``q`` in [0, 1]); None when empty.

        The returned value lies inside the bucket holding the true
        nearest-rank observation, linearly interpolated by rank within
        the bucket, then clamped to the observed [min, max]."""
        count = self.count
        if count == 0:
            return None
        rank = max(1, min(count, math.ceil(q * count)))
        cumulative = 0
        for index in sorted(self.buckets):
            width = self.buckets[index]
            if cumulative + width >= rank:
                low, high = bucket_bounds(index)
                within = rank - cumulative  # 1-based rank inside bucket
                if width > 1:
                    value = low + (high - low) * (within - 1) / (width - 1)
                else:
                    value = low
                return min(max(value, self.min), self.max)
            cumulative += width
        return self.max  # pragma: no cover - ranks always land above

    def snapshot(self):
        """A plain-dict, JSON-able copy with percentiles attached."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): n for i, n in sorted(self.buckets.items())},
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    @classmethod
    def from_snapshot(cls, snapshot):
        hist = cls()
        hist.count = snapshot.get("count", 0)
        hist.sum = snapshot.get("sum", 0)
        hist.min = snapshot.get("min")
        hist.max = snapshot.get("max")
        hist.buckets = {
            int(i): n for i, n in snapshot.get("buckets", {}).items()
        }
        return hist

    def __repr__(self):
        return f"<Histogram n={self.count} sum={self.sum}>"


def merge_histograms(left, right):
    """Merge two histogram snapshots (exact: bucket counts add)."""
    merged = Histogram.from_snapshot(left)
    for index, width in right.get("buckets", {}).items():
        index = int(index)
        merged.buckets[index] = merged.buckets.get(index, 0) + width
    merged.count += right.get("count", 0)
    merged.sum += right.get("sum", 0)
    for bound, pick in (("min", min), ("max", max)):
        other = right.get(bound)
        ours = getattr(merged, bound)
        if other is not None:
            setattr(merged, bound, other if ours is None else pick(ours, other))
    return merged.snapshot()


class MetricsRegistry:
    """Named counters, gauges and histograms behind one ``enabled`` flag.

    The engine owns at most one; ``engine.metrics is None`` is the
    zero-cost disabled state, and ``enabled`` is the runtime switch
    (``disable_metrics``) that stops recording without discarding what
    was already collected.

    Every recording method and ``snapshot`` hold ``lock``: a registry
    may be scraped (``metrics_snapshot``, the REPL's ``:top``, the
    query service's aggregation) from a thread other than the one
    recording into it, and a counter increment or a histogram's
    count/sum/bucket triple must never be observed half-applied.  The
    lock is uncontended in single-session use; the hot-path cost is
    one lock word per query (see ``spans.end_query_fast``, which
    shares this lock for its inlined updates).
    """

    __slots__ = ("enabled", "counters", "gauges", "histograms", "lock")

    def __init__(self):
        self.enabled = True
        self.counters = {}
        self.gauges = {}
        self.histograms = {}
        self.lock = threading.Lock()

    # -- recording ----------------------------------------------------------

    def inc(self, name, amount=1):
        with self.lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def set_gauge(self, name, value):
        with self.lock:
            self.gauges[name] = value

    def observe(self, name, value):
        with self.lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def histogram(self, name):
        """The named histogram, created on first use."""
        with self.lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            return hist

    # -- snapshots ----------------------------------------------------------

    def snapshot(self):
        """A JSON-able snapshot: ``{"counters", "gauges", "histograms"}``
        with per-histogram p50/p90/p99 attached.  Taken under the
        registry lock, so it is a consistent cut even while another
        thread records."""
        with self.lock:
            return {
                "counters": dict(sorted(self.counters.items())),
                "gauges": dict(sorted(self.gauges.items())),
                "histograms": {
                    name: hist.snapshot()
                    for name, hist in sorted(self.histograms.items())
                },
            }

    def clear(self):
        with self.lock:
            self.counters = {}
            self.gauges = {}
            self.histograms = {}
        return self

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (
            f"<MetricsRegistry {state} {len(self.counters)} counters, "
            f"{len(self.histograms)} histograms>"
        )


def merge_snapshots(left, right):
    """Merge two registry snapshots: counters add, gauges take the max,
    histograms merge bucket-exactly.  Associative and commutative, so
    any merge tree over worker snapshots yields the same totals."""
    counters = dict(left.get("counters", {}))
    for name, value in right.get("counters", {}).items():
        counters[name] = counters.get(name, 0) + value
    gauges = dict(left.get("gauges", {}))
    for name, value in right.get("gauges", {}).items():
        gauges[name] = value if name not in gauges else max(gauges[name], value)
    histograms = dict(left.get("histograms", {}))
    for name, snap in right.get("histograms", {}).items():
        histograms[name] = (
            merge_histograms(histograms[name], snap)
            if name in histograms else snap
        )
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": {k: histograms[k] for k in sorted(histograms)},
    }


# --------------------------------------------------------------------------
# Exposition
# --------------------------------------------------------------------------

def _prom_name(name):
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def render_prometheus(snapshot, prefix="repro"):
    """Prometheus text exposition of a registry snapshot.

    Counters become ``<prefix>_<name>_total``, gauges bare samples, and
    histograms the standard cumulative ``_bucket{le=...}`` series with
    ``_sum`` and ``_count`` (``le`` bounds are the bucket upper edges
    ``2**i``, plus ``+Inf``).
    """
    lines = []
    for name, value in snapshot.get("counters", {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, hist in snapshot.get("histograms", {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for index in sorted(int(i) for i in hist.get("buckets", {})):
            cumulative += hist["buckets"][str(index)]
            upper = bucket_bounds(index)[1]
            lines.append(f'{metric}_bucket{{le="{upper}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.get("count", 0)}')
        lines.append(f"{metric}_sum {hist.get('sum', 0)}")
        lines.append(f"{metric}_count {hist.get('count', 0)}")
    return "\n".join(lines) + "\n"


def render_json(snapshot):
    """JSON exposition (the snapshot, stable key order, one trailing
    newline — the shape the CI artifact and bench JSONs embed)."""
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


def write_metrics(snapshot, path_or_file, fmt=None):
    """Write a snapshot in ``"json"`` or ``"prometheus"`` text form.

    ``fmt=None`` infers from the path: ``*.json`` means JSON, anything
    else (including streams) Prometheus text.  Returns the byte count.
    """
    if fmt is None:
        name = getattr(path_or_file, "name", path_or_file)
        fmt = "json" if str(name).endswith(".json") else "prometheus"
    if fmt not in ("json", "prometheus"):
        raise ValueError(f"unknown metrics format {fmt!r}")
    text = render_json(snapshot) if fmt == "json" else render_prometheus(snapshot)
    if hasattr(path_or_file, "write"):
        path_or_file.write(text)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            handle.write(text)
    return len(text)
