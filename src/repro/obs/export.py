"""Trace exporters: JSONL and Chrome ``chrome://tracing`` formats.

Two consumers, two formats:

* **JSONL** — one JSON object per line, machine-greppable, append-
  friendly, the shape CI artifacts and ad-hoc scripts want.
* **Chrome trace-event JSON** — the ``{"traceEvents": [...]}`` shape
  that ``chrome://tracing`` (and Perfetto) load directly.  Subgoal
  lifecycles (check-in miss → completion) become *async* spans keyed by
  the subgoal's sequence number — async events do not require strict
  stack nesting, which matters because an SCC completes leader-first —
  and every other SLG event becomes an instant event on the same
  timeline.

Timestamps: trace events carry nanoseconds since the tracer epoch;
Chrome wants microseconds, JSONL keeps the raw nanoseconds.
"""

from __future__ import annotations

import json

from .trace import (
    EV_ANSWER_BULK,
    EV_COMPLETE,
    EV_HYBRID_ROUTE,
    EV_SPAN_BEGIN,
    EV_SPAN_END,
    EV_SUBGOAL_MISS,
)

__all__ = [
    "jsonl_lines",
    "write_jsonl",
    "chrome_trace_events",
    "write_chrome_trace",
]


def jsonl_lines(tracer):
    """Yield one JSON line per buffered event, oldest first."""
    labels = tracer.registry.labels()
    for ts_ns, kind, seq, detail in tracer.events():
        record = {
            "ts_ns": ts_ns,
            "ev": kind,
            "seq": seq,
            "subgoal": labels.get(seq, f"subgoal#{seq}"),
        }
        if detail is not None:
            record["detail"] = detail
        yield json.dumps(record, sort_keys=True)


def write_jsonl(tracer, path_or_file):
    """Write the buffered events as JSONL; returns the line count."""
    count = 0
    if hasattr(path_or_file, "write"):
        for line in jsonl_lines(tracer):
            path_or_file.write(line + "\n")
            count += 1
        return count
    with open(path_or_file, "w", encoding="utf-8") as handle:
        for line in jsonl_lines(tracer):
            handle.write(line + "\n")
            count += 1
    return count


# Event kinds that open / close an async subgoal span.  The hybrid
# route records miss + route + complete for the same frame; the span
# still opens exactly once (on the miss) because Chrome keys async
# begin/end pairs by id, and a duplicate "b" for an open id is ignored
# by the viewer — we filter it anyway to keep the export clean.
_SPAN_OPENERS = frozenset((EV_SUBGOAL_MISS,))
_SPAN_CLOSERS = frozenset((EV_COMPLETE,))


def chrome_trace_events(tracer, process_name="repro SLG engine"):
    """The ``traceEvents`` list for the buffered events.

    Subgoal spans are async ``b``/``e`` pairs (``cat`` ``subgoal``,
    ``id`` the sequence number); point events are instants (``ph: i``)
    scoped to the process.  A span whose open event was evicted from
    the ring is synthesized at the window start so the export always
    loads; a span still open at export time is left unclosed, which
    the viewers render as running to the end of the capture.

    Engine-stage spans (:mod:`repro.obs.spans` — the per-query root
    and its parse/analysis/compile/hybrid/flush/slg children) are
    strictly LIFO within one engine, so they export as synchronous
    ``B``/``E`` duration events and the viewers render them as a
    nested timeline under the async subgoal spans.  An ``E`` whose
    ``B`` was evicted gets a synthesized opener at the window start.
    """
    labels = tracer.registry.labels()
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "args": {"name": process_name},
    }]
    open_spans = set()
    stage_depth = 0
    for ts_ns, kind, seq, detail in tracer.events():
        ts_us = ts_ns / 1000.0
        label = labels.get(seq, f"subgoal#{seq}")
        if kind == EV_SPAN_BEGIN:
            stage_depth += 1
            record = {
                "name": label,
                "cat": "stage",
                "ph": "B",
                "ts": ts_us,
                "pid": 1,
                "tid": 1,
            }
            if detail is not None:
                record["args"] = {"detail": detail}
            events.append(record)
            continue
        if kind == EV_SPAN_END:
            if stage_depth == 0:
                # The opener fell off the ring: synthesize it so the
                # B/E stack stays balanced and the export loads.
                events.insert(1, {
                    "name": label,
                    "cat": "stage",
                    "ph": "B",
                    "ts": 0.0,
                    "pid": 1,
                    "tid": 1,
                })
            else:
                stage_depth -= 1
            record = {
                "name": label,
                "cat": "stage",
                "ph": "E",
                "ts": ts_us,
                "pid": 1,
                "tid": 1,
            }
            if detail is not None:
                record["args"] = {"detail": detail}
            events.append(record)
            continue
        if kind in _SPAN_OPENERS:
            if seq not in open_spans:
                open_spans.add(seq)
                events.append({
                    "name": label,
                    "cat": "subgoal",
                    "ph": "b",
                    "id": seq,
                    "ts": ts_us,
                    "pid": 1,
                    "tid": 1,
                })
            continue
        if kind in _SPAN_CLOSERS:
            if seq not in open_spans:
                # The opener fell off the ring: synthesize it at the
                # window start so begin/end still pair up.
                events.append({
                    "name": label,
                    "cat": "subgoal",
                    "ph": "b",
                    "id": seq,
                    "ts": 0.0,
                    "pid": 1,
                    "tid": 1,
                })
            open_spans.discard(seq)
            events.append({
                "name": label,
                "cat": "subgoal",
                "ph": "e",
                "id": seq,
                "ts": ts_us,
                "pid": 1,
                "tid": 1,
            })
            continue
        # Negative ids are engine-stage events, not subgoals.
        args = {"label" if seq < 0 else "subgoal": label}
        if detail is not None:
            key = "count" if kind in (EV_ANSWER_BULK, EV_HYBRID_ROUTE) else "detail"
            args[key] = detail
        events.append({
            "name": kind,
            "cat": "stage" if seq < 0 else "slg",
            "ph": "i",
            "s": "p",
            "ts": ts_us,
            "pid": 1,
            "tid": 1,
            "args": args,
        })
    return events


def write_chrome_trace(tracer, path_or_file, process_name="repro SLG engine"):
    """Write a ``chrome://tracing``-loadable JSON file; returns the
    number of trace events written."""
    payload = {
        "traceEvents": chrome_trace_events(tracer, process_name),
        "displayTimeUnit": "ms",
        "otherData": {
            "dropped_events": tracer.dropped,
            "total_events": tracer.total,
        },
    }
    if hasattr(path_or_file, "write"):
        json.dump(payload, path_or_file, indent=1)
    else:
        with open(path_or_file, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
    return len(payload["traceEvents"])
