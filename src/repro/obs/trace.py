"""Structured SLG event tracing: a bounded ring buffer of typed events.

XSB demonstrates its engine claims through *observable* engine events —
memo hit rates, scheduling cost, completion behaviour — and its later
system papers make tracing a first-class language feature.  This module
is the event side of that story: every interesting SLG transition
(subgoal check-in hit/miss, answer insert/duplicate, suspension,
resumption, completion, hybrid routing) can be recorded as a typed,
monotonic-clock-stamped event keyed by the subgoal it concerns.

Design constraints, mirroring :mod:`repro.perf.counters`:

* **Zero-cost when disabled.**  The machine caches ``engine.tracer`` in
  a local at the start of every run — ``None`` when tracing is off — so
  a disabled tracer costs one ``is not None`` test per (coarse) hook
  site and nothing on term-level kernels.
* **Bounded when enabled.**  Events land in a ring buffer of fixed
  capacity; once full, the oldest events are evicted.  A long run can
  therefore always be traced — the buffer keeps the newest window and
  counts what it dropped.
* **Cheap event records.**  An event is a plain 4-tuple
  ``(ts_ns, kind, subgoal_seq, detail)``: nanoseconds since the tracer
  epoch (``time.perf_counter_ns``), an interned kind string, the
  frame's stable sequence number, and an optional scalar payload.
  Labels are *not* rendered at event time; the registry maps sequence
  numbers back to frames (and hence printable subgoals) at export time.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = [
    "EVENT_KINDS",
    "SubgoalRegistry",
    "Tracer",
    "EV_SUBGOAL_MISS",
    "EV_SUBGOAL_HIT",
    "EV_ANSWER_INSERT",
    "EV_ANSWER_DUP",
    "EV_ANSWER_BULK",
    "EV_SUSPEND",
    "EV_RESUME",
    "EV_COMPLETE",
    "EV_HYBRID_ROUTE",
    "EV_HYBRID_FALLBACK",
    "EV_TABLE_INVALIDATE",
    "EV_TABLE_REPAIR_BEGIN",
    "EV_TABLE_REPAIR_END",
    "EV_TABLE_ABOLISH",
    "EV_SPAN_BEGIN",
    "EV_SPAN_END",
    "EV_ANALYSIS_REBUILD",
    "EV_COMPILE_UNIT",
    "EV_OBJCACHE_HIT",
    "EV_OBJCACHE_MISS",
    "EV_BULK_INGEST",
    "EV_DISK_SPILL",
]

# Interned kind strings: comparisons and dict probes on them are
# pointer-fast, and exporters can emit them verbatim.
EV_SUBGOAL_MISS = "subgoal_miss"      # first variant call; generator created
EV_SUBGOAL_HIT = "subgoal_hit"        # repeated variant call; consumer
EV_ANSWER_INSERT = "answer_insert"    # new answer copied to table space
EV_ANSWER_DUP = "answer_dup"          # answer suppressed by duplicate check
EV_ANSWER_BULK = "answer_bulk"        # hybrid bulk install (detail = count)
EV_SUSPEND = "suspend"                # consumer ran dry on incomplete table
EV_RESUME = "resume"                  # completion fixpoint woke a consumer
EV_COMPLETE = "complete"              # frame marked complete
EV_HYBRID_ROUTE = "hybrid_route"      # subgoal evaluated set-at-a-time
EV_HYBRID_FALLBACK = "hybrid_fallback"  # hybrid precondition failed
# Incremental table maintenance (repro.engine.incremental): a flush
# marks affected completed tables invalid, then either repairs each
# through the semi-naive delta machinery (the begin/end pair brackets
# the repair span; end's detail is the reinstalled answer count) or
# drops it with a targeted abolish.
EV_TABLE_INVALIDATE = "table_invalidate"      # completed table marked stale
EV_TABLE_REPAIR_BEGIN = "table_repair_begin"  # delta repair span opens
EV_TABLE_REPAIR_END = "table_repair_end"      # repair done (detail = answers)
EV_TABLE_ABOLISH = "table_abolish"            # targeted drop (not repairable)
# Engine-stage events (repro.obs.spans): spans bracket a subsystem
# stage of one query (parse, analysis, compile, hybrid, flush, slg)
# under a per-query root; the rest are typed instants for the PR 5-8
# subsystems.  All are keyed by *negative* span ids — subgoal frames
# own the non-negative sequence numbers, so both share the ring and
# the registry without collision.
EV_SPAN_BEGIN = "span_begin"            # stage span opens (LIFO per engine)
EV_SPAN_END = "span_end"                # stage span closes (detail varies)
EV_ANALYSIS_REBUILD = "analysis_rebuild"  # registry rebuilt the call graph
EV_COMPILE_UNIT = "compile_unit"        # clause compiler built one unit
EV_OBJCACHE_HIT = "objcache_hit"        # consult served from the cache
EV_OBJCACHE_MISS = "objcache_miss"      # consult compiled from source
EV_BULK_INGEST = "bulk_ingest"          # bulk_add_facts batch (detail = rows)
EV_DISK_SPILL = "disk_spill"            # disk store spilled (detail = bytes)

EVENT_KINDS = (
    EV_SUBGOAL_MISS,
    EV_SUBGOAL_HIT,
    EV_ANSWER_INSERT,
    EV_ANSWER_DUP,
    EV_ANSWER_BULK,
    EV_SUSPEND,
    EV_RESUME,
    EV_COMPLETE,
    EV_HYBRID_ROUTE,
    EV_HYBRID_FALLBACK,
    EV_TABLE_INVALIDATE,
    EV_TABLE_REPAIR_BEGIN,
    EV_TABLE_REPAIR_END,
    EV_TABLE_ABOLISH,
    EV_SPAN_BEGIN,
    EV_SPAN_END,
    EV_ANALYSIS_REBUILD,
    EV_COMPILE_UNIT,
    EV_OBJCACHE_HIT,
    EV_OBJCACHE_MISS,
    EV_BULK_INGEST,
    EV_DISK_SPILL,
)

DEFAULT_CAPACITY = 65536


class SubgoalRegistry:
    """Sequence-number → frame map with lazy label rendering.

    Subgoal frames carry a stable, engine-wide sequence number
    (:attr:`~repro.engine.table.SubgoalFrame.seq`); trace events and
    profile spans store only that integer.  The registry remembers the
    frame behind each number it has seen — holding a strong reference,
    so a frame deleted by ``tcut`` or an abandoned run still has a
    printable identity in the export — and renders labels on demand via
    the injected ``render`` callable (the engine supplies one that
    pretty-prints the reconstructed call term with its operator table).

    Engine-stage events (:mod:`repro.obs.spans`) have no frame; they
    register a plain name against their (negative) span id instead.
    """

    __slots__ = ("frames", "names", "render")

    def __init__(self, render=None):
        self.frames = {}
        self.names = {}
        self.render = render

    def note(self, frame):
        frames = self.frames
        if frame.seq not in frames:
            frames[frame.seq] = frame

    def note_name(self, seq, name):
        names = self.names
        if seq not in names:
            names[seq] = name

    def label(self, seq):
        frame = self.frames.get(seq)
        if frame is None:
            name = self.names.get(seq)
            if name is not None:
                return name
            return f"subgoal#{seq}"
        if self.render is not None:
            return self.render(frame)
        return f"{frame.indicator}#{seq}"

    def labels(self):
        """All known labels, keyed by sequence number / span id."""
        out = {seq: self.label(seq) for seq in self.frames}
        for seq, name in self.names.items():
            if seq not in out:
                out[seq] = name
        return out


class Tracer:
    """A bounded ring buffer of SLG events.

    ``enabled`` is the runtime switch ``trace_control/1`` flips; the
    machine snapshots it (with the tracer itself) once per run, exactly
    like ``EngineStats.enabled``.  Timestamps are nanoseconds relative
    to the tracer's epoch so exports are small and diffable.
    """

    __slots__ = ("enabled", "capacity", "ring", "total", "registry",
                 "clock", "epoch", "lock")

    def __init__(self, capacity=DEFAULT_CAPACITY, registry=None, clock=None):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.ring = deque(maxlen=capacity)
        self.total = 0
        self.enabled = True
        self.registry = registry if registry is not None else SubgoalRegistry()
        self.clock = clock if clock is not None else time.perf_counter_ns
        self.epoch = self.clock()
        # The ring may be appended to and drained (events(), :trace,
        # exporters) from different threads under the query service;
        # the lock keeps ``total``'s read-modify-write and the
        # append/eviction pair atomic so ``dropped`` can never go
        # negative or a drain see a half-recorded event.
        self.lock = threading.Lock()

    # -- recording (the hook-site API) --------------------------------------

    def event(self, kind, frame, detail=None):
        """Record one event against ``frame``; oldest events evict."""
        self.registry.note(frame)
        with self.lock:
            self.total += 1
            self.ring.append(
                (self.clock() - self.epoch, kind, frame.seq, detail)
            )

    def stage_event(self, kind, span_id, label, detail=None):
        """Record an engine-stage event (no subgoal frame): a span
        begin/end or a typed instant, keyed by a negative span id."""
        self.registry.note_name(span_id, label)
        with self.lock:
            self.total += 1
            self.ring.append(
                (self.clock() - self.epoch, kind, span_id, detail)
            )

    # -- inspection ---------------------------------------------------------

    @property
    def dropped(self):
        """Events evicted by the ring since the last clear."""
        return self.total - len(self.ring)

    def events(self):
        """The buffered events, oldest first, as plain tuples."""
        with self.lock:
            return list(self.ring)

    def clear(self):
        with self.lock:
            self.ring.clear()
            self.total = 0
            self.epoch = self.clock()
        return self

    def __len__(self):
        return len(self.ring)

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (
            f"<Tracer {state} {len(self.ring)}/{self.capacity} events, "
            f"{self.dropped} dropped>"
        )
