"""Per-query spans: one root span per top-level goal, child spans per
subsystem stage, fanned out to the metrics registry and the tracer.

PR 4's tracer sees *SLG* events keyed by subgoal frames; everything the
engine grew since — analysis-registry rebuilds, clause compilation,
the hybrid fixpoint, incremental flush, the consult cache, disk-store
spills — was invisible except as lifetime counters.  The
:class:`SpanRecorder` is the one object those subsystems talk to: a
stage span brackets the work (duration lands in a ``span_<stage>_ns``
histogram and, when tracing, as a ``span_begin``/``span_end`` pair the
Chrome exporter renders as a nested timeline), and typed point events
(``objcache_hit``, ``disk_spill``, ...) mark things that happen *at* a
moment rather than *over* one.

Zero-cost discipline, same as the tracer: ``engine.spans`` is ``None``
until metrics or tracing is enabled, so every coarse hook site pays a
single ``is not None`` test.  Stage spans are strictly LIFO within one
engine (query > parse/analysis/compile/flush/slg), which is what lets
the exporter use Chrome's synchronous ``B``/``E`` duration events.

Span ids are **negative** integers: subgoal frames own the non-negative
sequence numbers, so the two id spaces share the tracer ring and the
:class:`~repro.obs.trace.SubgoalRegistry` without collision.

Disk spills have no engine in scope (a :class:`~repro.store.diskstore.
DiskTupleStore` is plain storage), so the module keeps a weak set of
live recorders and :func:`note_disk_spill` fans the event out to every
engine that is currently recording.
"""

from __future__ import annotations

import time
import weakref

from .metrics import Histogram
from .trace import (
    EV_SPAN_BEGIN,
    EV_SPAN_END,
    EV_DISK_SPILL,
)

__all__ = [
    "SpanRecorder",
    "note_disk_spill",
    "STAGE_QUERY",
    "STAGE_PARSE",
    "STAGE_CONSULT",
    "STAGE_ANALYSIS",
    "STAGE_COMPILE",
    "STAGE_HYBRID",
    "STAGE_FLUSH",
    "STAGE_SLG",
]

# Stage names double as histogram suffixes (span_<stage>_ns) and trace
# labels; keep them short, lowercase, and stable — EXPERIMENTS and the
# DESIGN.md statistics/1 mapping cite them.
STAGE_QUERY = "query"        # root: one per top-level goal
STAGE_PARSE = "parse"        # goal text -> term (+ HiLog encode)
STAGE_CONSULT = "consult"    # consult_file/consult_string (incl. objcache)
STAGE_ANALYSIS = "analysis"  # analysis-registry call-graph rebuild
STAGE_COMPILE = "compile"    # clause compiler unit build
STAGE_HYBRID = "hybrid"      # bottom-up magic-set fixpoint
STAGE_FLUSH = "flush"        # incremental keep/repair/abolish flush
STAGE_SLG = "slg"            # tuple-at-a-time SLG resolution

# Histogram names precomputed per stage — span ends are hot enough
# that an f-string per event shows up in the overhead budget.
_SPAN_HIST = {
    stage: f"span_{stage}_ns"
    for stage in (STAGE_QUERY, STAGE_PARSE, STAGE_CONSULT, STAGE_ANALYSIS,
                  STAGE_COMPILE, STAGE_HYBRID, STAGE_FLUSH, STAGE_SLG)
}

# How many answers the table-space estimator walks per frame before it
# scales a sample instead (the numbers are estimates either way), and
# how often the fast query path samples the table-space histogram.
_BYTES_SAMPLE = 24
_SPACE_EVERY = 64

_RECORDERS = weakref.WeakSet()


def note_disk_spill(nbytes):
    """Record a disk-store spill on every live, recording engine."""
    for recorder in list(_RECORDERS):
        recorder.disk_spill(nbytes)


class SpanRecorder:
    """The per-engine span fan-out.

    Created the first time metrics or tracing is enabled and kept for
    the engine's lifetime; whether each event actually lands anywhere
    is re-checked per event against ``engine.metrics`` /
    ``engine.tracer`` (both carry runtime ``enabled`` switches), so
    ``trace_control(on)`` mid-session is honored without re-wiring the
    hook sites.
    """

    __slots__ = ("engine", "clock", "next_id", "_bytes_cache", "_tick",
                 "__weakref__")

    def __init__(self, engine, clock=None):
        self.engine = engine
        self.clock = clock if clock is not None else time.perf_counter_ns
        self.next_id = -1
        self._bytes_cache = {}
        self._tick = 0
        _RECORDERS.add(self)

    # -- sink resolution ----------------------------------------------------

    def _metrics(self):
        metrics = self.engine.metrics
        if metrics is not None and metrics.enabled:
            return metrics
        return None

    def _tracer(self):
        tracer = self.engine.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def active(self):
        return self._metrics() is not None or self._tracer() is not None

    def tracing(self):
        """True when span events also land in the tracer ring — the
        engine's query paths pick the full-span (traced) flavor then,
        and the minimal metrics-only fast path otherwise."""
        return self._tracer() is not None

    def _new_id(self):
        span_id = self.next_id
        self.next_id = span_id - 1
        return span_id

    # -- stage spans --------------------------------------------------------

    def begin(self, stage, label=None, detail=None):
        """Open a stage span; returns an opaque token for :meth:`end`
        (``None`` when nothing is recording — :meth:`end` accepts it)."""
        tracer = self._tracer()
        if tracer is None and self._metrics() is None:
            return None
        span_id = self._new_id()
        if tracer is not None:
            tracer.stage_event(
                EV_SPAN_BEGIN, span_id, label if label is not None else stage,
                detail,
            )
        return (stage, span_id, self.clock())

    def end(self, token, detail=None):
        """Close a stage span; returns its duration in nanoseconds."""
        if token is None:
            return 0
        stage, span_id, started = token
        elapsed = self.clock() - started
        metrics = self._metrics()
        if metrics is not None:
            name = _SPAN_HIST.get(stage)
            if name is None:
                name = _SPAN_HIST[stage] = f"span_{stage}_ns"
            metrics.observe(name, elapsed)
            metrics.inc("spans")
        tracer = self._tracer()
        if tracer is not None:
            tracer.stage_event(EV_SPAN_END, span_id, stage, detail)
        return elapsed

    # -- typed point events -------------------------------------------------

    def point(self, kind, label=None, detail=None):
        """A typed instant event: counted in metrics, marked in trace."""
        metrics = self._metrics()
        if metrics is not None:
            metrics.inc(kind)
        tracer = self._tracer()
        if tracer is not None:
            tracer.stage_event(
                kind, self._new_id(), label if label is not None else kind,
                detail,
            )

    def observe(self, name, value):
        """Record one histogram observation (metrics only)."""
        metrics = self._metrics()
        if metrics is not None:
            metrics.observe(name, value)

    def disk_spill(self, nbytes):
        metrics = self._metrics()
        if metrics is not None:
            metrics.inc(EV_DISK_SPILL)
            metrics.observe("disk_spill_bytes", nbytes)
        tracer = self._tracer()
        if tracer is not None:
            tracer.stage_event(EV_DISK_SPILL, self._new_id(), "disk_spill",
                               nbytes)

    # -- the query root -----------------------------------------------------

    def begin_query(self, label=None):
        return self.begin(STAGE_QUERY, label=label)

    def end_query(self, token, answers):
        """Close a root span: latency, answer count and table-space
        histograms, plus the ``queries`` counter."""
        if token is None:
            return 0
        elapsed = self.end(token, detail=answers)
        metrics = self._metrics()
        if metrics is not None:
            metrics.inc("queries")
            metrics.observe("query_latency_ns", elapsed)
            metrics.observe("query_answers", answers)
            metrics.observe("table_space_bytes", self.table_space_bytes())
        return elapsed

    # -- the metrics-only fast path -----------------------------------------
    #
    # With tracing off there is no timeline to draw, so the engine's
    # query paths skip the parse/SLG child spans and record only the
    # root measurements — two clock reads and two histogram
    # observations per query.  The overhead budget here is ~1 µs: the
    # BENCH_hotpath fact-probe series issues 7 µs queries, and the
    # enabled-mode geomean claim in EXPERIMENTS P7 depends on this
    # path staying minimal.  Coarse, amortized stages (consult,
    # analysis, compile, hybrid, flush, repair, spills) keep their
    # always-on spans via begin/end above.

    def begin_query_fast(self):
        """Start timing a query in metrics-only mode: just the clock
        value, or None when metrics are off/disabled."""
        metrics = self.engine.metrics
        if metrics is None or not metrics.enabled:
            return None
        return self.clock()

    def end_query_fast(self, started, answers):
        """Record one query: latency + answer histograms, ``queries``
        counter, and a table-space sample every ``_SPACE_EVERY``-th
        query.  Short runs get their table-space observation at
        snapshot time instead (``Engine.metrics_snapshot`` samples once
        per scrape), so a fresh engine's first query never pays a
        full-table walk.  The two ``Histogram.observe`` bodies are
        inlined — both values are non-negative ints here
        (``perf_counter_ns`` deltas and answer counts), and the method
        dispatch is measurable against a ~7 µs fact-probe query."""
        if started is None:
            return 0
        elapsed = self.clock() - started
        metrics = self.engine.metrics
        if metrics is None or not metrics.enabled:
            return elapsed
        with metrics.lock:
            counters = metrics.counters
            counters["queries"] = counters.get("queries", 0) + 1
            histograms = metrics.histograms
            hist = histograms.get("query_latency_ns")
            if hist is None:
                hist = histograms["query_latency_ns"] = Histogram()
            buckets = hist.buckets
            index = elapsed.bit_length()
            buckets[index] = buckets.get(index, 0) + 1
            hist.count += 1
            hist.sum += elapsed
            if hist.min is None or elapsed < hist.min:
                hist.min = elapsed
            if hist.max is None or elapsed > hist.max:
                hist.max = elapsed
            hist = histograms.get("query_answers")
            if hist is None:
                hist = histograms["query_answers"] = Histogram()
            buckets = hist.buckets
            index = answers.bit_length()
            buckets[index] = buckets.get(index, 0) + 1
            hist.count += 1
            hist.sum += answers
            if hist.min is None or answers < hist.min:
                hist.min = answers
            if hist.max is None or answers > hist.max:
                hist.max = answers
        tick = self._tick = self._tick + 1
        if not tick % _SPACE_EVERY:
            metrics.observe("table_space_bytes", self.table_space_bytes())
        return elapsed

    # -- table-space byte estimates (memoized) ------------------------------

    def table_space_bytes(self):
        """Byte estimate over all *completed* tables, memoized per
        ``(frame.seq, answer_count)`` so warm repeated queries pay a
        dict probe per frame, not a term walk.  Large tables are
        estimated from a ``_BYTES_SAMPLE``-answer sample scaled by the
        answer count — the numbers are heap estimates either way, and
        a full walk of a fresh multi-thousand-answer table would
        dominate the query it is supposed to measure."""
        from .profile import estimate_table_bytes, estimate_term_bytes

        cache = self._bytes_cache
        if len(cache) > 4096:
            cache.clear()
        total = 0
        for frame in self.engine.tables.all_frames():
            if not frame.complete:
                continue
            count = frame.answer_count()
            key = (frame.seq, count)
            value = cache.get(key)
            if value is None:
                if count <= _BYTES_SAMPLE:
                    value = estimate_table_bytes(frame)
                else:
                    seen = set()
                    sampled = 0
                    walked = 0
                    for answer in frame.answers:
                        sampled += estimate_term_bytes(answer, seen)
                        walked += 1
                        if walked >= _BYTES_SAMPLE:
                            break
                    value = (sampled * count) // walked
                cache[key] = value
            total += value
        return total

    def __repr__(self):
        return (
            f"<SpanRecorder metrics={'on' if self._metrics() else 'off'} "
            f"trace={'on' if self._tracer() else 'off'}>"
        )
