"""Per-subgoal spans: self time, answers, consumers, table-space bytes.

The bench suite can say *that* a number moved; this module says *which
subgoal* moved it.  Each tabled subgoal gets a span that opens when its
generator is created (or when the hybrid bridge takes it) and closes
when its frame completes.  Between profiling events, elapsed wall time
is charged to the innermost open span — so a subgoal's **self time** is
the time during which it was the innermost incomplete generator, with
inner subgoals' time excluded and time across suspension/resumption
attributed to whichever subgoal the scheduler was actually advancing.

Spans survive suspension and resumption unchanged: a non-leader
generator that exhausts its clauses keeps its span open until its SCC
leader completes the whole component (completion closes the members in
one sweep, exactly as ``mark_complete`` does).  Abandoned runs close
their incomplete spans on cleanup so the stack never leaks across
queries.

The report is computed on demand, not during tracing: answer counts
come from the live frames, and table-space byte estimates walk the
stored answers with ``sys.getsizeof`` (structure shared between
answers is counted once per report row — it is an estimate, in the
spirit of XSB's "table space used" statistic, not an allocator audit).
"""

from __future__ import annotations

import sys
import time

__all__ = [
    "Profiler",
    "estimate_term_bytes",
    "estimate_table_bytes",
    "format_profile",
    "aggregate_top",
    "format_top",
]


def estimate_term_bytes(term, _seen=None):
    """Rough heap footprint of one term, shared structure deduplicated.

    Iterative (no recursion — answers can be as deep as the term
    kernels allow) and id-deduplicated, so interned atoms and shared
    subterms count once per call.  Pass a shared ``_seen`` set to
    deduplicate across several terms of one table.
    """
    seen = _seen if _seen is not None else set()
    total = 0
    stack = [term]
    while stack:
        node = stack.pop()
        marker = id(node)
        if marker in seen:
            continue
        seen.add(marker)
        total += sys.getsizeof(node)
        args = getattr(node, "args", None)
        if args is not None:
            total += sys.getsizeof(args)
            stack.extend(args)
    return total


def estimate_table_bytes(frame):
    """Byte estimate for one subgoal frame's slice of table space:
    the frame record, its call key, and every stored answer."""
    seen = set()
    total = sys.getsizeof(frame) + estimate_term_bytes(frame.key, seen)
    for answer in frame.answers:
        total += estimate_term_bytes(answer, seen)
    return total


class Profiler:
    """Interval-attributed spans over the tabled-subgoal lifecycle.

    The machine calls :meth:`enter` when a generator (or hybrid route)
    opens a subgoal, :meth:`exit` when its frame completes (or its run
    is abandoned), and :meth:`note_consumer` when a consumer suspends
    on it.  Everything is keyed by the frame's stable sequence number;
    the shared :class:`~repro.obs.trace.SubgoalRegistry` turns those
    back into printable subgoals at report time.
    """

    __slots__ = ("enabled", "registry", "clock", "stack", "last",
                 "self_ns", "opened", "closed", "consumers")

    def __init__(self, registry, clock=None):
        self.enabled = True
        self.registry = registry
        self.clock = clock if clock is not None else time.perf_counter_ns
        self.stack = []       # seq numbers of open spans, innermost last
        self.last = None      # timestamp of the previous profiling event
        self.self_ns = {}     # seq -> accumulated self time
        self.opened = {}      # seq -> span-open timestamp
        self.closed = {}      # seq -> span-close timestamp
        self.consumers = {}   # seq -> suspension count

    def _charge(self, now):
        if self.stack and self.last is not None:
            top = self.stack[-1]
            self.self_ns[top] = self.self_ns.get(top, 0) + (now - self.last)
        self.last = now

    # -- the hook-site API --------------------------------------------------

    def enter(self, frame):
        """A generator (or the hybrid bridge) opened this subgoal."""
        now = self.clock()
        self._charge(now)
        self.registry.note(frame)
        seq = frame.seq
        self.self_ns.setdefault(seq, 0)
        self.opened.setdefault(seq, now)
        self.stack.append(seq)

    def exit(self, frame):
        """The frame completed (or its run was abandoned)."""
        now = self.clock()
        self._charge(now)
        seq = frame.seq
        self.closed[seq] = now
        # Completion closes a whole SCC leader-first, so the span being
        # closed is not necessarily the innermost; remove it wherever it
        # sits (sequence numbers are unique, so at most one occurrence).
        stack = self.stack
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == seq:
                del stack[index]
                break

    def note_consumer(self, frame):
        """A consumer suspended on this subgoal's incomplete table."""
        seq = frame.seq
        self.consumers[seq] = self.consumers.get(seq, 0) + 1

    # -- reporting ----------------------------------------------------------

    def clear(self):
        self.stack = []
        self.last = None
        self.self_ns = {}
        self.opened = {}
        self.closed = {}
        self.consumers = {}
        return self

    def span_count(self):
        return len(self.opened)

    def total_self_ns(self):
        return sum(self.self_ns.values())

    def report(self):
        """Per-subgoal rows, most expensive (self time) first.

        Each row: ``{"seq", "subgoal", "self_ns", "answers",
        "consumers", "bytes", "state"}``.  ``answers``/``bytes``/
        ``state`` read the live frame through the registry; a frame
        that was deleted (tcut, abandoned run) reports what the
        registry last saw of it.
        """
        registry = self.registry
        rows = []
        for seq in self.opened:
            frame = registry.frames.get(seq)
            if frame is not None:
                answers = frame.answer_count()
                space = estimate_table_bytes(frame)
                state = frame.state
                indicator = frame.indicator
            else:  # pragma: no cover - registry always notes on enter
                answers, space, state = 0, 0, "unknown"
                indicator = f"subgoal#{seq}"
            rows.append({
                "seq": seq,
                "subgoal": registry.label(seq),
                "indicator": indicator,
                "self_ns": self.self_ns.get(seq, 0),
                "answers": answers,
                "consumers": self.consumers.get(seq, 0),
                "bytes": space,
                "state": state,
            })
        rows.sort(key=lambda row: (-row["self_ns"], row["seq"]))
        return rows

    def __repr__(self):
        state = "on" if self.enabled else "off"
        return (
            f"<Profiler {state} {len(self.opened)} spans, "
            f"{len(self.stack)} open>"
        )


def aggregate_top(rows, limit=None):
    """Collapse :meth:`Profiler.report` rows per predicate — the data
    behind the REPL's ``:top`` view.

    Each aggregate row: ``{"pred", "self_ns", "answers", "tables",
    "consumers", "bytes", "answers_per_s"}``, sorted by self time
    descending.  ``answers_per_s`` is the predicate's answer rate over
    its own self time (None when no time was charged to it).
    """
    grouped = {}
    for row in rows:
        agg = grouped.get(row["indicator"])
        if agg is None:
            agg = grouped[row["indicator"]] = {
                "pred": row["indicator"],
                "self_ns": 0,
                "answers": 0,
                "tables": 0,
                "consumers": 0,
                "bytes": 0,
            }
        agg["self_ns"] += row["self_ns"]
        agg["answers"] += row["answers"]
        agg["tables"] += 1
        agg["consumers"] += row["consumers"]
        agg["bytes"] += row["bytes"]
    out = sorted(
        grouped.values(), key=lambda agg: (-agg["self_ns"], agg["pred"])
    )
    for agg in out:
        agg["answers_per_s"] = (
            agg["answers"] / (agg["self_ns"] / 1e9)
            if agg["self_ns"] > 0 else None
        )
    return out[:limit] if limit is not None else out


def format_top(rows, limit=10):
    """Plain-text ``:top`` table for :func:`aggregate_top` rows."""
    rows = rows[:limit]
    headers = ("pred", "self_ms", "answers", "ans/s", "tables", "bytes")
    cells = [
        (
            agg["pred"],
            f"{agg['self_ns'] / 1e6:.3f}",
            str(agg["answers"]),
            f"{agg['answers_per_s']:.0f}" if agg["answers_per_s"] is not None
            else "-",
            str(agg["tables"]),
            str(agg["bytes"]),
        )
        for agg in rows
    ]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_profile(rows):
    """Plain-text table for a :meth:`Profiler.report` result."""
    headers = ("subgoal", "self_ms", "answers", "consumers", "bytes", "state")
    cells = [
        (
            row["subgoal"],
            f"{row['self_ns'] / 1e6:.3f}",
            str(row["answers"]),
            str(row["consumers"]),
            str(row["bytes"]),
            row["state"],
        )
        for row in rows
    ]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells
        else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in cells:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
