"""Interfaces with a persistent store (section 4.6).

XSB computes only on in-memory data, so bulk communication with the
backing store matters.  Three load paths, fastest last:

* the **general reader** (:func:`consult_text_file`) parses arbitrary
  HiLog terms with operators — flexible but slow, "usually takes
  several milliseconds even for simple terms";
* the **formatted read** (:func:`load_formatted`) reads highly
  structured tuple files without the parser, asserting straight into
  indexed dynamic code — "about a millisecond per fact including
  simple index maintenance" on the paper's hardware;
* **object files** (:mod:`repro.wam.objfile`) load precompiled code
  ~12x faster than formatted read + assert.

Two set-at-a-time accelerations of those paths live here too:

* the **bulk formatted read** (:func:`bulk_load_formatted`) parses a
  whole file into frozen rows (shared atom intern table) and installs
  them as one batch — one index build per relation instead of one per
  fact;
* the **consult cache** (:mod:`repro.storage.objcache`) is the engine
  tier's object file: ``Engine.consult_file`` keys a serialized,
  pre-compiled consult by source hash and replays it on repeat loads.
"""

from .objcache import cache_key, consult_file_cached, default_cache_dir
from .textio import (
    bulk_load_formatted,
    bulk_load_formatted_file,
    consult_text_file,
    dump_formatted,
    load_formatted,
    load_formatted_file,
    parse_formatted_line,
)

__all__ = [
    "consult_text_file",
    "load_formatted",
    "load_formatted_file",
    "bulk_load_formatted",
    "bulk_load_formatted_file",
    "dump_formatted",
    "parse_formatted_line",
    "default_cache_dir",
    "cache_key",
    "consult_file_cached",
]
