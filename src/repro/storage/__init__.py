"""Interfaces with a persistent store (section 4.6).

XSB computes only on in-memory data, so bulk communication with the
backing store matters.  Three load paths, fastest last:

* the **general reader** (:func:`consult_text_file`) parses arbitrary
  HiLog terms with operators — flexible but slow, "usually takes
  several milliseconds even for simple terms";
* the **formatted read** (:func:`load_formatted`) reads highly
  structured tuple files without the parser, asserting straight into
  indexed dynamic code — "about a millisecond per fact including
  simple index maintenance" on the paper's hardware;
* **object files** (:mod:`repro.wam.objfile`) load precompiled code
  ~12x faster than formatted read + assert.
"""

from .textio import (
    consult_text_file,
    dump_formatted,
    load_formatted,
    load_formatted_file,
    parse_formatted_line,
)

__all__ = [
    "consult_text_file",
    "load_formatted",
    "load_formatted_file",
    "dump_formatted",
    "parse_formatted_line",
]
