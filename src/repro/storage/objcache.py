"""The hashed consult cache — section 4.6's object files, engine tier.

"Static code is translated by the XSB compiler into object files ...
loading an object file is about 12x faster than loading through the
formatted read and assert."  XSB keys object files by file name and
lets ``consult`` pick the ``.O`` over the ``.P`` when it is newer; we
key entries by a *content hash* instead, so an entry can never go
stale against its source — editing the file simply misses the cache.

The key covers everything that can change what consulting a given
byte string produces:

* the source bytes themselves,
* the serialization :data:`~repro.wam.objfile.FORMAT_VERSION`,
* the engine's HiLog-specialization flag and pre-consult HiLog symbol
  set (both change the compiled clauses), and
* the operator table signature (operators change how the source
  *parses*).

A hit replays the recorded consult event stream
(:func:`repro.lang.reader.replay_events`): declarations and load-time
goals re-run in order, clause batches install pre-compiled.  A corrupt,
truncated or stale-format entry is silently discarded and the source
recompiled (counted in ``objcache_invalid``); errors while *writing*
an entry are swallowed too — the cache is an accelerator, never a
point of failure.  Errors raised by the program itself (parse errors,
failing load-time goals) propagate identically on both paths.
"""

from __future__ import annotations

import hashlib
import os
import pickle

from ..errors import StorageError
from ..wam.objfile import (
    FORMAT_VERSION,
    load_engine_cache,
    save_engine_cache,
)

__all__ = ["default_cache_dir", "cache_key", "consult_file_cached"]


def default_cache_dir():
    """The entry directory: ``REPRO_OBJCACHE_DIR`` or a user cache."""
    configured = os.environ.get("REPRO_OBJCACHE_DIR")
    if configured:
        return configured
    return os.path.join(
        os.path.expanduser("~"), ".cache", "repro", "objcache"
    )


def _operator_signature(operators):
    """Deterministic rendering of the operator table's live state."""
    rows = []
    for fixity, table in (
        ("pre", operators._prefix),
        ("in", operators._infix),
        ("post", operators._postfix),
    ):
        for name in sorted(table):
            op = table[name]
            rows.append(f"{fixity} {name} {op.priority} {op.type_code}")
    return "\n".join(rows)


def cache_key(source, engine):
    """Content hash naming the cache entry for ``source`` bytes.

    Everything that influences what the consult produces is folded in;
    two engines in the same pre-consult state hash a given file to the
    same entry, and any drift — source edit, serialization format
    bump, operator redefinition, HiLog declarations carried over from
    an earlier consult — lands on a different entry rather than a
    stale one.
    """
    digest = hashlib.sha256()
    digest.update(source)
    digest.update(b"\x00format:%d" % FORMAT_VERSION)
    digest.update(
        b"\x00specialize:1" if engine.hilog_specialize
        else b"\x00specialize:0"
    )
    digest.update(b"\x00hilog:")
    digest.update(",".join(sorted(engine.hilog_symbols)).encode("utf-8"))
    digest.update(b"\x00ops:")
    digest.update(_operator_signature(engine.operators).encode("utf-8"))
    return digest.hexdigest()


def consult_file_cached(engine, path, cache_dir=None):
    """Consult ``path``, serving from / refreshing the consult cache.

    Hit: deserialize and replay, no lexing, parsing or compiling.
    Miss: consult from source while recording, then write the entry
    atomically.  Invalid entry: discard, recompile, rewrite.
    """
    from ..lang.reader import ProgramReader, replay_events

    with open(path, "rb") as handle:
        source = handle.read()
    if cache_dir is None:
        cache_dir = default_cache_dir()
    entry = os.path.join(cache_dir, cache_key(source, engine) + ".wamc")
    stats = engine.stats if engine.stats.enabled else None

    events = None
    if os.path.exists(entry):
        try:
            events = load_engine_cache(entry)
        except (StorageError, OSError, pickle.PickleError, EOFError,
                AttributeError, ImportError, IndexError, TypeError,
                ValueError):
            # Corrupt, truncated, stale format, or unpicklable payload:
            # behave exactly as if the entry were absent.
            if stats is not None:
                stats.objcache_invalid += 1
            events = None
    spans = engine.spans
    if events is not None:
        if stats is not None:
            stats.objcache_hits += 1
        if spans is not None:
            from ..obs.trace import EV_OBJCACHE_HIT

            spans.point(EV_OBJCACHE_HIT, label=f"objcache:{path}")
        replay_events(engine, events)
        return engine

    if stats is not None:
        stats.objcache_misses += 1
    if spans is not None:
        from ..obs.trace import EV_OBJCACHE_MISS

        spans.point(EV_OBJCACHE_MISS, label=f"objcache:{path}")
    record = []
    ProgramReader(engine, record=record).consult(
        source.decode("utf-8")
    )
    try:
        os.makedirs(cache_dir, exist_ok=True)
        save_engine_cache(entry, record)
    except (OSError, pickle.PickleError):
        return engine  # unwritable cache never fails the consult
    if stats is not None:
        stats.objcache_writes += 1
    return engine
