"""ASCII interfaces: the general reader and the formatted reader.

The formatted reader handles the common database case: one fact per
line, fields separated by a delimiter, no operator parsing and no
arbitrary term structure.  Fields are typed by shape: an integer-
looking field becomes an integer, a float-looking field a float, and
anything else an atom.  Each line is asserted as one dynamic fact with
index maintenance, which is exactly the paper's "formatted read …
read and assert a fact in about a millisecond … including simple
index maintenance".
"""

from __future__ import annotations

from ..errors import StorageError
from ..store.codec import parse_field

__all__ = [
    "consult_text_file",
    "parse_formatted_line",
    "load_formatted",
    "load_formatted_file",
    "dump_formatted",
]


def consult_text_file(engine, path):
    """The general reader: full HiLog parsing of a program file."""
    return engine.consult_file(path)


def parse_formatted_line(line, delimiter="\t"):
    """Split one formatted line into typed field values.

    Field typing is the shared codec's :func:`repro.store.parse_field`
    (int-looking → int, float-looking → float, else atom string).
    """
    return tuple(
        parse_field(field) for field in line.rstrip("\n").split(delimiter)
    )


def load_formatted(engine, name, lines, delimiter="\t", arity=None):
    """Assert one dynamic fact per formatted line; returns the count.

    Raises :class:`~repro.errors.StorageError` on ragged rows when
    ``arity`` is given (or inferred from the first row).
    """
    count = 0
    for line in lines:
        if not line.strip():
            continue
        row = parse_formatted_line(line, delimiter)
        if arity is None:
            arity = len(row)
        elif len(row) != arity:
            raise StorageError(
                f"{name}: expected {arity} fields, got {len(row)}: {line!r}"
            )
        engine.add_fact(name, *row)
        count += 1
    return count


def load_formatted_file(engine, name, path, delimiter="\t"):
    with open(path, "r", encoding="utf-8") as handle:
        return load_formatted(engine, name, handle, delimiter)


def dump_formatted(engine, name, arity, path, delimiter="\t"):
    """Write a dynamic relation back out as a formatted file.

    Only fact predicates with atomic fields round-trip; anything else
    needs the general writer.
    """
    from ..terms import Atom

    pred = engine.predicate(name, arity)
    if pred is None:
        raise StorageError(f"unknown predicate {name}/{arity}")
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for clause in pred.clauses:
            if clause.body:
                raise StorageError(
                    f"{name}/{arity} has rules; dump_formatted handles facts only"
                )
            fields = []
            for arg in clause.head_args:
                if isinstance(arg, Atom):
                    fields.append(arg.name)
                elif isinstance(arg, (int, float)):
                    fields.append(repr(arg))
                else:
                    raise StorageError(
                        f"{name}/{arity}: non-atomic field {arg!r}"
                    )
            handle.write(delimiter.join(fields) + "\n")
            written += 1
    return written
