"""ASCII interfaces: the general reader and the formatted readers.

The formatted reader handles the common database case: one fact per
line, fields separated by a delimiter, no operator parsing and no
arbitrary term structure.  Fields are typed by shape: an integer-
looking field becomes an integer, a float-looking field a float, and
anything else an atom.  :func:`load_formatted` asserts each line as
one dynamic fact with index maintenance, which is exactly the paper's
"formatted read … read and assert a fact in about a millisecond …
including simple index maintenance".

:func:`bulk_load_formatted` is the set-at-a-time fast path over the
same format: the whole file parses into frozen codec rows first (one
shared intern table, so repeated atom fields alias one string object),
then lands in one :meth:`Predicate.extend_facts` batch — one database
probe, one mutation stamp, one index build, and the predicate's fact
store deposited eagerly so the fused fact matcher is hot from the
first call.  This is the formatted-read half of the paper's section
4.6 loading story; the object-file half is the consult cache
(:mod:`repro.storage.objcache`).
"""

from __future__ import annotations

import itertools

from ..errors import StorageError
from ..store.codec import parse_field

# Distinct strings the bulk loader's intern table may hold before it
# resets; bounds the loader's own footprint on high-cardinality data.
_INTERN_CAP = 1 << 16

__all__ = [
    "consult_text_file",
    "parse_formatted_line",
    "load_formatted",
    "load_formatted_file",
    "bulk_load_formatted",
    "bulk_load_formatted_file",
    "dump_formatted",
]


def consult_text_file(engine, path):
    """The general reader: full HiLog parsing of a program file."""
    return engine.consult_file(path)


def parse_formatted_line(line, delimiter="\t"):
    """Split one formatted line into typed field values.

    Field typing is the shared codec's :func:`repro.store.parse_field`
    (int-looking → int, float-looking → float, else atom string).
    """
    return tuple(
        parse_field(field) for field in line.rstrip("\n").split(delimiter)
    )


def load_formatted(engine, name, lines, delimiter="\t", arity=None):
    """Assert one dynamic fact per formatted line; returns the count.

    Raises :class:`~repro.errors.StorageError` on ragged rows when
    ``arity`` is given (or inferred from the first row).
    """
    count = 0
    for line in lines:
        if not line.strip():
            continue
        row = parse_formatted_line(line, delimiter)
        if arity is None:
            arity = len(row)
        elif len(row) != arity:
            raise StorageError(
                f"{name}: expected {arity} fields, got {len(row)}: {line!r}"
            )
        engine.add_fact(name, *row)
        count += 1
    return count


def load_formatted_file(engine, name, path, delimiter="\t"):
    with open(path, "r", encoding="utf-8") as handle:
        return load_formatted(engine, name, handle, delimiter)


def bulk_load_formatted(
    engine,
    name,
    lines,
    delimiter="\t",
    arity=None,
    backend=None,
    materialize="rows",
):
    """Bulk-ingest formatted lines as one batch; returns the fact count.

    All lines parse to frozen codec rows first (shared intern table:
    repeated atom fields are one string object), then install through
    :meth:`repro.engine.Engine.bulk_add_facts` — see there for the
    ``materialize`` modes (``"rows"`` keeps the relation as a
    TupleStore with lazy clause materialization and collapses
    duplicate lines, relation-style; ``"clauses"`` builds one clause
    per line like :func:`load_formatted`, just batched) and the
    ``backend`` knob (``"disk"`` keeps the rows mmap-backed).

    Raises :class:`~repro.errors.StorageError` on ragged rows when
    ``arity`` is given (or inferred from the first row).  Lines
    *stream* into the store — a row-addressable backend never holds
    the parsed relation as one Python list, so loading a multi-million
    fact EDB peaks at the store's own footprint (for the disk backend:
    the offsets array plus one spill buffer).  A ragged line aborts
    the load mid-stream; rows before it may already be installed.
    """
    intern = {}

    def parsed():
        expected = arity
        for line in lines:
            if not line.strip():
                continue
            if len(intern) > _INTERN_CAP:
                # High-cardinality fields (unique payloads) would grow
                # the table without ever aliasing anything; reset it.
                # Low-cardinality columns — the fields interning is
                # for — repopulate within a few lines.
                intern.clear()
            row = tuple(
                parse_field(field, intern)
                for field in line.rstrip("\n").split(delimiter)
            )
            if expected is None:
                expected = len(row)
            elif len(row) != expected:
                raise StorageError(
                    f"{name}: expected {expected} fields, "
                    f"got {len(row)}: {line!r}"
                )
            yield row

    iterator = parsed()
    if arity is None:
        first = next(iterator, None)
        if first is None:
            return 0
        arity = len(first)
        iterator = itertools.chain((first,), iterator)
    return engine.bulk_add_facts(
        name, arity, iterator, backend=backend, materialize=materialize
    )


def bulk_load_formatted_file(
    engine,
    name,
    path,
    delimiter="\t",
    arity=None,
    backend=None,
    materialize="rows",
):
    with open(path, "r", encoding="utf-8") as handle:
        return bulk_load_formatted(
            engine, name, handle, delimiter,
            arity=arity, backend=backend, materialize=materialize,
        )


def dump_formatted(engine, name, arity, path, delimiter="\t"):
    """Write a dynamic relation back out as a formatted file.

    Only fact predicates with atomic fields round-trip; anything else
    needs the general writer.  An atom whose name contains the
    delimiter (or a newline) cannot round-trip either — the formatted
    reader would split it into extra fields — so such rows are
    rejected here, at dump time, instead of writing a file that
    silently re-loads as different facts.
    """
    from ..terms import Atom

    pred = engine.predicate(name, arity)
    if pred is None:
        raise StorageError(f"unknown predicate {name}/{arity}")
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for clause in pred.clauses:
            if clause.body:
                raise StorageError(
                    f"{name}/{arity} has rules; dump_formatted handles facts only"
                )
            fields = []
            for arg in clause.head_args:
                if isinstance(arg, Atom):
                    text = arg.name
                    if delimiter in text or "\n" in text or "\r" in text:
                        raise StorageError(
                            f"{name}/{arity}: field {text!r} contains the "
                            f"delimiter or a newline and cannot round-trip"
                        )
                    fields.append(text)
                elif isinstance(arg, (int, float)):
                    fields.append(repr(arg))
                else:
                    raise StorageError(
                        f"{name}/{arity}: non-atomic field {arg!r}"
                    )
            handle.write(delimiter.join(fields) + "\n")
            written += 1
    return written
