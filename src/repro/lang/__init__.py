"""Prolog/HiLog syntax: lexer, operator tables, parser, writer, reader."""

from .lexer import Lexer, tokenize
from .ops import OperatorTable
from .parser import APPLY, Parser, parse_term, parse_terms
from .writer import TermWriter, term_to_str

__all__ = [
    "Lexer",
    "tokenize",
    "OperatorTable",
    "Parser",
    "parse_term",
    "parse_terms",
    "term_to_str",
    "TermWriter",
    "APPLY",
]
