"""Tokenizer for XSB-style Prolog/HiLog source text.

Follows ISO Prolog lexical conventions where they matter for this
engine: symbolic atoms are maximal runs of symbol characters, ``(``
directly after a token is a *functor* open (``OPEN_CT``), the clause
terminator is ``.`` followed by layout or end of input, and both ``%``
line comments and ``/* */`` block comments are skipped.
"""

from __future__ import annotations

from sys import intern

from ..errors import ParseError
from .tokens import Token, TokenType

__all__ = ["tokenize", "Lexer"]

_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")
_SOLO = set(",;!|")
_PUNCT = set("()[]{},|")


def _is_ident_start(ch):
    return ch.isalpha() and ch.islower()


def _is_ident_char(ch):
    return ch.isalnum() or ch == "_"


class Lexer:
    """Streaming tokenizer over a source string."""

    def __init__(self, text):
        self.text = text
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message):
        raise ParseError(message, self.line, self.col)

    def _peek(self, offset=0):
        index = self.pos + offset
        if index < len(self.text):
            return self.text[index]
        return ""

    def _advance(self, count=1):
        # Batched: newline bookkeeping via count/rfind instead of a
        # Python loop per character (tokenizing is a load-time hot path).
        text = self.text
        pos = self.pos
        end = pos + count
        if end > len(text):
            end = len(text)
        newlines = text.count("\n", pos, end)
        if newlines:
            self.line += newlines
            self.col = end - text.rfind("\n", pos, end)
        else:
            self.col += end - pos
        self.pos = end

    def _skip_layout(self):
        """Skip whitespace and comments; return True if any was skipped."""
        skipped = False
        text = self.text
        size = len(text)
        while self.pos < size:
            ch = text[self.pos]
            if ch.isspace():
                end = self.pos + 1
                while end < size and text[end].isspace():
                    end += 1
                self._advance(end - self.pos)
                skipped = True
            elif ch == "%":
                end = text.find("\n", self.pos)
                self._advance((end if end != -1 else size) - self.pos)
                skipped = True
            elif ch == "/" and self._peek(1) == "*":
                end = text.find("*/", self.pos + 2)
                if end == -1:
                    self._advance(size - self.pos)
                    self._error("unterminated block comment")
                self._advance(end + 2 - self.pos)
                skipped = True
            else:
                break
        return skipped

    def tokens(self):
        """Yield tokens, ending with a single EOF token."""
        previous_was_term_like = False
        while True:
            had_layout = self._skip_layout()
            if self.pos >= len(self.text):
                yield Token(TokenType.EOF, None, self.line, self.col)
                return
            line, col = self.line, self.col
            ch = self.text[self.pos]

            if ch == "(":
                self._advance()
                kind = (
                    TokenType.OPEN_CT
                    if previous_was_term_like and not had_layout
                    else TokenType.PUNCT
                )
                yield Token(kind, "(", line, col)
                previous_was_term_like = False
                continue

            if ch in _PUNCT:
                self._advance()
                yield Token(TokenType.PUNCT, ch, line, col)
                previous_was_term_like = ch in ")]}"
                continue

            if ch.isdigit():
                token = self._number(line, col)
                yield token
                previous_was_term_like = True
                continue

            if ch == "_" or (ch.isalpha() and ch.isupper()):
                start = self.pos
                text = self.text
                size = len(text)
                end = start + 1
                while end < size and _is_ident_char(text[end]):
                    end += 1
                self._advance(end - start)
                # Interned so repeated occurrences of one name across a
                # program share a single string object (and the varmap /
                # atom-table lookups they key compare by identity).
                name = intern(text[start:end])
                yield Token(TokenType.VAR, name, line, col)
                previous_was_term_like = True
                continue

            if _is_ident_start(ch):
                start = self.pos
                text = self.text
                size = len(text)
                end = start + 1
                while end < size and _is_ident_char(text[end]):
                    end += 1
                self._advance(end - start)
                name = intern(text[start:end])
                yield Token(TokenType.ATOM, name, line, col)
                previous_was_term_like = True
                continue

            if ch == "'":
                name = intern(self._quoted("'", line, col))
                yield Token(TokenType.ATOM, name, line, col)
                previous_was_term_like = True
                continue

            if ch == '"':
                yield Token(TokenType.STRING, self._quoted('"', line, col), line, col)
                previous_was_term_like = True
                continue

            if ch in _SOLO:
                self._advance()
                yield Token(TokenType.ATOM, ch, line, col)
                previous_was_term_like = ch in ")!"
                continue

            if ch in _SYMBOL_CHARS:
                start = self.pos
                text = self.text
                size = len(text)
                end = start + 1
                while end < size and text[end] in _SYMBOL_CHARS:
                    end += 1
                self._advance(end - start)
                symbol = text[start:end]
                if symbol == "." and self._at_clause_end():
                    yield Token(TokenType.END, ".", line, col)
                    previous_was_term_like = False
                else:
                    yield Token(TokenType.ATOM, intern(symbol), line, col)
                    previous_was_term_like = False
                continue

            self._error(f"unexpected character {ch!r}")

    def _at_clause_end(self):
        """A lone '.' ends a clause when followed by layout, '%', or EOF."""
        nxt = self._peek()
        return nxt == "" or nxt.isspace() or nxt == "%"

    def _number(self, line, col):
        start = self.pos
        text = self.text
        # Character-code literal 0'c (ISO).
        if text[self.pos] == "0" and self._peek(1) == "'":
            self._advance(2)
            if self.pos >= len(text):
                self._error("unterminated character code")
            ch = text[self.pos]
            if ch == "\\":
                value, length = self._escape(self.pos + 1)
                self._advance(length)
                return Token(TokenType.INT, value, line, col)
            self._advance()
            return Token(TokenType.INT, ord(ch), line, col)
        # Radix literals 0x.., 0o.., 0b..
        if text[self.pos] == "0" and self._peek(1) in "xob":
            base = {"x": 16, "o": 8, "b": 2}[self._peek(1)]
            digits_start = self.pos + 2
            end = digits_start
            while end < len(text) and text[end].isalnum():
                end += 1
            literal = text[digits_start:end]
            try:
                value = int(literal, base)
            except ValueError:
                self._error(f"bad radix literal 0{self._peek(1)}{literal}")
            self._advance(end - self.pos)
            return Token(TokenType.INT, value, line, col)
        size = len(text)
        end = self.pos
        while end < size and text[end].isdigit():
            end += 1
        self._advance(end - self.pos)
        is_float = False
        if (
            self._peek() == "."
            and self._peek(1).isdigit()
        ):
            is_float = True
            end = self.pos + 1
            while end < size and text[end].isdigit():
                end += 1
            self._advance(end - self.pos)
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            end = self.pos
            while end < size and text[end].isdigit():
                end += 1
            self._advance(end - self.pos)
        literal = text[start : self.pos]
        if is_float:
            return Token(TokenType.FLOAT, float(literal), line, col)
        return Token(TokenType.INT, int(literal), line, col)

    _ESCAPES = {
        "n": "\n",
        "t": "\t",
        "r": "\r",
        "a": "\a",
        "b": "\b",
        "f": "\f",
        "v": "\v",
        "\\": "\\",
        "'": "'",
        '"': '"',
        "`": "`",
        "0": "\0",
    }

    def _escape(self, index):
        """Decode the escape at ``text[index]``; return (codepoint, length
        consumed including the backslash)."""
        ch = self.text[index] if index < len(self.text) else ""
        if ch in self._ESCAPES:
            return ord(self._ESCAPES[ch]), 2
        if ch == "x":
            end = index + 1
            while end < len(self.text) and self.text[end] in "0123456789abcdefABCDEF":
                end += 1
            code = int(self.text[index + 1 : end], 16)
            if end < len(self.text) and self.text[end] == "\\":
                end += 1
            return code, end - index + 1
        self._error(f"unknown escape \\{ch}")

    def _quoted(self, quote, line, col):
        """Read a quoted atom or string body, handling escapes and the
        doubled-quote convention."""
        self._advance()  # opening quote
        parts = []
        while True:
            if self.pos >= len(self.text):
                raise ParseError("unterminated quoted token", line, col)
            ch = self.text[self.pos]
            if ch == quote:
                if self._peek(1) == quote:
                    parts.append(quote)
                    self._advance(2)
                    continue
                self._advance()
                return "".join(parts)
            if ch == "\\":
                if self._peek(1) == "\n":
                    self._advance(2)  # line continuation
                    continue
                code, length = self._escape(self.pos + 1)
                parts.append(chr(code))
                self._advance(length)
                continue
            parts.append(ch)
            self._advance()


def tokenize(text):
    """Tokenize ``text`` into a list of tokens (EOF-terminated)."""
    return list(Lexer(text).tokens())
