"""Operator tables (XSB integrates Prolog operators with HiLog syntax).

A fresh :class:`OperatorTable` carries the standard Prolog operators
plus the XSB extensions used in the paper: ``tnot/1``, ``e_tnot/1`` and
``table`` / ``hilog`` / ``index`` appear as ordinary (non-operator)
directives, while ``tnot`` and ``e_tnot`` parse as prefix operators so
rules read exactly as in the paper.
"""

from __future__ import annotations

from ..errors import ParseError

__all__ = ["OperatorTable", "Op", "PREFIX", "INFIX", "POSTFIX"]

PREFIX = "prefix"
INFIX = "infix"
POSTFIX = "postfix"

_VALID_TYPES = {
    "xfx": (INFIX, True, True),
    "xfy": (INFIX, True, False),
    "yfx": (INFIX, False, True),
    "fy": (PREFIX, None, False),
    "fx": (PREFIX, None, True),
    "xf": (POSTFIX, True, None),
    "yf": (POSTFIX, False, None),
}


class Op:
    """One operator definition.

    ``left_tight``/``right_tight`` record whether the corresponding
    argument must have *strictly lower* priority (the ``x`` positions of
    the ISO type codes).
    """

    __slots__ = ("name", "priority", "fixity", "type_code")

    def __init__(self, name, priority, type_code):
        if type_code not in _VALID_TYPES:
            raise ParseError(f"invalid operator type {type_code}")
        self.name = name
        self.priority = priority
        self.type_code = type_code
        self.fixity = _VALID_TYPES[type_code][0]

    @property
    def left_max(self):
        """Maximum priority allowed for a left argument (infix/postfix)."""
        strict = _VALID_TYPES[self.type_code][1]
        return self.priority - 1 if strict else self.priority

    @property
    def right_max(self):
        """Maximum priority allowed for a right argument (prefix/infix)."""
        strict = _VALID_TYPES[self.type_code][2]
        return self.priority - 1 if strict else self.priority


_STANDARD = [
    (":-", 1200, "xfx"),
    ("-->", 1200, "xfx"),
    (":-", 1200, "fx"),
    ("?-", 1200, "fx"),
    ("import", 1150, "fx"),
    ("export", 1150, "fx"),
    ("local", 1150, "fx"),
    ("from", 1100, "xfx"),
    ("table", 1150, "fx"),
    ("hilog", 1150, "fx"),
    ("dynamic", 1150, "fx"),
    ("discontiguous", 1150, "fx"),
    (";", 1100, "xfy"),
    ("->", 1050, "xfy"),
    (",", 1000, "xfy"),
    ("\\+", 900, "fy"),
    ("not", 900, "fy"),
    ("tnot", 900, "fy"),
    ("e_tnot", 900, "fy"),
    ("=", 700, "xfx"),
    ("\\=", 700, "xfx"),
    ("==", 700, "xfx"),
    ("\\==", 700, "xfx"),
    ("@<", 700, "xfx"),
    ("@>", 700, "xfx"),
    ("@=<", 700, "xfx"),
    ("@>=", 700, "xfx"),
    ("is", 700, "xfx"),
    ("=:=", 700, "xfx"),
    ("=\\=", 700, "xfx"),
    ("<", 700, "xfx"),
    (">", 700, "xfx"),
    ("=<", 700, "xfx"),
    (">=", 700, "xfx"),
    ("=..", 700, "xfx"),
    ("+", 500, "yfx"),
    ("-", 500, "yfx"),
    ("/\\", 500, "yfx"),
    ("\\/", 500, "yfx"),
    ("xor", 500, "yfx"),
    ("*", 400, "yfx"),
    ("/", 400, "yfx"),
    ("//", 400, "yfx"),
    ("mod", 400, "yfx"),
    ("rem", 400, "yfx"),
    ("<<", 400, "yfx"),
    (">>", 400, "yfx"),
    ("**", 200, "xfx"),
    ("^", 200, "xfy"),
    ("-", 200, "fy"),
    ("+", 200, "fy"),
    ("\\", 200, "fy"),
]


class OperatorTable:
    """Mutable operator table with the standard operators preloaded."""

    def __init__(self):
        self._prefix = {}
        self._infix = {}
        self._postfix = {}
        for name, priority, type_code in _STANDARD:
            self.add(priority, type_code, name)

    def add(self, priority, type_code, name):
        """Define (or with priority 0, remove) an operator — ``op/3``."""
        if not 0 <= priority <= 1200:
            raise ParseError(f"operator priority out of range: {priority}")
        op = Op(name, priority, type_code)
        table = {
            PREFIX: self._prefix,
            INFIX: self._infix,
            POSTFIX: self._postfix,
        }[op.fixity]
        if priority == 0:
            table.pop(name, None)
        else:
            table[name] = op

    def prefix(self, name):
        return self._prefix.get(name)

    def infix(self, name):
        return self._infix.get(name)

    def postfix(self, name):
        return self._postfix.get(name)

    def is_operator(self, name):
        return name in self._prefix or name in self._infix or name in self._postfix
