"""The program reader: consulting source text into an engine.

Handles clause terms and the directives the paper describes:

* ``:- table p/2.`` / ``:- table p/2, q/3.`` — declare tabled.
* ``:- table_all.`` — auto-table enough predicates to break all call
  graph loops in this consult unit (section 4.3).
* ``:- hilog h.`` — declare HiLog symbols (section 4.1).
* ``:- index(p/5, [1,2,3+5]).`` — hash indexing on fields or field
  combinations; ``:- index(p/5, 2).`` single field;
  ``:- index(p/2, trie).`` first-string indexing (section 4.5).
* ``:- dynamic p/2.`` — dynamic (assert/retract-able) predicate.
* ``:- op(Priority, Type, Name).`` — operator definitions.
* ``:- export p/2.`` / ``:- import p/2 from m.`` / ``:- local f/1.`` —
  module-system declarations (section 4.2).
* any other ``:- Goal`` — executed once when read.

Clauses are HiLog-encoded as they are read, buffered per consult unit,
optionally HiLog-specialized (section 4.7), then compiled.
"""

from __future__ import annotations

from ..errors import ParseError
from ..terms import Atom, Struct, deref, list_to_python
from .parser import Parser

__all__ = ["ProgramReader", "parse_indicator", "replay_events"]


def replay_events(engine, events):
    """Re-run a recorded consult event stream against ``engine``.

    This is the consult-cache hit path: declarations and load-time
    goals re-execute in their original order (their side effects are
    not cacheable), while clause batches install *pre-compiled* via
    :meth:`~repro.engine.database.Predicate.add_clauses` — one
    sequence assignment, one mutation stamp and one index build per
    predicate per batch, with no lexing, parsing or clause
    compilation anywhere.
    """
    reader = ProgramReader(engine)
    pending = []  # _directive may flush; always empty during replay
    for event in events:
        kind = event[0]
        if kind == "d":
            reader._directive(event[1], pending)
        elif kind == "g":
            engine.run_goal(event[1])
        elif kind == "t":
            engine.db.declare_tabled(event[1], event[2])
        elif kind == "c":
            groups = {}
            for clause in event[1]:
                groups.setdefault(
                    (clause.name, clause.arity), []
                ).append(clause)
            for (name, arity), group in groups.items():
                engine.db.ensure(name, arity).add_clauses(group)
        else:
            raise ParseError(f"unknown consult replay event {kind!r}")
    engine.modules.reset_to_default()


def parse_indicator(term):
    """Parse a ``name/arity`` term into a (name, arity) pair."""
    term = deref(term)
    if (
        isinstance(term, Struct)
        and term.name == "/"
        and len(term.args) == 2
    ):
        name = deref(term.args[0])
        arity = deref(term.args[1])
        if isinstance(name, Atom) and isinstance(arity, int):
            return name.name, arity
    raise ParseError(f"expected a predicate indicator, got {term!r}")


def _spec_list(term):
    """Flatten ``a, b, c`` or ``[a, b, c]`` directive arguments."""
    term = deref(term)
    if isinstance(term, Struct) and term.name == "," and len(term.args) == 2:
        return _spec_list(term.args[0]) + _spec_list(term.args[1])
    if isinstance(term, Struct) and term.name == "." and len(term.args) == 2:
        return [deref(t) for t in list_to_python(term)]
    return [term]


# Directive shapes handled declaratively by _directive; anything else
# in directive position runs as a load-time goal.  The consult cache
# records declarations and goals as distinct replay events, so the
# split is named here once.
_DECLARATIONS = frozenset([
    ("table", 1), ("hilog", 1), ("dynamic", 1), ("discontiguous", 1),
    ("index", 2), ("index", 3), ("op", 3), ("export", 1), ("local", 1),
    ("import", 1), ("module", 1), ("module", 2),
])


class ProgramReader:
    """Reads one or more consult units into an engine.

    With ``record`` (a list), every replayable consult event is
    appended as it happens — ``("d", directive)`` for declarations,
    ``("g", goal)`` for load-time goals, ``("t", name, arity)`` for
    tabling declarations made at flush time, ``("c", clauses)`` for
    each installed (compiled) clause batch.  The consult cache
    (:mod:`repro.storage.objcache`) serializes that stream and
    :func:`replay_events` re-runs it, skipping lexer, parser and
    clause compiler entirely.
    """

    def __init__(self, engine, record=None):
        self.engine = engine
        self.record = record

    def consult(self, text):
        """Consult source text: directives take effect in order; clauses
        are installed (and HiLog-specialized) at the end of the unit."""
        from ..hilog import hilog_encode

        engine = self.engine
        record = self.record
        parser = Parser(text, engine.operators)
        pending = []
        auto_table = False
        while True:
            result = parser.read_term()
            if result is None:
                break
            term, _varmap = result
            term = deref(term)
            if (
                isinstance(term, Struct)
                and term.name == ":-"
                and len(term.args) == 1
            ):
                directive = deref(term.args[0])
                if self._is_table_all(directive):
                    auto_table = True
                elif self._is_declaration(directive):
                    if record is not None:
                        record.append(("d", directive))
                    self._directive(directive, pending)
                else:
                    # A load-time goal: pending clauses land first.
                    self._flush(pending, auto_table=False)
                    if record is not None:
                        record.append(("g", directive))
                    engine.run_goal(directive)
                continue
            if (
                isinstance(term, Struct)
                and term.name == "?-"
                and len(term.args) == 1
            ):
                self._flush(pending, auto_table=False)
                goal = deref(term.args[0])
                if record is not None:
                    record.append(("g", goal))
                engine.run_goal(goal)
                continue
            from .dcg import is_dcg_rule, translate_dcg

            if is_dcg_rule(term):
                term = translate_dcg(term)
            encoded = hilog_encode(term, engine.hilog_symbols)
            pending.append(engine.modules.rename_clause(encoded))
        self._flush(pending, auto_table=auto_table)
        engine.modules.reset_to_default()

    # -- clause installation ---------------------------------------------------

    def _flush(self, pending, auto_table):
        if not pending:
            return
        engine = self.engine
        record = self.record
        clauses = pending[:]
        pending.clear()
        if engine.hilog_specialize:
            from ..hilog import specialize_batch

            report = []
            clauses = specialize_batch(clauses, report=report)
            # A tabling declaration on apply/N covers the predicates
            # specialization carves out of it.
            for apply_arity, spec_name, spec_arity in report:
                pred = engine.db.lookup("apply", apply_arity)
                if pred is not None and pred.tabled:
                    engine.db.declare_tabled(spec_name, spec_arity)
                    if record is not None:
                        record.append(("t", spec_name, spec_arity))
        if auto_table:
            from ..modules.table_all import select_tabled

            for name, arity in select_tabled(clauses):
                engine.db.declare_tabled(name, arity)
                if record is not None:
                    record.append(("t", name, arity))
        if record is None:
            for clause in clauses:
                engine.db.add_clause_term(clause)
        else:
            record.append(
                ("c", [engine.db.add_clause_term(c) for c in clauses])
            )

    # -- directives ----------------------------------------------------------------

    @staticmethod
    def _is_table_all(directive):
        return isinstance(directive, Atom) and directive.name == "table_all"

    @staticmethod
    def _is_declaration(directive):
        """True for directive shapes :meth:`_directive` handles itself
        (everything else in directive position is a load-time goal).
        Non-callable directives route through the declaration path so
        the error they raise is unchanged."""
        if isinstance(directive, Struct):
            return (directive.name, len(directive.args)) in _DECLARATIONS
        if isinstance(directive, Atom):
            return (directive.name, 0) in _DECLARATIONS
        return True

    def _directive(self, directive, pending):
        engine = self.engine
        directive = deref(directive)
        if isinstance(directive, Struct):
            name = directive.name
            args = directive.args
        elif isinstance(directive, Atom):
            name = directive.name
            args = ()
        else:
            raise ParseError(f"bad directive {directive!r}")

        if name == "table" and len(args) == 1:
            for spec in _spec_list(args[0]):
                engine.db.declare_tabled(*parse_indicator(spec))
            return
        if name == "hilog" and len(args) == 1:
            for spec in _spec_list(args[0]):
                spec = deref(spec)
                if not isinstance(spec, Atom):
                    raise ParseError(f"hilog declaration expects atoms: {spec!r}")
                engine.hilog_symbols.add(spec.name)
            return
        if name == "dynamic" and len(args) == 1:
            for spec in _spec_list(args[0]):
                engine.db.declare_dynamic(*parse_indicator(spec))
            return
        if name == "discontiguous" and len(args) == 1:
            return  # accepted for compatibility; clause order is kept anyway
        if name == "index" and len(args) in (2, 3):
            self._index_directive(args)
            return
        if name == "op" and len(args) == 3:
            priority = deref(args[0])
            type_code = deref(args[1])
            for op_name in _spec_list(args[2]):
                op_name = deref(op_name)
                engine.operators.add(priority, type_code.name, op_name.name)
            return
        if name == "export" and len(args) == 1:
            for spec in _spec_list(args[0]):
                engine.modules.export_current(parse_indicator(spec))
            return
        if name == "local" and len(args) == 1:
            for spec in _spec_list(args[0]):
                engine.modules.local_current(parse_indicator(spec))
            return
        if name == "import" and len(args) == 1:
            engine.modules.import_directive(deref(args[0]))
            return
        if name == "module" and len(args) in (1, 2):
            module_name = deref(args[0])
            engine.modules.begin_module(module_name.name)
            return
        # Anything else: run it as a load-time goal.
        self._flush(pending, auto_table=False)
        engine.run_goal(directive)

    def _index_directive(self, args):
        engine = self.engine
        name, arity = parse_indicator(args[0])
        spec = deref(args[1])
        bucket_count = 0
        if len(args) == 3:
            size = deref(args[2])
            if isinstance(size, int):
                bucket_count = size
        pred = engine.db.ensure(name, arity)
        if isinstance(spec, Atom) and spec.name == "trie":
            pred.set_trie_index()
            return
        field_sets = []
        for field in _spec_list(spec):
            field = deref(field)
            if isinstance(field, int):
                field_sets.append((field,))
            elif isinstance(field, Struct) and field.name == "+":
                field_sets.append(tuple(self._plus_fields(field)))
            else:
                raise ParseError(f"bad index field spec: {field!r}")
        pred.set_hash_index(field_sets, bucket_count=bucket_count)

    def _plus_fields(self, term):
        """Flatten ``3+5`` (or ``1+2+3``) into field positions."""
        term = deref(term)
        if isinstance(term, Struct) and term.name == "+" and len(term.args) == 2:
            return self._plus_fields(term.args[0]) + self._plus_fields(term.args[1])
        if isinstance(term, int):
            return [term]
        raise ParseError(f"bad index field: {term!r}")
