"""Operator-precedence parser for XSB-style Prolog/HiLog terms.

The grammar is standard Prolog extended with HiLog application: any
primary term immediately followed by ``(`` applies that term to the
parenthesised arguments.  ``p(a)`` with an atom functor parses as a
first-order struct (the reader later re-encodes it when ``p`` was
declared ``hilog``); ``X(bob, Y)`` and ``f(a)(b)`` parse directly into
the ``apply/N`` encoding of the HiLog paper.
"""

from __future__ import annotations

from ..errors import ParseError
from ..terms import NIL, Struct, Var, make_list, mkatom
from .lexer import Lexer
from .ops import OperatorTable
from .tokens import TokenType

__all__ = ["Parser", "parse_term", "parse_terms", "APPLY"]

APPLY = "apply"

_MAX_PRIORITY = 1200
_ARG_PRIORITY = 999


class Parser:
    """Parses a token stream into terms, one clause at a time."""

    def __init__(self, text, operators=None):
        self.tokens = list(Lexer(text).tokens())
        self.pos = 0
        self.operators = operators if operators is not None else OperatorTable()
        self.varmap = {}

    # -- token plumbing ---------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self):
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def _error(self, message, token=None):
        token = token or self._peek()
        raise ParseError(message, token.line, token.column)

    def _expect_punct(self, value):
        token = self._next()
        if token.type not in (TokenType.PUNCT, TokenType.OPEN_CT) or token.value != value:
            self._error(f"expected {value!r}, found {token.value!r}", token)

    def at_eof(self):
        return self._peek().type == TokenType.EOF

    # -- entry points ------------------------------------------------------

    def read_term(self):
        """Read one '.'-terminated term; return (term, varmap) or None at EOF.

        The varmap maps source variable names to their Var cells, which
        the toplevel uses to print answers.
        """
        if self.at_eof():
            return None
        self.varmap = {}
        term = self._parse(_MAX_PRIORITY)
        token = self._next()
        if token.type != TokenType.END:
            self._error(f"operator expected before {token.value!r}", token)
        return term, dict(self.varmap)

    # -- recursive-descent core ---------------------------------------------

    def _parse(self, max_priority):
        left, left_priority = self._parse_primary(max_priority)
        return self._parse_infix(left, left_priority, max_priority)

    def _parse_infix(self, left, left_priority, max_priority):
        while True:
            token = self._peek()
            name = None
            if token.type == TokenType.ATOM:
                name = token.value
            elif token.type == TokenType.PUNCT and token.value == ",":
                name = ","
            if name is None:
                return left
            infix = self.operators.infix(name)
            postfix = self.operators.postfix(name)
            if (
                infix is not None
                and infix.priority <= max_priority
                and left_priority <= infix.left_max
                and self._can_start_term(self._peek(1))
            ):
                self._next()
                right = self._parse(infix.right_max)
                left = Struct(name, (left, right))
                left_priority = infix.priority
                continue
            if (
                postfix is not None
                and postfix.priority <= max_priority
                and left_priority <= postfix.left_max
            ):
                self._next()
                left = Struct(name, (left,))
                left_priority = postfix.priority
                continue
            return left

    def _can_start_term(self, token):
        if token.type in (
            TokenType.INT,
            TokenType.FLOAT,
            TokenType.STRING,
            TokenType.VAR,
            TokenType.ATOM,
            TokenType.OPEN_CT,
        ):
            return True
        return token.type == TokenType.PUNCT and token.value in "([{"

    def _parse_primary(self, max_priority):
        token = self._next()
        kind = token.type

        if kind == TokenType.INT or kind == TokenType.FLOAT:
            return self._applications(token.value), 0

        if kind == TokenType.STRING:
            codes = make_list([ord(c) for c in token.value])
            return self._applications(codes), 0

        if kind == TokenType.VAR:
            if token.value == "_":
                var = Var("_")
            else:
                var = self.varmap.get(token.value)
                if var is None:
                    var = Var(token.value)
                    self.varmap[token.value] = var
            return self._applications(var), 0

        if kind in (TokenType.PUNCT, TokenType.OPEN_CT) and token.value == "(":
            inner = self._parse(_MAX_PRIORITY)
            self._expect_punct(")")
            return self._applications(inner), 0

        if kind == TokenType.PUNCT and token.value == "[":
            return self._applications(self._parse_list()), 0

        if kind == TokenType.PUNCT and token.value == "{":
            nxt = self._peek()
            if nxt.type == TokenType.PUNCT and nxt.value == "}":
                self._next()
                return self._applications(mkatom("{}")), 0
            inner = self._parse(_MAX_PRIORITY)
            self._expect_punct("}")
            return self._applications(Struct("{}", (inner,))), 0

        if kind == TokenType.ATOM:
            return self._parse_atom_primary(token, max_priority)

        self._error(f"unexpected token {token.value!r}", token)

    def _parse_atom_primary(self, token, max_priority):
        name = token.value
        nxt = self._peek()

        # Functor application: atom immediately followed by '('.
        if nxt.type == TokenType.OPEN_CT:
            self._next()
            args = self._parse_arguments()
            term = Struct(name, tuple(args))
            return self._applications(term), 0

        # Negative numeric literal: '-' directly before a number.
        if name == "-" and nxt.type in (TokenType.INT, TokenType.FLOAT):
            self._next()
            return self._applications(-nxt.value), 0

        prefix = self.operators.prefix(name)
        if (
            prefix is not None
            and prefix.priority <= max_priority
            and self._can_start_term(nxt)
            and not self._operand_position_ends(nxt)
        ):
            operand = self._parse(prefix.right_max)
            return Struct(name, (operand,)), prefix.priority

        atom = mkatom(name)
        priority = 0
        if self.operators.is_operator(name):
            # A bare operator used as an atom keeps its priority so that
            # e.g. ``X = (-)`` works but ``- = 1`` does not over-reduce.
            priority = _MAX_PRIORITY if name in (",",) else 0
        return self._applications(atom), priority

    def _operand_position_ends(self, token):
        """True when the next token cannot begin a prefix operand — the
        operator atom is then being used as a plain atom (e.g. ``f(-)``)."""
        if token.type == TokenType.PUNCT and token.value in ")]},|":
            return True
        if token.type in (TokenType.END, TokenType.EOF):
            return True
        if token.type == TokenType.ATOM and self.operators.infix(token.value):
            # e.g. ``- = 1``: treat '-' as an atom left of '='.
            if not self.operators.prefix(token.value):
                return True
        return False

    def _applications(self, base):
        """Fold zero or more HiLog applications ``base(args)(args)...``."""
        while self._peek().type == TokenType.OPEN_CT:
            self._next()
            args = self._parse_arguments()
            base = Struct(APPLY, (base, *args))
        return base

    def _parse_arguments(self):
        args = [self._parse(_ARG_PRIORITY)]
        while True:
            token = self._peek()
            if token.type == TokenType.PUNCT and token.value == ",":
                self._next()
                args.append(self._parse(_ARG_PRIORITY))
                continue
            self._expect_punct(")")
            return args

    def _parse_list(self):
        token = self._peek()
        if token.type == TokenType.PUNCT and token.value == "]":
            self._next()
            return self._applications_nil()
        items = [self._parse(_ARG_PRIORITY)]
        tail = NIL
        while True:
            token = self._peek()
            if token.type == TokenType.PUNCT and token.value == ",":
                self._next()
                items.append(self._parse(_ARG_PRIORITY))
                continue
            if token.type == TokenType.PUNCT and token.value == "|":
                self._next()
                tail = self._parse(_ARG_PRIORITY)
            self._expect_punct("]")
            return make_list(items, tail)

    def _applications_nil(self):
        return NIL


def parse_term(text, operators=None):
    """Parse a single term from ``text`` (with or without a final '.')."""
    if not text.rstrip().endswith("."):
        text = text + " ."
    parser = Parser(text, operators)
    result = parser.read_term()
    if result is None:
        raise ParseError("empty input")
    term, _ = result
    return term


def parse_terms(text, operators=None):
    """Parse all '.'-terminated terms in ``text``; returns a list of terms."""
    parser = Parser(text, operators)
    out = []
    while True:
        result = parser.read_term()
        if result is None:
            return out
        out.append(result[0])
