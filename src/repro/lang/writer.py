"""Term output: ``term_to_str`` with operator, list and HiLog notation."""

from __future__ import annotations

from ..terms import Atom, Struct, Var, deref
from .ops import OperatorTable

__all__ = ["term_to_str", "TermWriter"]

_DEFAULT_OPS = OperatorTable()

_IDENT_OK = set("abcdefghijklmnopqrstuvwxyz")
_SYMBOL_CHARS = set("+-*/\\^<>=~:.?@#&$")


def _atom_needs_quotes(name):
    if not name:
        return True
    if name in ("[]", "{}", "!", ";", ","):
        return False
    first = name[0]
    if first in _IDENT_OK:
        return not all(c.isalnum() or c == "_" for c in name)
    if all(c in _SYMBOL_CHARS for c in name):
        return False
    return True


def _quote_atom(name):
    escaped = name.replace("\\", "\\\\").replace("'", "\\'")
    escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
    return f"'{escaped}'"


class TermWriter:
    """Renders terms back to (re-readable) source text."""

    def __init__(self, operators=None, quoted=True, hilog_notation=True):
        self.operators = operators if operators is not None else _DEFAULT_OPS
        self.quoted = quoted
        self.hilog_notation = hilog_notation
        self._var_names = {}

    def to_str(self, term, max_priority=1200):
        """Render ``term``; iterative so 10k-deep terms print fine.

        ``_emit`` yields strings and ``(subterm, priority)`` descent
        requests; this trampoline drives a stack of generators instead
        of letting ``yield from`` nest one interpreter frame per term
        level (which would hit the recursion limit on deep lists).
        """
        out = []
        append = out.append
        stack = [self._emit(term, max_priority)]
        while stack:
            top = stack[-1]
            descended = False
            for item in top:
                if type(item) is tuple:
                    stack.append(self._emit(item[0], item[1]))
                    descended = True
                    break
                append(item)
            if not descended:
                stack.pop()
        return "".join(out)

    # -- helpers ------------------------------------------------------------

    def _var_name(self, var):
        name = self._var_names.get(id(var))
        if name is None:
            if var.name and var.name != "_":
                name = f"_{var.name}" if var.name[0].isupper() else var.name
                name = var.name
            else:
                name = f"_G{len(self._var_names)}"
            self._var_names[id(var)] = name
        return name

    def _atom_str(self, name):
        if self.quoted and _atom_needs_quotes(name):
            return _quote_atom(name)
        return name

    def _emit(self, term, max_priority):
        term = deref(term)
        if isinstance(term, Var):
            yield self._var_name(term)
            return
        if isinstance(term, Atom):
            yield self._atom_str(term.name)
            return
        if isinstance(term, (int, float)):
            yield repr(term)
            return
        if not isinstance(term, Struct):
            yield repr(term)
            return

        if term.name == "." and len(term.args) == 2:
            yield from self._emit_list(term)
            return
        if term.name == "{}" and len(term.args) == 1:
            yield "{"
            yield (term.args[0], 1200)
            yield "}"
            return
        if self.hilog_notation and term.name == "apply" and len(term.args) >= 2:
            yield (term.args[0], 0)
            yield "("
            for index, arg in enumerate(term.args[1:]):
                if index:
                    yield ","
                yield (arg, 999)
            yield ")"
            return

        yield from self._emit_operator_or_canonical(term, max_priority)

    def _emit_operator_or_canonical(self, term, max_priority):
        name = term.name
        if len(term.args) == 2:
            op = self.operators.infix(name)
            if op is not None:
                parenthesize = op.priority > max_priority
                if parenthesize:
                    yield "("
                yield (term.args[0], op.left_max)
                yield "," if _tight(name) else f" {name} "
                yield (term.args[1], op.right_max)
                if parenthesize:
                    yield ")"
                return
        if len(term.args) == 1:
            op = self.operators.prefix(name)
            if op is not None:
                parenthesize = op.priority > max_priority
                if parenthesize:
                    yield "("
                yield self._atom_str(name)
                yield " "
                yield (term.args[0], op.right_max)
                if parenthesize:
                    yield ")"
                return
        yield self._atom_str(name)
        yield "("
        for index, arg in enumerate(term.args):
            if index:
                yield ","
            yield (arg, 999)
        yield ")"

    def _emit_list(self, term):
        yield "["
        first = True
        while True:
            term = deref(term)
            if isinstance(term, Struct) and term.name == "." and len(term.args) == 2:
                if not first:
                    yield ","
                first = False
                yield (term.args[0], 999)
                term = term.args[1]
                continue
            if isinstance(term, Atom) and term.name == "[]":
                break
            yield "|"
            yield (term, 999)
            break
        yield "]"


def _tight(name):
    """Operators printed without surrounding spaces."""
    return name in (",",)


def term_to_str(term, operators=None, quoted=True, hilog_notation=True):
    """Render ``term`` as source text.

    ``hilog_notation`` controls whether ``apply/N`` structs print in
    curried HiLog form (``f(a)(X)``) or in their first-order encoding.
    """
    writer = TermWriter(operators, quoted=quoted, hilog_notation=hilog_notation)
    return writer.to_str(term)
