"""Token definitions for the Prolog/HiLog lexer."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "TokenType"]


class TokenType:
    """Token kinds.  Plain class-attribute constants keep dispatch cheap."""

    ATOM = "atom"
    VAR = "var"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    PUNCT = "punct"  # , | ( ) [ ] { }
    OPEN_CT = "open_ct"  # '(' immediately following the previous token
    END = "end"  # clause-terminating '.'
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    type: str
    value: object
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.type}, {self.value!r})"
