"""Definite clause grammar translation.

XSB inherits Prolog's grammar-rule notation (``-->`` sits in the
standard operator table the paper adopts).  A rule::

    s --> np, vp.
    det --> [the].
    digits(D) --> [D], { 0'0 =< D, D =< 0'9 }.

translates into an ordinary clause whose predicates carry a difference
list: ``s(S0, S) :- np(S0, S1), vp(S1, S)``; terminal lists constrain
the stream; ``{Goal}`` brackets plain goals.  ``phrase/2,3`` run a
grammar body against a list.
"""

from __future__ import annotations

from ..errors import TypeError_
from ..terms import NIL, Atom, Struct, Var, deref, make_list

__all__ = ["is_dcg_rule", "translate_dcg", "dcg_body_goal"]


def is_dcg_rule(term):
    term = deref(term)
    return (
        isinstance(term, Struct) and term.name == "-->" and len(term.args) == 2
    )


def translate_dcg(term):
    """Translate ``Head --> Body`` into an ordinary clause term."""
    term = deref(term)
    head, body = term.args
    s0 = Var("S0")
    s_end = Var("S")
    new_head = _extend(deref(head), s0, s_end)
    new_body = _body(deref(body), s0, s_end)
    return Struct(":-", (new_head, new_body))


def dcg_body_goal(body, list_term, rest_term):
    """The goal equivalent to ``phrase(Body, List, Rest)``."""
    return _body(deref(body), list_term, rest_term)


def _extend(term, s0, s):
    if isinstance(term, Atom):
        return Struct(term.name, (s0, s))
    if isinstance(term, Struct):
        return Struct(term.name, term.args + (s0, s))
    raise TypeError_("grammar-rule nonterminal", term)


def _is_list_term(term):
    return (
        term is NIL
        or (isinstance(term, Atom) and term.name == "[]")
        or (
            isinstance(term, Struct)
            and term.name == "."
            and len(term.args) == 2
        )
    )


def _list_items(term):
    items = []
    while True:
        term = deref(term)
        if isinstance(term, Atom) and term.name == "[]":
            return items
        if (
            isinstance(term, Struct)
            and term.name == "."
            and len(term.args) == 2
        ):
            items.append(term.args[0])
            term = term.args[1]
            continue
        raise TypeError_("terminal list in grammar rule", term)


def _body(term, s0, s):
    term = deref(term)
    if isinstance(term, Struct) and term.name == "," and len(term.args) == 2:
        middle = Var()
        left = _body(deref(term.args[0]), s0, middle)
        right = _body(deref(term.args[1]), middle, s)
        return Struct(",", (left, right))
    if isinstance(term, Struct) and term.name == ";" and len(term.args) == 2:
        return Struct(
            ";",
            (
                _body(deref(term.args[0]), s0, s),
                _body(deref(term.args[1]), s0, s),
            ),
        )
    if isinstance(term, Struct) and term.name == "->" and len(term.args) == 2:
        middle = Var()
        return Struct(
            "->",
            (
                _body(deref(term.args[0]), s0, middle),
                _body(deref(term.args[1]), middle, s),
            ),
        )
    if isinstance(term, Struct) and term.name == "{}" and len(term.args) == 1:
        # bracketed goal: does not consume input
        return Struct(",", (term.args[0], Struct("=", (s0, s))))
    if isinstance(term, Atom) and term.name == "!":
        return Struct(",", (term, Struct("=", (s0, s))))
    if isinstance(term, Struct) and term.name == "\\+" and len(term.args) == 1:
        # negative lookahead: consumes nothing
        probe = Var()
        inner = _body(deref(term.args[0]), s0, probe)
        return Struct(
            ",", (Struct("\\+", (inner,)), Struct("=", (s0, s)))
        )
    if _is_list_term(term):
        items = _list_items(term)
        return Struct("=", (s0, make_list(items, s)))
    if isinstance(term, Var):
        return Struct("phrase", (term, s0, s))
    return _extend(term, s0, s)
