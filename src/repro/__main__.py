"""``python -m repro`` — the toplevel / direct-execution entry point."""

from .repl import main

raise SystemExit(main())
