"""The paged relational backend behind the TupleStore protocol.

Every row in a :class:`RelStoreTupleStore` lives in
:class:`~repro.relstore.sqlengine.RelStore` pages: inserts are
WAL-logged and written through the buffer pool under exclusive page
locks, probes and scans read under shared locks, and per-touch row
materialization decodes the on-page bytes.  Those per-tuple fixed
costs are deliberate — they are the Table 3 gap the relstore exists to
reproduce — and adapting the store behind the same protocol as the
in-memory backend is what lets benchmarks and tests swap the two
like-for-like (``REPRO_TUPLESTORE=relstore``) and measure exactly that
gap.

Deviations from the memory backend, all documented properties of the
substrate rather than accidents:

* **Dedup membership is in memory.**  The heap has no uniqueness
  machinery, so the adapter keeps the membership set in Python — the
  deliberate costs are per *stored* tuple touched, and duplicate
  inserts never reach the pages.
* **Indexes are single-column B+-trees.**  A declared multi-column
  combination indexes its leading column; the remaining columns are
  filtered after the probe (standard practice when a requested
  composite index is unavailable).
* **remove/clear reorganize.**  The heap is append-only, so removal
  rewrites the table; the declared index set survives the rewrite
  (that is the "clear preserves index identity" guarantee here).
"""

from __future__ import annotations

from ..perf.counters import StoreStats
from ..relstore.sqlengine import RelStore
from .tuplestore import TupleStore

__all__ = ["RelStoreTupleStore"]

# One table per store; the store name stays metadata.
_TABLE = "t"


class RelStoreTupleStore(TupleStore):
    """A TupleStore whose rows live in WAL-logged, lock-guarded pages."""

    __slots__ = ("name", "arity", "tuples", "generation", "stats",
                 "_store", "_indexed")

    def __init__(self, name, arity, directory=None, pool_pages=256):
        self.name = name
        self.arity = arity
        self.tuples = set()
        self.generation = 0
        self.stats = StoreStats()
        self._store = RelStore(directory, pool_pages=pool_pages)
        self._indexed = set()
        self._store.create_table(_TABLE, arity, index_on=None)
        if arity:
            self._store.create_index(_TABLE, 0)
            self._indexed.add(0)

    # -- mutation ----------------------------------------------------------

    def add(self, row):
        """Insert one row; True when it was new."""
        row = tuple(row)
        if row in self.tuples:
            return False
        with self._store.transaction() as txn:
            self._store.insert(txn, _TABLE, row)
        self.tuples.add(row)
        return True

    def add_many(self, rows):
        """Bulk insert inside one transaction; returns the new-row count."""
        members = self.tuples
        seen = set()
        fresh = []
        for row in rows:
            row = tuple(row)
            if row in members or row in seen:
                continue
            seen.add(row)
            fresh.append(row)
        if not fresh:
            return 0
        with self._store.transaction() as txn:
            for row in fresh:
                self._store.insert(txn, _TABLE, row)
        members.update(fresh)
        return len(fresh)

    def remove(self, row):
        """Remove one row; the heap is append-only, so this rewrites
        the table (keeping its declared indexes)."""
        row = tuple(row)
        if row not in self.tuples:
            return False
        with self._store.transaction() as txn:
            rows = self._store.scan(txn, _TABLE)
        rows.remove(row)
        self.tuples.discard(row)
        self._rebuild(rows)
        self.generation += 1
        self.stats.removes += 1
        return True

    def clear(self):
        """Empty the store; the declared index set survives."""
        self.tuples.clear()
        self._rebuild([])
        self.generation += 1

    def _rebuild(self, rows):
        self._store.drop_table(_TABLE)
        self._store.create_table(_TABLE, self.arity, index_on=None)
        for column in self._indexed:
            self._store.create_index(_TABLE, column)
        if rows:
            with self._store.transaction() as txn:
                for row in rows:
                    self._store.insert(txn, _TABLE, row)

    # -- indexes and probes ------------------------------------------------

    def ensure_index(self, positions):
        """Declare an index serving ``positions`` (≤3 columns).

        B+-trees here are single-column, so the leading column of the
        combination is indexed and later probes filter the rest.
        """
        positions = tuple(positions)
        self.check_index_positions(positions)
        column = positions[0]
        if column not in self._indexed:
            self._store.create_index(_TABLE, column)
            self._indexed.add(column)
            self.stats.index_builds += 1

    def probe(self, positions, key):
        """All rows whose ``positions`` equal ``key``.

        Uses the B+-tree on the leading probed column when one exists
        (shared locks + buffer-pool fetches per row touched), scanning
        otherwise; residual columns are filtered after materialization.
        """
        positions = tuple(positions)
        stats = self.stats
        if not positions:
            stats.scans += 1
            with self._store.transaction() as txn:
                return self._store.scan(txn, _TABLE)
        stats.probes += 1
        lead = positions[0]
        with self._store.transaction() as txn:
            if lead in self._indexed:
                candidates = self._store.select(txn, _TABLE, lead, key[0])
            else:
                candidates = self._store.scan(txn, _TABLE)
        if len(positions) == 1 and lead in self._indexed:
            return candidates
        return [
            row
            for row in candidates
            if all(row[p] == k for p, k in zip(positions, key))
        ]

    # -- container protocol ------------------------------------------------

    def __contains__(self, row):
        return tuple(row) in self.tuples

    def __len__(self):
        return self._store.tables[_TABLE].row_count

    def __iter__(self):
        with self._store.transaction() as txn:
            rows = self._store.scan(txn, _TABLE)
        return iter(rows)

    def copy(self):
        """An independent store over its own pages, WAL and locks."""
        clone = RelStoreTupleStore(self.name, self.arity)
        for column in self._indexed:
            if column not in clone._indexed:
                clone._store.create_index(_TABLE, column)
                clone._indexed.add(column)
        clone.add_many(self)
        return clone

    def __repr__(self):
        return (
            f"<RelStoreTupleStore {self.name}/{self.arity} "
            f"{len(self)} rows>"
        )
