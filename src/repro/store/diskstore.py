"""The mmap-backed on-disk TupleStore backend (``REPRO_TUPLESTORE=disk``).

Production XSB keeps large extensional databases out of the heap: facts
live in indexed tables and only the tuples a query touches are ever
materialized as terms.  This backend reproduces that split for the
store layer.  Rows are serialized through the shared codec
(:func:`repro.relstore.rowcodec.encode_row` — the same on-page form the
paged relstore uses) into one append-only byte run; once the run
outgrows :data:`SPILL_BYTES` it spills to an anonymous temporary file
and all earlier bytes are re-read through ``mmap``, so a loaded EDB
costs the process page cache, not Python objects.  Probes and scans
return *lazy* row views that decode each row on access — a 1M-fact
relation holds one offsets array and (at most) one page-cached file,
and only the rows a query actually touches become Python tuples.

Deviations from the memory backend, all documented properties of the
layout rather than accidents:

* **Indexes and membership map to row ids**, not rows: an index bucket
  is a list of integer offsets-table ids and the dedup map is
  ``hash(row) -> id-or-ids`` (a bare id in the common no-collision
  case, a list under collisions) with candidate rows decoded only on
  hash collision.  Decoded equality is Python equality, so ``(1,)``
  and ``(1.0,)`` still collapse exactly as they do in memory.
* **``remove`` tombstones.**  The byte run is append-only; a removed
  row keeps its bytes but leaves membership, every index, iteration
  and ``len``.  Row ids of surviving rows never move (the row-mode
  predicate view of :mod:`repro.engine.database` depends on that).
* **``add_keyed`` keeps its keys in memory** — the SLG answer table's
  duplicate check needs canonical-key identity (``1`` vs ``1.0``),
  which the serialized form cannot answer; answer tables are small
  relative to the EDB, so their keys stay Python objects (the same
  trade the relstore adapter makes for its whole membership set).
"""

from __future__ import annotations

import mmap
import os
import tempfile
from array import array

from ..obs.spans import note_disk_spill
from ..perf.counters import StoreStats
from ..relstore.rowcodec import decode_row, encode_row
from .tuplestore import TupleStore

__all__ = ["DiskTupleStore", "SPILL_BYTES"]

# Encoded bytes buffered in memory before the run spills to the file
# and is remapped; REPRO_DISK_SPILL_BYTES overrides (tests use tiny
# values to exercise the mmap path on small relations).
SPILL_BYTES = 1 << 22


def _spill_bytes():
    raw = os.environ.get("REPRO_DISK_SPILL_BYTES")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return SPILL_BYTES


class _LazyRows:
    """A sequence view over row ids that decodes rows on access."""

    __slots__ = ("_store", "_ids")

    def __init__(self, store, ids):
        self._store = store
        self._ids = ids

    def __len__(self):
        return len(self._ids)

    def __iter__(self):
        row_at = self._store.row_at
        for rid in self._ids:
            yield row_at(rid)

    def __getitem__(self, item):
        if isinstance(item, slice):
            return _LazyRows(self._store, self._ids[item])
        return self._store.row_at(self._ids[item])

    def __contains__(self, row):
        return any(candidate == row for candidate in self)

    def __eq__(self, other):
        if isinstance(other, (list, tuple, _LazyRows)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self):
        return f"<_LazyRows {len(self._ids)} rows>"


class DiskTupleStore(TupleStore):
    """Paged, mmap-friendly rows behind the TupleStore protocol."""

    __slots__ = (
        "name", "arity", "generation", "stats", "directory",
        "spill_bytes", "indexes",
        "_offsets", "_tail", "_total", "_mm", "_mm_size", "_file",
        "_members", "_dead", "_keys",
    )

    def __init__(self, name, arity, directory=None, spill_bytes=None):
        self.name = name
        self.arity = arity
        self.generation = 0
        self.stats = StoreStats()
        self.directory = directory
        self.spill_bytes = (
            _spill_bytes() if spill_bytes is None else spill_bytes
        )
        # positions -> {key: id-or-[ids]} (packed like _members: a
        # unique-key index of N rows costs N dict entries, zero lists)
        self.indexes = {}
        # Byte offsets of each row in the run; row i spans
        # _offsets[i] .. _offsets[i+1] (or _total for the last row).
        # A packed int array: 8 bytes per row, not a PyObject per row.
        self._offsets = array("q")
        self._tail = bytearray()  # bytes not yet spilled
        self._total = 0  # total encoded bytes (spilled + tail)
        self._mm = None  # mmap over the spilled prefix
        self._mm_size = 0
        self._file = None
        self._members = {}  # hash(row) -> row id, or [ids] on collision
        self._dead = set()  # tombstoned row ids
        self._keys = None  # add_keyed membership, engaged on first use

    # -- the byte run ------------------------------------------------------

    def _append(self, encoded):
        rid = len(self._offsets)
        self._offsets.append(self._total)
        self._tail += encoded
        self._total += len(encoded)
        if len(self._tail) >= self.spill_bytes:
            self._spill()
        return rid

    def _spill(self):
        """Flush the in-memory tail to the file and remap the run."""
        spilled = len(self._tail)
        if self._file is None:
            self._file = tempfile.TemporaryFile(
                prefix=f"{self.name}.{self.arity}.", dir=self.directory
            )
        self._file.seek(0, os.SEEK_END)
        self._file.write(self._tail)
        self._file.flush()
        if self._mm is not None:
            self._mm.close()
        self._mm = mmap.mmap(
            self._file.fileno(), self._total, access=mmap.ACCESS_READ
        )
        self._mm_size = self._total
        self._tail.clear()
        # A plain store has no engine in scope; the span module fans
        # the event out to every engine currently recording.
        note_disk_spill(spilled)

    def _raw(self, rid):
        """The encoded bytes of row ``rid`` (each row is contiguous in
        exactly one region: spills move the whole tail)."""
        start = self._offsets[rid]
        end = (
            self._offsets[rid + 1]
            if rid + 1 < len(self._offsets)
            else self._total
        )
        mm_size = self._mm_size
        if end <= mm_size:
            return self._mm[start:end]
        return bytes(self._tail[start - mm_size : end - mm_size])

    def row_at(self, rid):
        """Materialize one row from its on-disk bytes."""
        return decode_row(self._raw(rid))

    def _live_ids(self):
        dead = self._dead
        count = len(self._offsets)
        if not dead:
            return range(count)
        return [rid for rid in range(count) if rid not in dead]

    def _find(self, row):
        """The live id storing ``row``, or None."""
        bucket = self._members.get(hash(row))
        if bucket is None:
            return None
        if type(bucket) is int:
            return bucket if self.row_at(bucket) == row else None
        for rid in bucket:
            if self.row_at(rid) == row:
                return rid
        return None

    def _member_add(self, row_hash, rid):
        members = self._members
        bucket = members.get(row_hash)
        if bucket is None:
            members[row_hash] = rid
        elif type(bucket) is int:
            members[row_hash] = [bucket, rid]
        else:
            bucket.append(rid)

    def _member_remove(self, row_hash, rid):
        members = self._members
        bucket = members[row_hash]
        if type(bucket) is int:
            del members[row_hash]
            return
        bucket.remove(rid)
        if len(bucket) == 1:
            members[row_hash] = bucket[0]

    @staticmethod
    def _bucket_add(index, key, rid):
        bucket = index.get(key)
        if bucket is None:
            index[key] = rid
        elif type(bucket) is int:
            index[key] = [bucket, rid]
        else:
            bucket.append(rid)

    # -- mutation ----------------------------------------------------------

    def add(self, row):
        """Insert one row; True when it was new."""
        row = tuple(row)
        if self._find(row) is not None:
            return False
        rid = self._append(encode_row(row))
        self._member_add(hash(row), rid)
        for positions, index in self.indexes.items():
            self._bucket_add(
                index, tuple(row[p] for p in positions), rid
            )
        return True

    def add_keyed(self, key, row):
        """Insert ``row`` deduplicating by a caller-supplied ``key``
        (kept in memory — see the module docstring)."""
        if self._keys is None:
            self._keys = set()
        if key in self._keys:
            return False
        self._keys.add(key)
        rid = self._append(encode_row(tuple(row)))
        for positions, index in self.indexes.items():
            self._bucket_add(
                index, tuple(row[p] for p in positions), rid
            )
        return True

    def extend_rows(self, rows):
        """Bulk insert: rows stream straight into the byte run (any
        iterable, consumed once — each parsed tuple is garbage the
        moment its bytes land) and each live index is rebuilt once
        after the batch."""
        member_add = self._member_add
        added = 0
        for row in rows:
            row = tuple(row)
            if self._find(row) is not None:
                continue
            rid = self._append(encode_row(row))
            member_add(hash(row), rid)
            added += 1
        if added and self.indexes:
            stats = self.stats
            bucket_add = self._bucket_add
            for positions, index in self.indexes.items():
                index.clear()
                for rid in self._live_ids():
                    row = self.row_at(rid)
                    bucket_add(
                        index, tuple(row[p] for p in positions), rid
                    )
                stats.index_builds += 1
        return added

    def remove(self, row):
        """Tombstone one row; True when it was present."""
        row = tuple(row)
        rid = self._find(row)
        if rid is None:
            return False
        self._member_remove(hash(row), rid)
        self._dead.add(rid)
        for positions, index in self.indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is None:
                continue
            if type(bucket) is int:
                if bucket == rid:
                    del index[key]
            elif rid in bucket:
                bucket.remove(rid)
                if len(bucket) == 1:
                    index[key] = bucket[0]
        self.generation += 1
        self.stats.removes += 1
        return True

    def clear(self):
        """Empty the store in place; the file (if any) is truncated and
        reused, and every index dict keeps its identity."""
        del self._offsets[:]  # array has no clear() before 3.13
        self._tail.clear()
        self._total = 0
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        self._mm_size = 0
        if self._file is not None:
            self._file.seek(0)
            self._file.truncate(0)
        self._members.clear()
        self._dead.clear()
        if self._keys is not None:
            self._keys.clear()
        for index in self.indexes.values():
            index.clear()
        self.generation += 1

    def close(self):
        """Release the mmap and the backing temporary file."""
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._file is not None:
            self._file.close()
            self._file = None

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # -- indexes and probes ------------------------------------------------

    def _index_for(self, positions):
        index = self.indexes.get(positions)
        if index is None:
            index = {}
            bucket_add = self._bucket_add
            for rid in self._live_ids():
                row = self.row_at(rid)
                bucket_add(index, tuple(row[p] for p in positions), rid)
            self.indexes[positions] = index
            self.stats.index_builds += 1
        return index

    def ensure_index(self, positions):
        """Declare (and build on demand) an index on ``positions``."""
        positions = tuple(positions)
        self.check_index_positions(positions)
        self._index_for(positions)

    def probe(self, positions, key):
        """All rows whose ``positions`` equal ``key`` as a lazy view —
        rows decode as the consumer touches them."""
        positions = tuple(positions)
        stats = self.stats
        if not positions:
            stats.scans += 1
            return _LazyRows(self, tuple(self._live_ids()))
        stats.probes += 1
        ids = self._index_for(positions).get(tuple(key))
        if ids is None:
            return ()
        if type(ids) is int:
            return _LazyRows(self, (ids,))
        return _LazyRows(self, tuple(ids))

    # -- container protocol ------------------------------------------------

    def __contains__(self, row):
        if self._keys is not None:
            return row in self._keys
        return self._find(tuple(row)) is not None

    def __len__(self):
        return len(self._offsets) - len(self._dead)

    def __iter__(self):
        row_at = self.row_at
        for rid in self._live_ids():
            yield row_at(rid)

    def copy(self):
        """An independent store over its own byte run and file."""
        clone = DiskTupleStore(
            self.name, self.arity,
            directory=self.directory, spill_bytes=self.spill_bytes,
        )
        clone.extend_rows(self)
        for positions in self.indexes:
            clone._index_for(positions)
        return clone

    def __repr__(self):
        spilled = self._mm_size
        return (
            f"<DiskTupleStore {self.name}/{self.arity} {len(self)} rows "
            f"{self._total}B ({spilled}B mapped)>"
        )
