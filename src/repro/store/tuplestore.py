"""The TupleStore protocol and its tuned in-memory implementation.

This is the paper's Section-4 indexing story as one storage layer: a
relation is a deterministic, insertion-ordered sequence of deduplicated
rows with incremental multi-column hash indexes on any combination of
up to :data:`MAX_INDEX_COLUMNS` positions, and a predicate (or table,
or join plan) may keep several such indexes live at once.  Before this
module the same machinery existed three times — the bottom-up engine's
``Relation``, the hybrid bridge's hand-rolled fact conversion, and the
paged ``relstore`` access paths; every tuple consumer now goes through
one of the backends behind this protocol (see :func:`repro.store.make_store`).

The protocol, as exercised by the shared test suite and the property
tests:

``add(row) -> bool`` / ``add_many(rows) -> int``
    Deduplicated insert; insertion order of first occurrences is the
    iteration order.
``remove(row) -> bool``
    Remove one row from the rows, the membership set and every index.
``clear()``
    Empty the store *in place*: every container keeps its identity, so
    compiled join plans holding captured index dicts stay valid.
``probe(positions, key) -> rows``
    All rows whose values at ``positions`` equal ``key``; an empty
    position tuple is a full scan.  Counted in :attr:`stats`.
``ensure_index(positions)``
    Materialize (or reuse) the index serving ``positions``.
``generation`` / version stamps
    ``generation`` bumps on every *destructive* reorganization
    (``remove``/``clear``); inserts are append-only, so the pair
    ``(generation, len(store))`` is a complete content version — the
    cheap cache-invalidation stamp, with no per-insert cost on the
    fixpoint hot path.
``stats``
    A :class:`~repro.perf.counters.StoreStats` block of probe/scan/
    index-build counts, aggregated into ``statistics/0,2``.
"""

from __future__ import annotations

from ..perf.counters import StoreStats

__all__ = ["MAX_INDEX_COLUMNS", "TupleStore", "MemoryTupleStore"]

# The paper (section 4.5): "hash indexes on any argument or joint
# combination of up to three arguments".
MAX_INDEX_COLUMNS = 3


class TupleStore:
    """Abstract base: shared argument checking and default helpers.

    Backends implement the storage itself; this base only owns the
    pieces that must behave identically everywhere — the index-arity
    limit and the bulk-insert loop.
    """

    __slots__ = ()

    @staticmethod
    def check_index_positions(positions):
        if not positions:
            raise ValueError("an index needs at least one column")
        if len(positions) > MAX_INDEX_COLUMNS:
            raise ValueError(
                f"indexes cover at most {MAX_INDEX_COLUMNS} columns "
                f"(got {len(positions)})"
            )
        if len(set(positions)) != len(positions):
            raise ValueError(f"duplicate index column in {positions!r}")

    def add_many(self, rows):
        """Bulk insert; returns how many rows were new."""
        add = self.add
        added = 0
        for row in rows:
            if add(row):
                added += 1
        return added

    def extend_rows(self, rows):
        """Bulk insert that defers index maintenance to one build after
        the whole batch (instead of N incremental updates) — the bulk
        EDB ingest path of :mod:`repro.storage.textio`.  Semantics are
        identical to :meth:`add_many` (dedup, insertion order, new-row
        count); only the maintenance schedule differs.  This default
        delegates to ``add_many``; backends with incremental per-insert
        index updates override it.
        """
        return self.add_many(rows)


class MemoryTupleStore(TupleStore):
    """The tuned in-memory backend (and the bottom-up ``Relation``).

    Rows are value tuples (see :mod:`repro.store.codec`).  ``rows``
    preserves insertion order alongside the ``tuples`` membership set,
    so iteration is deterministic (set order would vary with the
    per-run string hash seed) — the hybrid SLG bridge relies on this
    to install table answers in a reproducible derivation order.

    Indexes are dicts keyed by the probed value combination, built
    lazily the first time a pattern is probed and maintained
    incrementally by every later insert; compiled join plans capture
    the dict objects directly (:func:`repro.bottomup.seminaive._compile_plan`),
    which is why :meth:`clear` empties containers instead of replacing
    them.
    """

    __slots__ = ("name", "arity", "tuples", "rows", "indexes",
                 "generation", "stats", "_positions")

    def __init__(self, name, arity):
        self.name = name
        self.arity = arity
        self.tuples = set()
        self.rows = []
        self.indexes = {}
        self.generation = 0
        self.stats = StoreStats()
        # row -> list position, built lazily by the first remove and
        # maintained by every later append, so each remove is a dict
        # pop + swap-pop instead of an O(rows) list scan (bulk DRed
        # cascades were quadratic in relation size).  None until a
        # store actually removes: insert-only stores (the fixpoint hot
        # path) never pay the maintenance.
        self._positions = None

    # -- mutation ----------------------------------------------------------

    def add(self, row):
        """Insert one row; True when it was new."""
        if row in self.tuples:
            return False
        self.tuples.add(row)
        self.rows.append(row)
        slots = self._positions
        if slots is not None:
            slots[row] = len(self.rows) - 1
        for positions, index in self.indexes.items():
            key = tuple(row[p] for p in positions)
            index.setdefault(key, []).append(row)
        return True

    def add_keyed(self, key, row):
        """Insert ``row`` deduplicating by a caller-supplied ``key``.

        The SLG answer store needs this: frozen rows conflate ``1``
        and ``1.0`` under Python equality while variant checking must
        keep them distinct, so membership is tracked by the canonical
        answer key instead of by the row itself.  A store driven
        through ``add_keyed`` answers ``in`` for keys, not rows.
        """
        if key in self.tuples:
            return False
        self.tuples.add(key)
        self.rows.append(row)
        slots = self._positions
        if slots is not None:
            slots[row] = len(self.rows) - 1
        for positions, index in self.indexes.items():
            index_key = tuple(row[p] for p in positions)
            index.setdefault(index_key, []).append(row)
        return True

    def extend_rows(self, rows):
        """Bulk insert with index maintenance deferred to one in-place
        rebuild per live index after the batch."""
        tuples = self.tuples
        out = self.rows
        slots = self._positions
        added = 0
        for row in rows:
            if row in tuples:
                continue
            tuples.add(row)
            out.append(row)
            if slots is not None:
                slots[row] = len(out) - 1
            added += 1
        if added and self.indexes:
            stats = self.stats
            for positions, index in self.indexes.items():
                index.clear()
                for row in out:
                    key = tuple(row[p] for p in positions)
                    index.setdefault(key, []).append(row)
                stats.index_builds += 1
        return added

    def row_at(self, rid):
        """The row with insertion id ``rid`` (the row-mode clause view
        of :mod:`repro.engine.database` addresses rows by these ids;
        they are stable because row-backed predicates promote to
        clause-land before any destructive mutation)."""
        return self.rows[rid]

    def remove(self, row):
        """Remove one row everywhere it is stored; True when present.

        The row slot is filled by swap-pop: the last row moves into the
        vacated position and the list shrinks by one — O(1) against the
        old O(rows) ``list.remove`` scan, and the ``rows`` list keeps
        its identity (compiled join plans capture it), with no
        tombstones ever visible to consumers.  The cost is that
        insertion order is no longer authoritative after a removal;
        iteration stays deterministic (same operation sequence, same
        order).  Row-mode predicates promote to clause-land before any
        destructive mutation, so :meth:`row_at` ids never live across
        a remove.
        """
        if row not in self.tuples:
            return False
        self.tuples.discard(row)
        rows = self.rows
        slots = self._positions
        if slots is None:
            slots = {r: i for i, r in enumerate(rows)}
            self._positions = slots
        idx = slots.pop(row)
        last = rows.pop()
        if idx < len(rows):
            rows[idx] = last
            slots[last] = idx
        for positions, index in self.indexes.items():
            key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.remove(row)
                if not bucket:
                    del index[key]
        self.generation += 1
        self.stats.removes += 1
        return True

    def clear(self):
        """Empty the store while keeping every container's identity.

        Rows, the membership set and each index dict are cleared
        rather than replaced: compiled join plans capture those exact
        objects, so a prepared fixpoint can reset its derived
        relations between runs without recompiling anything.
        """
        self.tuples.clear()
        self.rows.clear()
        self._positions = None
        for index in self.indexes.values():
            index.clear()
        self.generation += 1

    # -- indexes and probes ------------------------------------------------

    def index_for(self, positions):
        """The live index dict serving ``positions`` (built on demand).

        This is the join compiler's entry point: the returned dict is
        maintained in place by :meth:`add`, so captured references
        stay current across fixpoint iterations.
        """
        index = self.indexes.get(positions)
        if index is None:
            index = {}
            for row in self.rows:
                key = tuple(row[p] for p in positions)
                index.setdefault(key, []).append(row)
            self.indexes[positions] = index
            self.stats.index_builds += 1
        return index

    def ensure_index(self, positions):
        """Declare an index on ``positions`` (the ≤3-column protocol
        entry point).  Join plans use :meth:`index_for` directly, which
        is unrestricted: a probe bound on four positions is still just
        a hash lookup here, while a *declared* index keeps the paper's
        up-to-three-arguments taxonomy."""
        self.check_index_positions(tuple(positions))
        return self.index_for(tuple(positions))

    def probe(self, positions, key):
        """All rows whose ``positions`` equal ``key`` (hash lookup)."""
        stats = self.stats
        if not positions:
            stats.scans += 1
            return self.rows
        stats.probes += 1
        index = self.index_for(positions)
        return index.get(key, ())

    # -- container protocol ------------------------------------------------

    def __contains__(self, row):
        return row in self.tuples

    def __len__(self):
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def copy(self):
        """An independent clone: rows, membership and indexes are all
        fresh containers (index buckets included), so no later mutation
        of either store can leak into the other."""
        clone = MemoryTupleStore(self.name, self.arity)
        clone.tuples = set(self.tuples)
        clone.rows = list(self.rows)
        clone.indexes = {
            positions: {key: list(bucket) for key, bucket in index.items()}
            for positions, index in self.indexes.items()
        }
        return clone

    def __repr__(self):
        return (
            f"<MemoryTupleStore {self.name}/{self.arity} "
            f"{len(self.rows)} rows>"
        )
