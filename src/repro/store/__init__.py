"""Pluggable relation storage: one protocol, swappable backends.

The paper's Section-4 indexing machinery — hash indexes on any
argument or joint combination of up to three arguments, several
simultaneous indexes per relation, table indexes — lives here once,
behind the :class:`TupleStore` protocol, instead of being reimplemented
per consumer.  Backends:

``memory`` (default)
    :class:`MemoryTupleStore` — insertion-ordered rows, set-based
    dedup, incremental hash-index dicts; the bottom-up engine's
    ``Relation`` *is* this class.
``relstore``
    :class:`~repro.store.relstore_adapter.RelStoreTupleStore` — rows
    in WAL-logged, lock-guarded, buffer-pooled pages with B+-tree
    indexes; deliberately pays the Table 3 per-tuple costs.
``disk``
    :class:`~repro.store.diskstore.DiskTupleStore` — serialized rows
    in one append-only, mmap-backed byte run with id-valued hash
    indexes and lazy row materialization on probe/scan; the bulk-EDB
    backend (rows never fully materialize as Python objects).

:func:`make_store` picks the backend from the ``REPRO_TUPLESTORE``
environment variable (or an explicit argument), so a test run or a
benchmark swaps every fact store in the engine like-for-like.  The
compiled semi-naive join plans capture raw index dicts and therefore
always run on the memory backend, whatever ``make_store`` returns —
:func:`~repro.bottomup.seminaive.prepare` copies foreign backends in.

The shared ground-term ↔ row codec (:mod:`repro.store.codec`) also
lives in this package: freeze/thaw between terms and row values, the
formatted reader's field typing, and the serialized on-page row form.
"""

from __future__ import annotations

import os

from .codec import (
    MAX_TERM_DEPTH,
    FreezeError,
    decode_row,
    encode_row,
    freeze_term,
    parse_field,
    thaw_value,
)
from .tuplestore import MAX_INDEX_COLUMNS, MemoryTupleStore, TupleStore

__all__ = [
    "MAX_INDEX_COLUMNS",
    "MAX_TERM_DEPTH",
    "FreezeError",
    "MemoryTupleStore",
    "TupleStore",
    "backend_name",
    "decode_row",
    "encode_row",
    "freeze_term",
    "make_store",
    "parse_field",
    "thaw_value",
]

BACKENDS = ("memory", "relstore", "disk")

# Test hook: when not None, overrides the environment selection.
_FORCED_BACKEND = None


def backend_name():
    """The backend :func:`make_store` would pick right now."""
    if _FORCED_BACKEND is not None:
        return _FORCED_BACKEND
    return os.environ.get("REPRO_TUPLESTORE", "memory") or "memory"


def make_store(name, arity, backend=None):
    """A fresh :class:`TupleStore` for one relation.

    ``backend`` defaults to :func:`backend_name` (the
    ``REPRO_TUPLESTORE`` environment variable, ``memory`` when unset).
    The relstore adapter is imported lazily: its package pulls in the
    page layer, which itself uses this package's row codec.
    """
    if backend is None:
        backend = backend_name()
    if backend == "memory":
        return MemoryTupleStore(name, arity)
    if backend == "relstore":
        from .relstore_adapter import RelStoreTupleStore

        return RelStoreTupleStore(name, arity)
    if backend == "disk":
        from .diskstore import DiskTupleStore

        return DiskTupleStore(name, arity)
    raise ValueError(
        f"unknown tuple-store backend {backend!r} (expected one of {BACKENDS})"
    )
