"""The single ground-term ↔ row codec shared by every tuple consumer.

A *row* is a tuple of hashable Python values: atoms become interned
strings, integers and floats stay themselves, and a ground compound
term becomes a nested tuple ``(functor, arg1, ..., argN)`` — so the
Prolog list ``[1,2]`` freezes to ``('.', 1, ('.', 2, '[]'))``.  This is
the value domain of the bottom-up engine's relations
(:mod:`repro.bottomup.relation`), of the hybrid SLG bridge
(:mod:`repro.engine.hybrid`), of predicate fact stores
(:mod:`repro.engine.database`) and of the paged relational store
(:mod:`repro.relstore`); before this module each of those carried its
own near-copy of the conversion.

Three layers live here:

* :func:`freeze_term` / :func:`thaw_value` — ground terms to row
  values and back, with the :data:`MAX_TERM_DEPTH` recursion cap
  (10k-deep terms stay on the engine's iterative kernels);
* :func:`parse_field` — the formatted reader's shape-typed field
  conversion (int-looking → int, float-looking → float, else atom
  string), shared with :mod:`repro.storage.textio`;
* :func:`encode_row` / :func:`decode_row` — the serialized on-page
  form used by :mod:`repro.relstore.pages`, extended with a nested
  tuple tag so frozen compound terms round-trip through pages too.
"""

from __future__ import annotations

import struct

from ..errors import StorageError
from ..terms import Atom, Struct, Var, mkatom

__all__ = [
    "MAX_TERM_DEPTH",
    "FreezeError",
    "freeze_term",
    "thaw_value",
    "parse_field",
    "encode_row",
    "decode_row",
]

# Terms nesting deeper than this are not frozen (and callers treat
# that as "keep the term in term-land"): the conversion is recursive,
# so the bound also caps its stack depth.
MAX_TERM_DEPTH = 64


class FreezeError(Exception):
    """A term cannot enter the row domain.

    Raised for unbound variables, terms nesting beyond
    :data:`MAX_TERM_DEPTH`, and opaque payloads (which unify by
    identity and must stay in term-land).  Callers use it as a
    routing signal — e.g. the hybrid planner falls back to SLG — so
    it deliberately carries no message payload.
    """


def freeze_term(term, depth=0):
    """Freeze a ground term into the row value domain.

    Term arguments are overwhelmingly atoms and numbers and the term
    constructors are never subclassed, so exact-type dispatch handles
    them before any deref machinery; only the recursive Struct case
    pays the depth check (the bound caps recursion, which is what it
    is for).
    """
    t = type(term)
    if t is Atom:
        return term.name
    if t is int or t is float:
        return term
    if t is Struct:
        if depth >= MAX_TERM_DEPTH:
            raise FreezeError
        return (term.name,) + tuple(
            freeze_term(arg, depth + 1) for arg in term.args
        )
    if isinstance(term, Var):
        # Compiled-clause SlotRefs are Var subclasses whose ref is
        # always None, so the unbound check covers them too.
        while isinstance(term, Var):
            if term.ref is None:
                raise FreezeError
            term = term.ref
        return freeze_term(term, depth)
    raise FreezeError


def thaw_value(value):
    """Thaw a frozen value back into a term (inverse of freeze_term)."""
    if type(value) is str:
        return mkatom(value)
    if type(value) is tuple:
        return Struct(value[0], tuple(thaw_value(v) for v in value[1:]))
    return value


def parse_field(text, intern=None):
    """Type one formatted-reader field by shape.

    Integer-looking text becomes an int, float-looking text a float,
    anything else stays a string (an atom in term-land).

    ``intern`` is an optional dict mapping field text to its canonical
    string object.  Formatted EDBs repeat atom fields massively (every
    foreign key, every enum column); a bulk load passes one shared
    table so each distinct string is kept once — repeated fields alias
    the same object instead of one fresh ``str`` per line — and hash
    probes on those columns compare by identity first.
    """
    if not text:
        return ""
    head = text[0]
    if head.isdigit() or (head in "+-" and len(text) > 1):
        try:
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                pass
    elif head == ".":
        try:
            return float(text)
        except ValueError:
            pass
    if intern is None:
        return text
    canonical = intern.get(text)
    if canonical is None:
        intern[text] = text
        return text
    return canonical


# --------------------------------------------------------------------------
# serialized on-page form
# --------------------------------------------------------------------------

_INT = 0
_FLOAT = 1
_STR = 2
_TUPLE = 3


def _encode_value(value, out):
    if isinstance(value, bool):
        raise StorageError("bool columns are not supported")
    if isinstance(value, int):
        out += struct.pack("<Bq", _INT, value)
    elif isinstance(value, float):
        out += struct.pack("<Bd", _FLOAT, value)
    elif isinstance(value, str):
        blob = value.encode("utf-8")
        out += struct.pack("<BI", _STR, len(blob))
        out += blob
    elif isinstance(value, tuple):
        # A frozen compound term: (functor, arg1, ..., argN).
        out += struct.pack("<BH", _TUPLE, len(value))
        for item in value:
            _encode_value(item, out)
    else:
        raise StorageError(f"cannot store column value {value!r}")


def encode_row(row):
    """Serialize one row of int/float/str/nested-tuple values."""
    out = bytearray()
    out += struct.pack("<H", len(row))
    for value in row:
        _encode_value(value, out)
    return bytes(out)


def _decode_value(data, offset):
    tag = data[offset]
    offset += 1
    if tag == _INT:
        (value,) = struct.unpack_from("<q", data, offset)
        return value, offset + 8
    if tag == _FLOAT:
        (value,) = struct.unpack_from("<d", data, offset)
        return value, offset + 8
    if tag == _STR:
        (size,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset : offset + size].decode("utf-8"), offset + size
    if tag == _TUPLE:
        (width,) = struct.unpack_from("<H", data, offset)
        offset += 2
        items = []
        for _ in range(width):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return tuple(items), offset
    raise StorageError(f"bad column tag {tag}")


def decode_row(data):
    """Materialize one row from its on-page bytes."""
    (width,) = struct.unpack_from("<H", data, 0)
    offset = 2
    row = []
    for _ in range(width):
        value, offset = _decode_value(data, offset)
        row.append(value)
    return tuple(row)
