"""A miniature transactional RDBMS — the "Sybase" tier of Table 3.

The paper's join comparison (section 5, table 3) includes Sybase at
100x Quintus and notes: "Sybase uses a fundamentally different
paradigm … none except Sybase have made special provisions for
concurrency or recoverability", and draws the lesson that separating
concurrency out of a query engine pays.

To reproduce that data point without the commercial system, this
package implements the machinery whose *per-tuple costs* the paper is
talking about: a page-based heap with a buffer pool
(:mod:`repro.relstore.pages`, :mod:`repro.relstore.buffer`), two-phase
locking (:mod:`repro.relstore.locks`), write-ahead logging with
recovery (:mod:`repro.relstore.wal`), and an indexed-join executor
that pays lock + log + buffer-pool costs on every tuple it touches
(:mod:`repro.relstore.sqlengine`).
"""

from .buffer import BufferPool
from .locks import LockManager, LockMode
from .pages import HeapFile, Page
from .sqlengine import RelStore
from .wal import WriteAheadLog

__all__ = [
    "RelStore",
    "HeapFile",
    "Page",
    "BufferPool",
    "LockManager",
    "LockMode",
    "WriteAheadLog",
]
