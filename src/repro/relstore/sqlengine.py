"""The relational executor: tables, transactions, indexed joins.

Usage::

    store = RelStore()
    store.create_table("r", 2, index_on=0)
    with store.transaction() as txn:
        store.insert(txn, "r", (1, "a"))
    with store.transaction() as txn:
        rows = store.select(txn, "r", 0, 1)
        pairs = store.join(txn, "r", 1, "s", 0)

Every row touched goes through the buffer pool and the lock manager;
every write is WAL-logged before the page is dirtied.  These per-tuple
fixed costs are the point: they reproduce the Table 3 gap between a
query engine with "special provisions for concurrency and
recoverability" and the memory-resident engines that skip them.
"""

from __future__ import annotations

import itertools

from ..errors import StorageError, TransactionError
from .btree import BPlusTree
from .buffer import BufferPool
from .locks import LockManager, LockMode
from .pages import HeapFile
from .wal import WriteAheadLog

__all__ = ["RelStore", "Transaction"]


class Transaction:
    _ids = itertools.count(1)

    def __init__(self, store):
        self.txn_id = next(self._ids)
        self.store = store
        self.locks = set()
        self.released_locks = False
        self.active = True
        store.wal.log_begin(self.txn_id)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.store.commit(self)
        else:
            self.store.abort(self)
        return False


class _Table:
    __slots__ = ("name", "arity", "heap", "pool", "indexes", "row_count")

    def __init__(self, name, arity, heap_path, pool_pages):
        self.name = name
        self.arity = arity
        self.heap = HeapFile(heap_path)
        self.pool = BufferPool(self.heap, capacity=pool_pages)
        self.indexes = {}  # column -> BPlusTree of value -> [(page, slot)]
        self.row_count = 0


class RelStore:
    """A database of tables with transactions."""

    def __init__(self, directory=None, pool_pages=256):
        self.directory = directory
        self.pool_pages = pool_pages
        self.tables = {}
        self.locks = LockManager()
        wal_path = None if directory is None else f"{directory}/wal.log"
        self.wal = WriteAheadLog(wal_path)

    # -- schema ------------------------------------------------------------------

    def create_table(self, name, arity, index_on=0):
        if name in self.tables:
            raise StorageError(f"table {name} exists")
        heap_path = (
            None if self.directory is None else f"{self.directory}/{name}.heap"
        )
        table = _Table(name, arity, heap_path, self.pool_pages)
        if index_on is not None:
            table.indexes[index_on] = BPlusTree()
        self.tables[name] = table
        return table

    def drop_table(self, name):
        """Drop a table: heap, buffer pool and indexes go with it.

        The WAL is shared store-wide and keeps its records — recovery
        replays into whatever tables the fresh store declares.
        """
        self._table(name)  # raise StorageError when absent
        del self.tables[name]

    def create_index(self, name, column):
        table = self._table(name)
        if column in table.indexes:
            return
        index = BPlusTree()
        for page_id in range(table.heap.page_count):
            page = table.pool.fetch(page_id)
            for slot, row in enumerate(page.all_rows()):
                index.insert(row[column], (page_id, slot))
        table.indexes[column] = index

    def _table(self, name):
        table = self.tables.get(name)
        if table is None:
            raise StorageError(f"no such table {name}")
        return table

    # -- transactions ----------------------------------------------------------------

    def transaction(self):
        return Transaction(self)

    def commit(self, txn):
        if not txn.active:
            raise TransactionError("commit of inactive transaction")
        self.wal.log_commit(txn.txn_id)
        for table in self.tables.values():
            table.pool.flush_all()
        self.locks.release_all(txn)
        txn.active = False

    def abort(self, txn):
        if not txn.active:
            return
        self.wal.log_abort(txn.txn_id)
        self.locks.release_all(txn)
        txn.active = False

    def _check(self, txn):
        if not txn.active:
            raise TransactionError("operation outside an active transaction")

    # -- data operations --------------------------------------------------------------

    def insert(self, txn, name, row):
        self._check(txn)
        table = self._table(name)
        if len(row) != table.arity:
            raise StorageError(f"{name}: arity mismatch for {row!r}")
        self.wal.log_write(txn.txn_id, name, row)
        if table.heap.page_count == 0:
            page = table.pool.new_page()
        else:
            page = table.pool.fetch(table.heap.page_count - 1)
            if page.full:
                page = table.pool.new_page()
        self.locks.acquire(txn, (name, page.page_id), LockMode.EXCLUSIVE)
        slot = page.insert(tuple(row))
        for column, index in table.indexes.items():
            index.insert(row[column], (page.page_id, slot))
        table.row_count += 1

    def scan(self, txn, name):
        """Full scan under shared page locks."""
        self._check(txn)
        table = self._table(name)
        out = []
        for page_id in range(table.heap.page_count):
            self.locks.acquire(txn, (name, page_id), LockMode.SHARED)
            page = table.pool.fetch(page_id)
            out.extend(page.all_rows())
        return out

    def select(self, txn, name, column, value):
        """Indexed (or scanning) selection under shared locks."""
        self._check(txn)
        table = self._table(name)
        index = table.indexes.get(column)
        if index is None:
            return [r for r in self.scan(txn, name) if r[column] == value]
        out = []
        for page_id, slot in index.search(value):
            self.locks.acquire(txn, (name, page_id), LockMode.SHARED)
            page = table.pool.fetch(page_id)
            out.append(page.get_row(slot))
        return out

    def join(self, txn, left_name, left_col, right_name, right_col):
        """Indexed nested-loop equijoin via the Volcano executor.

        Every tuple flows through iterator operators with interpreted
        expressions, row-level shared locks and buffer-pool fetches —
        the per-tuple fixed costs the Table 3 experiment measures.
        Returns concatenated (left + right) tuples.
        """
        self._check(txn)
        from .plans import IndexProbeJoin, Project, SeqScan

        left_arity = self._table(left_name).arity
        right_arity = self._table(right_name).arity
        outer = SeqScan(self, txn, left_name)
        joined = IndexProbeJoin(
            self, txn, outer, right_name, left_col, right_col
        )
        # result materialization through interpreted projection, as any
        # plan-executing system does
        plan = Project(
            joined,
            [("col", i) for i in range(left_arity + right_arity)],
        )
        return list(plan)

    def execute(self, plan):
        """Drain an operator tree built from :mod:`repro.relstore.plans`."""
        return list(plan)

    # -- recovery ----------------------------------------------------------------------

    def recover_into(self, fresh_store):
        """Redo committed work from this store's WAL into a fresh store
        (tables must already be created there)."""
        for name, row in self.wal.committed_writes():
            with fresh_store.transaction() as txn:
                fresh_store.insert(txn, name, row)
        return fresh_store
