"""Write-ahead logging and recovery.

Log records are appended (and serialized) before the corresponding
page is considered durable; recovery replays committed transactions'
writes and drops uncommitted ones.  ``path=None`` keeps the log in
memory, preserving the per-record serialization cost without
filesystem traffic.
"""

from __future__ import annotations

import os
import pickle

__all__ = ["WriteAheadLog", "BEGIN", "WRITE", "COMMIT", "ABORT"]

BEGIN = "begin"
WRITE = "write"
COMMIT = "commit"
ABORT = "abort"


class WriteAheadLog:
    def __init__(self, path=None):
        self.path = path
        self.records_written = 0
        self._memory = []
        self._handle = open(path, "ab") if path is not None else None

    def append(self, record):
        blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        framed = len(blob).to_bytes(4, "little") + blob
        if self._handle is not None:
            self._handle.write(framed)
        else:
            self._memory.append(framed)
        self.records_written += 1

    def log_begin(self, txn_id):
        self.append((BEGIN, txn_id))

    def log_write(self, txn_id, table, row):
        self.append((WRITE, txn_id, table, row))

    def log_commit(self, txn_id):
        self.append((COMMIT, txn_id))
        self.flush()

    def log_abort(self, txn_id):
        self.append((ABORT, txn_id))

    def flush(self):
        if self._handle is not None:
            self._handle.flush()

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- recovery ----------------------------------------------------------------

    def records(self):
        """Iterate all log records (reads the file when file-backed)."""
        if self.path is not None:
            self.flush()
            with open(self.path, "rb") as handle:
                data = handle.read()
        else:
            data = b"".join(self._memory)
        offset = 0
        while offset < len(data):
            size = int.from_bytes(data[offset : offset + 4], "little")
            offset += 4
            yield pickle.loads(data[offset : offset + size])
            offset += size

    def committed_writes(self):
        """Replay: the (table, row) writes of committed transactions, in
        log order — the redo pass of recovery."""
        committed = set()
        writes = []
        for record in self.records():
            kind = record[0]
            if kind == COMMIT:
                committed.add(record[1])
            elif kind == WRITE:
                writes.append((record[1], record[2], record[3]))
        return [(table, row) for txn, table, row in writes if txn in committed]
