"""Client-server result protocol.

Sybase is a client-server system: result rows are serialized into
protocol packets by the server and decoded by the client even when
both sit on one machine.  The paper's join times were necessarily
measured through that interface, so the relational tier of the
Table 3 benchmark ships its result set through this encoder/decoder.
"""

from __future__ import annotations

import struct

from ..errors import StorageError

__all__ = ["encode_rows", "decode_rows", "roundtrip", "PACKET_BYTES"]

PACKET_BYTES = 512


_INT = 0
_FLOAT = 1
_STR = 2


def _encode_row(row, out):
    """Typed column-by-column encoding, TDS-style."""
    out += struct.pack("<H", len(row))
    for value in row:
        if isinstance(value, bool):
            raise StorageError("bool columns are not supported")
        if isinstance(value, int):
            out += struct.pack("<Bq", _INT, value)
        elif isinstance(value, float):
            out += struct.pack("<Bd", _FLOAT, value)
        elif isinstance(value, str):
            blob = value.encode("utf-8")
            out += struct.pack("<BI", _STR, len(blob))
            out += blob
        else:
            raise StorageError(f"cannot ship column value {value!r}")


def encode_rows(rows):
    """Serialize rows into framed packets (list of bytes objects)."""
    packets = []
    current = bytearray()
    for row in rows:
        _encode_row(row, current)
        if len(current) >= PACKET_BYTES:
            packets.append(bytes(current))
            current = bytearray()
    if current:
        packets.append(bytes(current))
    return packets


def decode_rows(packets):
    """Decode packets back into row tuples."""
    rows = []
    buffer = b"".join(packets)
    offset = 0
    total = len(buffer)
    while offset < total:
        if offset + 2 > total:
            raise StorageError("truncated result packet")
        (width,) = struct.unpack_from("<H", buffer, offset)
        offset += 2
        row = []
        for _ in range(width):
            tag = buffer[offset]
            offset += 1
            if tag == _INT:
                (value,) = struct.unpack_from("<q", buffer, offset)
                offset += 8
            elif tag == _FLOAT:
                (value,) = struct.unpack_from("<d", buffer, offset)
                offset += 8
            elif tag == _STR:
                (size,) = struct.unpack_from("<I", buffer, offset)
                offset += 4
                value = buffer[offset : offset + size].decode("utf-8")
                offset += size
            else:
                raise StorageError(f"bad column tag {tag}")
            row.append(value)
        rows.append(tuple(row))
    return rows


def roundtrip(rows):
    """Server-side encode + client-side decode of a result set."""
    return decode_rows(encode_rows(rows))
