"""Two-phase locking.

Lock units are ``(table, page_id)`` pairs — page-level locking, a
common RDBMS granularity of the era.  The store is single-threaded, so
conflicting acquisition from another live transaction raises
:class:`~repro.errors.TransactionError` immediately rather than
blocking; what matters for the reproduction is that *every tuple touch
pays the lock-manager cost* and that the protocol is enforced (no
acquiring after release, shared/exclusive compatibility).
"""

from __future__ import annotations

from ..errors import TransactionError

__all__ = ["LockMode", "LockManager"]


class LockMode:
    SHARED = "S"
    EXCLUSIVE = "X"


class LockManager:
    def __init__(self):
        self.table = {}  # unit -> {txn_id: mode}
        self.acquisitions = 0

    def acquire(self, txn, unit, mode):
        if txn.released_locks:
            raise TransactionError(
                f"txn {txn.txn_id}: lock acquired after release (2PL violation)"
            )
        holders = self.table.setdefault(unit, {})
        held = holders.get(txn.txn_id)
        self.acquisitions += 1
        if held == LockMode.EXCLUSIVE or held == mode:
            return
        if mode == LockMode.SHARED:
            if any(m == LockMode.EXCLUSIVE for t, m in holders.items() if t != txn.txn_id):
                raise TransactionError(f"lock conflict on {unit}")
        else:
            if any(t != txn.txn_id for t in holders):
                raise TransactionError(f"lock conflict on {unit}")
        holders[txn.txn_id] = mode
        txn.locks.add(unit)

    def release_all(self, txn):
        for unit in txn.locks:
            holders = self.table.get(unit)
            if holders is not None:
                holders.pop(txn.txn_id, None)
                if not holders:
                    del self.table[unit]
        txn.locks.clear()
        txn.released_locks = True
