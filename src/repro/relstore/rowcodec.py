"""On-page row encoding.

Pages store rows in serialized, typed form — as every page-based
RDBMS does — so each tuple access *materializes* the row by decoding
it.  This per-touch cost exists even when all pages are resident in
the buffer pool, and is one of the honest components of the Table 3
gap between the relational tier and the engines that keep native
in-memory term representations.
"""

from __future__ import annotations

import struct

from ..errors import StorageError

__all__ = ["encode_row", "decode_row"]

_INT = 0
_FLOAT = 1
_STR = 2


def encode_row(row):
    """Serialize one tuple of int/float/str values to bytes."""
    out = bytearray()
    out += struct.pack("<H", len(row))
    for value in row:
        if isinstance(value, bool):
            raise StorageError("bool columns are not supported")
        if isinstance(value, int):
            out += struct.pack("<Bq", _INT, value)
        elif isinstance(value, float):
            out += struct.pack("<Bd", _FLOAT, value)
        elif isinstance(value, str):
            blob = value.encode("utf-8")
            out += struct.pack("<BI", _STR, len(blob))
            out += blob
        else:
            raise StorageError(f"cannot store column value {value!r}")
    return bytes(out)


def decode_row(data):
    """Materialize one tuple from its on-page bytes."""
    (width,) = struct.unpack_from("<H", data, 0)
    offset = 2
    row = []
    for _ in range(width):
        tag = data[offset]
        offset += 1
        if tag == _INT:
            (value,) = struct.unpack_from("<q", data, offset)
            offset += 8
        elif tag == _FLOAT:
            (value,) = struct.unpack_from("<d", data, offset)
            offset += 8
        elif tag == _STR:
            (size,) = struct.unpack_from("<I", data, offset)
            offset += 4
            value = data[offset : offset + size].decode("utf-8")
            offset += size
        else:
            raise StorageError(f"bad column tag {tag}")
        row.append(value)
    return tuple(row)
