"""On-page row encoding.

Pages store rows in serialized, typed form — as every page-based
RDBMS does — so each tuple access *materializes* the row by decoding
it.  This per-touch cost exists even when all pages are resident in
the buffer pool, and is one of the honest components of the Table 3
gap between the relational tier and the engines that keep native
in-memory term representations.

The encoding itself is the unified storage layer's row codec
(:mod:`repro.store.codec`): the same int/float/str/nested-tuple value
domain every TupleStore backend shares, serialized.  This module is
the page layer's import point for it.
"""

from __future__ import annotations

from ..store.codec import decode_row, encode_row

__all__ = ["encode_row", "decode_row"]
