"""A B+-tree index for the relational store.

Relational systems of the Table 3 era index with B-trees, not hash
tables: a probe walks log-order nodes doing key comparisons at each.
That per-probe cost (still cheap, still all in RAM) is part of the
honest gap between the relational tier and the engines that use
specialized memory-resident hash indexing — a contrast the paper draws
explicitly ("the advantages of using specialized (e.g. indexing)
techniques for memory-resident queries").
"""

from __future__ import annotations

import bisect

__all__ = ["BPlusTree"]

ORDER = 32  # max keys per node


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf):
        self.keys = []
        self.children = []  # internal nodes
        self.values = []  # leaves: list-of-rid-lists parallel to keys
        self.next_leaf = None
        self.is_leaf = is_leaf


class BPlusTree:
    """Maps keys to lists of record ids (page, slot)."""

    def __init__(self):
        self.root = _Node(is_leaf=True)
        self.height = 1
        self.key_count = 0

    # -- search ------------------------------------------------------------------

    def _find_leaf(self, key):
        node = self.root
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def search(self, key):
        """All record ids for ``key`` (empty list when absent)."""
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return []

    def range_scan(self, low, high):
        """All (key, rids) with low <= key <= high, in key order."""
        leaf = self._find_leaf(low)
        out = []
        while leaf is not None:
            for key, rids in zip(leaf.keys, leaf.values):
                if key < low:
                    continue
                if key > high:
                    return out
                out.append((key, rids))
            leaf = leaf.next_leaf
        return out

    # -- insertion ----------------------------------------------------------------

    def insert(self, key, rid):
        split = self._insert(self.root, key, rid)
        if split is not None:
            middle_key, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [middle_key]
            new_root.children = [self.root, right]
            self.root = new_root
            self.height += 1

    def _insert(self, node, key, rid):
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index].append(rid)
                return None
            node.keys.insert(index, key)
            node.values.insert(index, [rid])
            self.key_count += 1
            if len(node.keys) > ORDER:
                return self._split_leaf(node)
            return None
        index = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, rid)
        if split is None:
            return None
        middle_key, right = split
        node.keys.insert(index, middle_key)
        node.children.insert(index + 1, right)
        if len(node.keys) > ORDER:
            return self._split_internal(node)
        return None

    @staticmethod
    def _split_leaf(node):
        middle = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    @staticmethod
    def _split_internal(node):
        middle = len(node.keys) // 2
        middle_key = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        return middle_key, right

    def __len__(self):
        return self.key_count
