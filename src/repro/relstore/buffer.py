"""A fixed-capacity buffer pool with LRU replacement.

Every page access goes through :meth:`BufferPool.fetch`; misses read
from the heap file and may evict (writing back dirty pages).  The hit
and miss counters feed the Table 3 discussion: even with all data "in
RAM … in the Sybase system buffer", every tuple touch pays the
buffer-manager fixed cost.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["BufferPool"]


class BufferPool:
    def __init__(self, heap, capacity=128):
        self.heap = heap
        self.capacity = capacity
        self.frames = OrderedDict()  # page_id -> Page, LRU order
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def fetch(self, page_id):
        page = self.frames.get(page_id)
        if page is not None:
            self.hits += 1
            self.frames.move_to_end(page_id)
            return page
        self.misses += 1
        page = self.heap.read_page(page_id)
        self._admit(page)
        return page

    def _admit(self, page):
        while len(self.frames) >= self.capacity:
            victim_id, victim = self.frames.popitem(last=False)
            self.evictions += 1
            if victim.dirty:
                self.heap.write_page(victim)
        self.frames[page.page_id] = page

    def new_page(self):
        page = self.heap.append_page()
        self._admit(page)
        return page

    def flush_all(self):
        for page in self.frames.values():
            if page.dirty:
                self.heap.write_page(page)

    def stats(self):
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "resident": len(self.frames),
        }
