"""Volcano-style query plans for the relational store.

Real relational engines of the Table 3 era execute queries through a
generic operator tree — every tuple flows through iterator ``next``
calls and predicate/projection *expression interpretation*, on top of
page latching/locking and buffer-pool fetches.  These per-tuple fixed
costs (not disk I/O — the paper's data was "in RAM … in the Sybase
system buffer") are what the 100x column of Table 3 measures, so the
store's join runs through this executor rather than through bare
Python loops.

Expressions are tiny trees: ``("col", i)``, ``("const", v)``,
``("eq"/"lt"/"le", a, b)``, ``("and", a, b)``.
"""

from __future__ import annotations

from ..errors import StorageError
from .locks import LockMode

__all__ = [
    "SeqScan",
    "IndexProbeJoin",
    "Filter",
    "Project",
    "evaluate_expr",
]


def evaluate_expr(expr, row):
    """Interpret one expression node against a tuple."""
    tag = expr[0]
    if tag == "col":
        return row[expr[1]]
    if tag == "const":
        return expr[1]
    if tag == "eq":
        return evaluate_expr(expr[1], row) == evaluate_expr(expr[2], row)
    if tag == "lt":
        return evaluate_expr(expr[1], row) < evaluate_expr(expr[2], row)
    if tag == "le":
        return evaluate_expr(expr[1], row) <= evaluate_expr(expr[2], row)
    if tag == "and":
        return evaluate_expr(expr[1], row) and evaluate_expr(expr[2], row)
    raise StorageError(f"bad expression node {expr!r}")


class SeqScan:
    """Full scan: per-row shared lock + buffer-pool fetch per page."""

    def __init__(self, store, txn, table_name):
        self.store = store
        self.txn = txn
        self.table_name = table_name

    def __iter__(self):
        store = self.store
        txn = self.txn
        name = self.table_name
        table = store.tables[name]
        pool = table.pool
        for page_id in range(table.heap.page_count):
            for slot in range(pool.fetch(page_id).slot_count):
                # each tuple access pins the page, takes a row lock and
                # materializes the slot from its on-page encoding
                page = pool.fetch(page_id)
                store.locks.acquire(
                    txn, (name, page_id, slot), LockMode.SHARED
                )
                yield page.get_row(slot)


class IndexProbeJoin:
    """Indexed nested-loop join: probe the inner index per outer row.

    Emits concatenated (outer + inner) tuples.  Each matched inner row
    pays a row lock and a buffer fetch; the join keys are compared
    through expression interpretation like any RDBMS residual
    predicate.
    """

    def __init__(self, store, txn, outer, inner_name, outer_col, inner_col):
        self.store = store
        self.txn = txn
        self.outer = outer
        self.inner_name = inner_name
        self.outer_col = outer_col
        self.inner_col = inner_col

    def __iter__(self):
        store = self.store
        txn = self.txn
        inner_name = self.inner_name
        table = store.tables[inner_name]
        index = table.indexes.get(self.inner_col)
        if index is None:
            store.create_index(inner_name, self.inner_col)
            index = table.indexes[self.inner_col]
        key_expr = ("col", self.outer_col)
        for outer_row in self.outer:
            key = evaluate_expr(key_expr, outer_row)
            for page_id, slot in index.search(key):
                store.locks.acquire(
                    txn, (inner_name, page_id, slot), LockMode.SHARED
                )
                page = table.pool.fetch(page_id)
                inner_row = page.get_row(slot)
                combined = tuple(outer_row) + tuple(inner_row)
                # residual join predicate, interpreted per output tuple
                residual = (
                    "eq",
                    ("col", self.outer_col),
                    ("col", len(outer_row) + self.inner_col),
                )
                if evaluate_expr(residual, combined):
                    yield combined


class Filter:
    def __init__(self, child, predicate_expr):
        self.child = child
        self.predicate_expr = predicate_expr

    def __iter__(self):
        predicate = self.predicate_expr
        for row in self.child:
            if evaluate_expr(predicate, row):
                yield row


class Project:
    def __init__(self, child, column_exprs):
        self.child = child
        self.column_exprs = column_exprs

    def __iter__(self):
        exprs = self.column_exprs
        for row in self.child:
            yield tuple(evaluate_expr(e, row) for e in exprs)
