"""Page-based heap storage.

Rows live in fixed-capacity pages; pages are serialized to a single
heap file at page-aligned offsets.  Rows are tuples of ints, floats
and strings.
"""

from __future__ import annotations

import os
import pickle

from ..errors import StorageError
from .rowcodec import decode_row, encode_row

__all__ = ["Page", "HeapFile", "PAGE_BYTES", "ROWS_PER_PAGE"]

PAGE_BYTES = 4096
ROWS_PER_PAGE = 64


class Page:
    """One heap page: a bounded directory of serialized row slots.

    Rows live on the page in encoded form (see
    :mod:`repro.relstore.rowcodec`); :meth:`get_row` materializes one
    slot, which is how page-based systems touch tuples.
    """

    __slots__ = ("page_id", "slots", "dirty")

    def __init__(self, page_id, slots=None):
        self.page_id = page_id
        self.slots = list(slots or [])
        self.dirty = False

    @property
    def full(self):
        return len(self.slots) >= ROWS_PER_PAGE

    @property
    def slot_count(self):
        return len(self.slots)

    def insert(self, row):
        """Append a row (encoding it); returns its slot number."""
        if self.full:
            raise StorageError(f"page {self.page_id} is full")
        self.slots.append(encode_row(row))
        self.dirty = True
        return len(self.slots) - 1

    def get_row(self, slot):
        """Materialize the tuple stored in one slot."""
        return decode_row(self.slots[slot])

    def all_rows(self):
        return [decode_row(data) for data in self.slots]

    def serialize(self):
        blob = pickle.dumps(self.slots, protocol=pickle.HIGHEST_PROTOCOL)
        if len(blob) > PAGE_BYTES - 8:
            raise StorageError(
                f"page {self.page_id} overflows {PAGE_BYTES} bytes; "
                "reduce ROWS_PER_PAGE or row width"
            )
        header = len(blob).to_bytes(8, "little")
        return header + blob + b"\0" * (PAGE_BYTES - 8 - len(blob))

    @classmethod
    def deserialize(cls, page_id, data):
        size = int.from_bytes(data[:8], "little")
        slots = pickle.loads(data[8 : 8 + size])
        return cls(page_id, slots)


class HeapFile:
    """A file of pages; supports read_page/write_page/append_page.

    ``path=None`` keeps pages in memory (used by tests and by callers
    that want the paging behaviour without filesystem traffic).
    """

    def __init__(self, path=None):
        self.path = path
        self.page_count = 0
        self._memory = {}
        if path is not None and os.path.exists(path):
            self.page_count = os.path.getsize(path) // PAGE_BYTES

    def read_page(self, page_id):
        if not 0 <= page_id < self.page_count:
            raise StorageError(f"page {page_id} out of range")
        if self.path is None:
            return Page.deserialize(page_id, self._memory[page_id])
        with open(self.path, "rb") as handle:
            handle.seek(page_id * PAGE_BYTES)
            return Page.deserialize(page_id, handle.read(PAGE_BYTES))

    def write_page(self, page):
        data = page.serialize()
        if self.path is None:
            self._memory[page.page_id] = data
        else:
            mode = "r+b" if os.path.exists(self.path) else "w+b"
            with open(self.path, mode) as handle:
                handle.seek(page.page_id * PAGE_BYTES)
                handle.write(data)
        page.dirty = False

    def append_page(self):
        page = Page(self.page_count)
        self.page_count += 1
        self.write_page(page)
        return page
