"""``:- table_all.`` — automatic tabling by call-graph loop breaking.

Section 4.3: "Intuitively, table_all constructs the call graph and
chooses to table enough predicates to ensure that all loops are
broken", trading precision for simplicity and speed (the exact
question — will a goal repeat on an SLD path — is undecidable).

The implementation does exactly that, on top of the shared analysis
layer: :func:`repro.analysis.callgraph.build_call_graph` extracts the
predicate call graph of the consult unit (the directive runs over the
clause batch *before* it lands in the database, so the batch-level
walker serves here where the database-attached registry cannot), and
:func:`repro.analysis.graph.tarjan_sccs` finds its cyclic strongly
connected components.  Every predicate in a cyclic SCC (including
self-loops) is tabled; every cycle lies inside one SCC, so tabling all
SCC members breaks all loops.  Like XSB's version this "may happen to
choose too many" predicates, and the same remedies apply (explicit
``table`` declarations, or moving predicates to another module, since
the directive's scope is the consult unit).
"""

from __future__ import annotations

from ..analysis.callgraph import build_call_graph
from ..analysis.graph import tarjan_sccs

__all__ = ["build_call_graph", "select_tabled"]


def select_tabled(clauses):
    """The predicate indicators ``table_all`` chooses to table."""
    graph = build_call_graph(clauses)
    chosen = set()
    for scc in tarjan_sccs(graph):
        if len(scc) > 1:
            chosen.update(scc)
        else:
            node = scc[0]
            if node in graph.get(node, ()):  # direct self-recursion
                chosen.add(node)
    return sorted(chosen)
