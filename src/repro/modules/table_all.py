"""``:- table_all.`` — automatic tabling by call-graph loop breaking.

Section 4.3: "Intuitively, table_all constructs the call graph and
chooses to table enough predicates to ensure that all loops are
broken", trading precision for simplicity and speed (the exact
question — will a goal repeat on an SLD path — is undecidable).

The implementation here does exactly that: it builds the predicate
call graph of the consult unit and tables every predicate belonging to
a cyclic strongly connected component (including self-loops).  Every
cycle lies inside one SCC, so tabling all SCC members breaks all
loops; like XSB's version, this "may happen to choose too many"
predicates, and the same remedies apply (explicit ``table``
declarations, or moving predicates to another module, since the
directive's scope is the consult unit).
"""

from __future__ import annotations

from ..terms import Atom, Struct, deref

__all__ = ["build_call_graph", "select_tabled"]

_CONTROL = {
    (",", 2),
    (";", 2),
    ("->", 2),
    ("\\+", 1),
    ("not", 1),
    ("tnot", 1),
    ("e_tnot", 1),
    ("once", 1),
    ("ignore", 1),
    ("call", 1),
}


def _body_literals(term, out):
    """Collect called predicate indicators, descending into control."""
    term = deref(term)
    if isinstance(term, Struct):
        key = (term.name, len(term.args))
        if key in _CONTROL:
            for arg in term.args:
                _body_literals(arg, out)
            return
        if term.name in ("findall", "tfindall", "bagof", "setof") and len(
            term.args
        ) == 3:
            _body_literals(term.args[1], out)
            return
        if term.name == "forall" and len(term.args) == 2:
            _body_literals(term.args[0], out)
            _body_literals(term.args[1], out)
            return
        out.append((term.name, len(term.args)))
    elif isinstance(term, Atom):
        out.append((term.name, 0))


def build_call_graph(clauses):
    """Edges head-indicator -> called-indicator over a clause batch."""
    edges = {}
    for clause in clauses:
        clause = deref(clause)
        if (
            isinstance(clause, Struct)
            and clause.name == ":-"
            and len(clause.args) == 2
        ):
            head = deref(clause.args[0])
            body = clause.args[1]
        else:
            head = clause
            body = None
        if isinstance(head, Struct):
            head_key = (head.name, len(head.args))
        elif isinstance(head, Atom):
            head_key = (head.name, 0)
        else:
            continue
        callees = edges.setdefault(head_key, set())
        if body is not None:
            found = []
            _body_literals(body, found)
            callees.update(found)
    return edges


def _tarjan_sccs(graph):
    """Tarjan's strongly connected components, iteratively."""
    index_counter = [0]
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []

    for root in graph:
        if root in index:
            continue
        work = [(root, iter(sorted(graph.get(root, ()))))]
        index[root] = lowlink[root] = index_counter[0]
        index_counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in graph:
                    continue
                if child not in index:
                    index[child] = lowlink[child] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph.get(child, ())))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs


def select_tabled(clauses):
    """The predicate indicators ``table_all`` chooses to table."""
    graph = build_call_graph(clauses)
    chosen = set()
    for scc in _tarjan_sccs(graph):
        if len(scc) > 1:
            chosen.update(scc)
        else:
            node = scc[0]
            if node in graph.get(node, ()):  # direct self-recursion
                chosen.add(node)
    return sorted(chosen)
