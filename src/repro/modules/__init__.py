"""Module system and table_all auto-tabling analysis."""

from .modsys import ModuleSystem
from .table_all import build_call_graph, select_tabled

__all__ = ["ModuleSystem", "select_tabled", "build_call_graph"]
