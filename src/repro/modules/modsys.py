"""Term-based module system (section 4.2).

XSB's module system is *term-based* rather than predicate-based: what
is hidden, imported or exported are terms — predicates, structure
symbols and constants alike.  This implementation realizes term
scoping by symbol renaming at read time:

* ``:- module(m).`` opens module ``m`` for the rest of the consult unit;
* ``:- local f/1.`` declares the symbol ``f`` of arity 1 (arity 0 for
  constants) private: every occurrence in the unit — as a predicate, a
  structure functor, or a constant — is renamed to ``m$f``, making it
  unreachable from other modules;
* ``:- export p/2.`` declares a symbol public (the default); exported
  symbols keep their names and are globally visible;
* ``:- import p/2 from m.`` records where a symbol is expected to come
  from; since exported symbols are global, the declaration serves as
  the dynamic-loading hint the paper describes and is validated when
  the exporting module is present.
"""

from __future__ import annotations

from ..errors import ModuleError
from ..terms import Atom, Struct, deref, mkatom

__all__ = ["ModuleSystem"]

DEFAULT_MODULE = "usermod"


class ModuleInfo:
    __slots__ = ("name", "exports", "locals", "imports")

    def __init__(self, name):
        self.name = name
        self.exports = set()
        self.locals = set()
        self.imports = {}  # (name, arity) -> source module


class ModuleSystem:
    """Tracks module declarations and performs term-based renaming."""

    def __init__(self):
        self.modules = {DEFAULT_MODULE: ModuleInfo(DEFAULT_MODULE)}
        self.current = DEFAULT_MODULE

    def begin_module(self, name):
        self.modules.setdefault(name, ModuleInfo(name))
        self.current = name

    def info(self, name=None):
        return self.modules[name or self.current]

    # -- declarations ----------------------------------------------------------

    def export_current(self, indicator):
        info = self.info()
        if indicator in info.locals:
            raise ModuleError(f"{indicator} is declared local in {info.name}")
        info.exports.add(indicator)

    def local_current(self, indicator):
        info = self.info()
        if indicator in info.exports:
            raise ModuleError(f"{indicator} is exported from {info.name}")
        info.locals.add(indicator)

    def import_directive(self, term):
        """Handle ``:- import p/2 from m.``"""
        term = deref(term)
        if (
            isinstance(term, Struct)
            and term.name == "from"
            and len(term.args) == 2
        ):
            from ..lang.reader import parse_indicator

            source = deref(term.args[1])
            if not isinstance(source, Atom):
                raise ModuleError(f"bad import source: {source!r}")
            specs = term.args[0]
            for spec in self._conj_items(specs):
                indicator = parse_indicator(spec)
                info = self.info()
                info.imports[indicator] = source.name
                exporter = self.modules.get(source.name)
                if exporter is not None and indicator not in exporter.exports:
                    raise ModuleError(
                        f"{indicator[0]}/{indicator[1]} is not exported "
                        f"from {source.name}"
                    )
            return
        raise ModuleError(f"bad import directive: {term!r}")

    @staticmethod
    def _conj_items(term):
        term = deref(term)
        if (
            isinstance(term, Struct)
            and term.name == ","
            and len(term.args) == 2
        ):
            return ModuleSystem._conj_items(term.args[0]) + ModuleSystem._conj_items(
                term.args[1]
            )
        return [term]

    # -- renaming ------------------------------------------------------------------

    def mangled(self, name, arity):
        return f"{self.current}${name}"

    def rename_clause(self, term):
        """Apply local-symbol renaming for the current module."""
        info = self.info()
        if not info.locals or self.current == DEFAULT_MODULE:
            return term
        return self._rename(term, info)

    def _rename(self, term, info):
        term = deref(term)
        if isinstance(term, Atom):
            if (term.name, 0) in info.locals:
                return mkatom(self.mangled(term.name, 0))
            return term
        if isinstance(term, Struct):
            args = tuple(self._rename(a, info) for a in term.args)
            if (term.name, len(term.args)) in info.locals:
                return Struct(self.mangled(term.name, len(term.args)), args)
            if args == term.args:
                return term
            return Struct(term.name, args)
        return term

    def reset_to_default(self):
        self.current = DEFAULT_MODULE
