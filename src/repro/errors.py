"""Exception hierarchy for the repro deductive database engine."""


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class ParseError(ReproError):
    """Raised when source text cannot be parsed into terms or clauses.

    Carries the source position of the offending token when available.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ExistenceError(ReproError):
    """Raised when a goal calls a predicate that is not defined."""

    def __init__(self, indicator):
        self.indicator = indicator
        super().__init__(f"undefined predicate: {indicator}")


class TypeError_(ReproError):
    """Raised when a builtin receives an argument of the wrong type.

    Named with a trailing underscore to avoid shadowing the Python builtin.
    """

    def __init__(self, expected, culprit):
        self.expected = expected
        self.culprit = culprit
        super().__init__(f"type error: expected {expected}, got {culprit}")


class InstantiationError(ReproError):
    """Raised when a builtin needs a bound argument but finds a variable."""

    def __init__(self, context=""):
        suffix = f" in {context}" if context else ""
        super().__init__(f"arguments insufficiently instantiated{suffix}")


class EvaluationError(ReproError):
    """Raised when arithmetic evaluation fails (e.g. division by zero)."""


class NonStratifiedError(ReproError):
    """Raised by the SLG engine when it detects a loop through negation.

    The engine implements SLG restricted to modularly stratified programs,
    exactly as XSB version 1.3 did; programs that trip this error must be
    evaluated with the well-founded-semantics interpreter in
    :mod:`repro.engine.wfs`.
    """

    def __init__(self, subgoal):
        self.subgoal = subgoal
        super().__init__(
            f"loop through negation at subgoal {subgoal}; "
            "use the WFS interpreter (repro.engine.wfs) for "
            "non-stratified programs"
        )


class TablingError(ReproError):
    """Raised for misuse of tabling primitives (e.g. cut over a table)."""


class ModuleError(ReproError):
    """Raised for module-system violations (bad import/export)."""


class StorageError(ReproError):
    """Raised for object-file and bulk-load format problems."""


class TransactionError(ReproError):
    """Raised by the relational store for lock/transaction violations."""


class SafetyError(ReproError):
    """Raised when a datalog rule is not range-restricted (unsafe)."""
