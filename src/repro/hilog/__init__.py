"""HiLog support: apply/N encoding and compile-time specialization."""

from .encode import APPLY, hilog_encode, hilog_functor_symbol
from .specialize import specialize_batch

__all__ = ["hilog_encode", "hilog_functor_symbol", "specialize_batch", "APPLY"]
