"""Compile-time specialization of known HiLog calls (section 4.7).

The paper optimizes::

    apply(path(Graph),X,Y) :- apply(Graph,X,Y).
    apply(path(Graph),X,Y) :- apply(path(Graph),X,Z), apply(Graph,X,Z).

into::

    apply(path(Graph),X,Y) :- apply_path(Graph,X,Y).     % bridge
    apply_path(Graph,X,Y) :- apply(Graph,X,Y).
    apply_path(Graph,X,Y) :- apply_path(Graph,X,Z), apply(Graph,X,Z).

``specialize_batch`` applies that transformation to a consulted batch
of clauses: every ``apply/N`` clause whose first argument has a known
compound functor ``f/k`` moves to a specialized predicate
``apply_f/(k+N-1)`` whose arguments are ``f``'s arguments followed by
the original call arguments; a single bridge clause per group keeps
variable-functor calls working; and known call sites inside the batch
are rewritten to call the specialized predicate directly.
"""

from __future__ import annotations

from ..analysis.callgraph import CONTROL_NAMES
from ..terms import Struct, Var, deref
from .encode import APPLY, hilog_functor_symbol

__all__ = ["specialize_batch", "specialized_name"]


def specialized_name(functor_name, functor_arity):
    return f"apply_{functor_name}${functor_arity}"


def _is_apply(term):
    return (
        isinstance(term, Struct)
        and term.name == APPLY
        and len(term.args) >= 2
    )


def _specialize_literal(term, groups):
    """Rewrite one call literal if its functor group was specialized."""
    term = deref(term)
    if not isinstance(term, Struct):
        return term
    if _is_apply(term):
        functor = deref(term.args[0])
        symbol = hilog_functor_symbol(functor)
        if (
            symbol is not None
            and symbol[0] == "struct"
            and (symbol[1], symbol[2], len(term.args)) in groups
        ):
            new_args = tuple(functor.args) + tuple(term.args[1:])
            return Struct(specialized_name(symbol[1], symbol[2]), new_args)
        # Not specialized: still recurse into arguments (e.g. nested
        # apply in findall templates).
    args = tuple(_specialize_literal(a, groups) for a in term.args)
    if args == term.args:
        return term
    return Struct(term.name, args)


def _specialize_body(term, groups):
    # CONTROL_NAMES is the analysis layer's single source of truth for
    # which constructs wrap goals; the rewriter descends through
    # exactly the constructs the call-graph walker does.
    term = deref(term)
    if isinstance(term, Struct) and term.name in CONTROL_NAMES:
        args = tuple(_specialize_body(a, groups) for a in term.args)
        return Struct(term.name, args)
    return _specialize_literal(term, groups)


def specialize_batch(clauses, report=None):
    """Transform a batch of clause terms; returns the new clause list.

    ``clauses`` are encoded clause terms (``Head`` or ``Head :- Body``).
    The return value replaces the batch: specialized predicates, bridge
    clauses, and all other clauses with call sites rewritten.

    When ``report`` is a list, each specialized group is appended to it
    as ``(apply_arity, specialized_name, specialized_arity)`` so the
    caller can propagate per-predicate declarations (tabling in
    particular) from ``apply/N`` to the specialized predicates.
    """
    # Pass 1: find the specializable groups: (functor_name, functor_arity,
    # apply_arity) such that some apply clause head has that compound
    # functor as its first argument.
    groups = set()
    for clause in clauses:
        head = _clause_head(clause)
        if _is_apply(head):
            symbol = hilog_functor_symbol(deref(head.args[0]))
            if symbol is not None and symbol[0] == "struct":
                groups.add((symbol[1], symbol[2], len(head.args)))
    if not groups:
        return list(clauses)
    if report is not None:
        for name, arity, apply_arity in groups:
            report.append(
                (apply_arity, specialized_name(name, arity), arity + apply_arity - 1)
            )

    out = []
    bridged = set()
    for clause in clauses:
        head, body = _split(clause)
        new_body = _specialize_body(body, groups) if body is not None else None
        if _is_apply(head):
            functor = deref(head.args[0])
            symbol = hilog_functor_symbol(functor)
            group = (
                (symbol[1], symbol[2], len(head.args))
                if symbol is not None and symbol[0] == "struct"
                else None
            )
            if group is not None and group in groups:
                name = specialized_name(symbol[1], symbol[2])
                new_head = Struct(
                    name, tuple(functor.args) + tuple(head.args[1:])
                )
                if group not in bridged:
                    bridged.add(group)
                    out.append(_bridge_clause(symbol, len(head.args)))
                out.append(_join(new_head, new_body))
                continue
        out.append(_join(head, new_body))
    return out


def _bridge_clause(symbol, apply_arity):
    """``apply(f(A...), X...) :- apply_f(A..., X...)``."""
    _, name, arity = symbol
    functor_vars = tuple(Var() for _ in range(arity))
    call_vars = tuple(Var() for _ in range(apply_arity - 1))
    head = Struct(APPLY, (Struct(name, functor_vars), *call_vars))
    body = Struct(specialized_name(name, arity), functor_vars + call_vars)
    return Struct(":-", (head, body))


def _clause_head(clause):
    clause = deref(clause)
    if isinstance(clause, Struct) and clause.name == ":-" and len(clause.args) == 2:
        return deref(clause.args[0])
    return clause


def _split(clause):
    clause = deref(clause)
    if isinstance(clause, Struct) and clause.name == ":-" and len(clause.args) == 2:
        return deref(clause.args[0]), deref(clause.args[1])
    return clause, None


def _join(head, body):
    if body is None:
        return head
    return Struct(":-", (head, body))
