"""HiLog-to-first-order encoding (sections 4.1 and 4.7 of the paper).

HiLog terms are encoded with a family of ``apply`` symbols: a HiLog
term ``T`` of arity N becomes ``apply/(N+1)`` whose first argument is
the functor of ``T``.  The parser already produces ``apply`` structs
for syntactically-higher-order applications (``X(bob,Y)``,
``f(a)(b)``); what remains is the *declared* case — after

    :- hilog h.

the first-order-looking term ``h(a)`` must be read as ``apply(h, a)``.
``hilog_encode`` performs that rewrite over a whole clause.
"""

from __future__ import annotations

from ..terms import Struct, Var, deref, mkatom

__all__ = ["hilog_encode", "hilog_functor_symbol", "APPLY"]

APPLY = "apply"

# Connectives whose *structure* is never subject to hilog declarations;
# their arguments still are.
_TRANSPARENT = {
    (":-", 2),
    (":-", 1),
    ("?-", 1),
    (",", 2),
    (";", 2),
    ("->", 2),
    ("\\+", 1),
    ("not", 1),
    ("tnot", 1),
    ("e_tnot", 1),
    ("findall", 3),
    ("tfindall", 3),
    ("bagof", 3),
    ("setof", 3),
    ("forall", 2),
    ("once", 1),
}


def hilog_encode(term, hilog_symbols):
    """Rewrite ``name(args...)`` to ``apply(name, args...)`` for every
    functor ``name`` in ``hilog_symbols``, recursively."""
    if not hilog_symbols:
        return term
    return _encode(term, hilog_symbols)


def _encode(term, symbols):
    term = deref(term)
    if not isinstance(term, Struct):
        return term
    args = tuple(_encode(a, symbols) for a in term.args)
    key = (term.name, len(term.args))
    if key not in _TRANSPARENT and term.name in symbols and term.name != APPLY:
        return Struct(APPLY, (mkatom(term.name), *args))
    if args == term.args:
        return term
    return Struct(term.name, args)


def hilog_functor_symbol(term):
    """The outer symbol of an apply/N first argument, for grouping.

    Returns ``("struct", name, arity)``, ``("atom", name)``, or None
    for variables/numbers (no compile-time specialization possible).
    """
    term = deref(term)
    if isinstance(term, Struct):
        return ("struct", term.name, len(term.args))
    if isinstance(term, Var):
        return None
    from ..terms import Atom

    if isinstance(term, Atom):
        return ("atom", term.name)
    return None
