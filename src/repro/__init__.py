"""repro — a reproduction of "XSB as an Efficient Deductive Database Engine".

Public API
----------

The primary entry point is :class:`repro.engine.Engine`:

>>> from repro import Engine
>>> db = Engine()
>>> db.consult_string('''
...     :- table path/2.
...     path(X,Y) :- edge(X,Y).
...     path(X,Y) :- path(X,Z), edge(Z,Y).
...     edge(1,2). edge(2,3). edge(3,1).
... ''')
>>> sorted(s['X'] for s in db.query('path(1, X)'))
[1, 2, 3]

See README.md for the architecture overview, DESIGN.md for the map from
the paper's systems/experiments to modules, and EXPERIMENTS.md for the
measured reproduction of every table and figure.
"""

from .engine import Engine
from .errors import (
    EvaluationError,
    ExistenceError,
    InstantiationError,
    ModuleError,
    NonStratifiedError,
    ParseError,
    ReproError,
    SafetyError,
    StorageError,
    TablingError,
    TransactionError,
    TypeError_,
)
from .lang import parse_term, parse_terms, term_to_str
from .terms import Atom, Struct, Var, mkatom, mkstruct

__version__ = "1.3.0"

__all__ = [
    "Engine",
    "Atom",
    "Struct",
    "Var",
    "mkatom",
    "mkstruct",
    "parse_term",
    "parse_terms",
    "term_to_str",
    "ReproError",
    "ParseError",
    "ExistenceError",
    "InstantiationError",
    "EvaluationError",
    "NonStratifiedError",
    "TablingError",
    "ModuleError",
    "StorageError",
    "TransactionError",
    "TypeError_",
    "SafetyError",
    "__version__",
]
