"""Indexing subsystem: hash indexes, first-string tries, answer tries."""

from .answer_trie import AnswerTrie
from .subgoal_trie import SubgoalTrie
from .hash_index import HashIndex, IndexPlan, IndexSpec, outer_symbol
from .trie_index import FirstStringIndex, first_string, first_string_args

__all__ = [
    "HashIndex",
    "IndexSpec",
    "IndexPlan",
    "outer_symbol",
    "FirstStringIndex",
    "first_string",
    "first_string_args",
    "AnswerTrie",
    "SubgoalTrie",
]
