"""First-string indexing (section 4.5, example 4.2 of the paper).

A variant of path indexing: each clause head is flattened into the
string of symbols met on a preorder traversal, *stopping at the first
variable*; the strings are stored in a trie (discrimination net).
Retrieval walks the trie with the call's preorder string, also stopping
at the call's first variable, and returns every clause whose string is
a prefix of the call's (more general clauses) plus, when the call's
string ran out first, every clause in the remaining subtree.

The result is a superset of the matching clauses (indexing is a
prefilter; head unification performs the exact check), never a subset.
"""

from __future__ import annotations

from ..terms import Atom, Struct, Var, deref

__all__ = ["first_string", "first_string_args", "FirstStringIndex", "TrieNode"]


def first_string(term):
    """The preorder symbol string of ``term``, cut at the first variable.

    Symbols are ``(name, arity)`` pairs; numbers appear as
    ``(value, 0)``.  Returns ``(tokens, hit_variable)``.
    """
    tokens = []
    stack = [term]
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            return tokens, True
        if isinstance(t, Struct):
            tokens.append((t.name, len(t.args)))
            stack.extend(reversed(t.args))
        elif isinstance(t, Atom):
            tokens.append((t.name, 0))
        else:
            tokens.append((t, 0))
    return tokens, False


def first_string_args(args):
    """:func:`first_string` of ``p(args...)`` minus the leading predicate
    token — what per-predicate retrieval needs, without materializing
    the wrapper struct."""
    tokens = []
    stack = list(args)
    stack.reverse()
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            return tokens, True
        if isinstance(t, Struct):
            tokens.append((t.name, len(t.args)))
            stack.extend(reversed(t.args))
        elif isinstance(t, Atom):
            tokens.append((t.name, 0))
        else:
            tokens.append((t, 0))
    return tokens, False


class TrieNode:
    """One discrimination-net node."""

    __slots__ = ("children", "terminals")

    def __init__(self):
        self.children = {}
        self.terminals = []  # (seq, payload) of strings ending here

    def subtree_entries(self, out):
        """Collect every (seq, payload) stored at or below this node."""
        stack = [self]
        while stack:
            node = stack.pop()
            out.extend(node.terminals)
            stack.extend(node.children.values())


class FirstStringIndex:
    """Trie of clause-head first-strings for one predicate."""

    __slots__ = ("root", "size")

    def __init__(self):
        self.root = TrieNode()
        self.size = 0

    def insert(self, seq, head, payload):
        tokens, _ = first_string(head)
        node = self.root
        # The first token is the predicate symbol itself; the paper drops
        # it ("after removing the first token") since the trie is
        # per-predicate.  We keep the same convention.
        for token in tokens[1:]:
            child = node.children.get(token)
            if child is None:
                child = TrieNode()
                node.children[token] = child
            node = child
        node.terminals.append((seq, payload))
        self.size += 1

    def remove(self, seq):
        """Remove the entry with the given sequence number (linear scan)."""
        removed = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            before = len(node.terminals)
            node.terminals[:] = [e for e in node.terminals if e[0] != seq]
            removed += before - len(node.terminals)
            stack.extend(node.children.values())
        self.size -= removed

    def lookup(self, call):
        """Candidate payloads for ``call`` in clause order (a superset)."""
        tokens, hit_variable = first_string(call)
        return self._walk(tokens[1:], hit_variable)

    def lookup_args(self, call_args):
        """Like :meth:`lookup` on ``p(call_args...)``, but straight from
        the argument tuple — the retrieval path builds no call struct."""
        tokens, hit_variable = first_string_args(call_args)
        return self._walk(tokens, hit_variable)

    def _walk(self, tokens, hit_variable):
        entries = []
        node = self.root
        matched_all = True
        for token in tokens:
            entries.extend(node.terminals)
            child = node.children.get(token)
            if child is None:
                matched_all = False
                break
            node = child
        if matched_all:
            if hit_variable:
                node.subtree_entries(entries)
            else:
                entries.extend(node.terminals)
        if len(entries) > 1:
            entries.sort(key=lambda entry: entry[0])
        return [payload for _, payload in entries]

    def depth(self):
        """Maximum trie depth (used by tests and the indexing ablation)."""
        best = 0
        stack = [(self.root, 0)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            stack.extend((child, d + 1) for child in node.children.values())
        return best
