"""Trie-based answer storage for tables.

The paper (section 4.5) reports trie indexing for answer clauses as
under development: "the index is being integrated with the actual
storing of the answers, which will both decrease the space and the time
necessary for saving answers".  This module implements that design:
answers are stored *as* paths of a trie keyed on the full preorder
symbol string (variables numbered by first occurrence), so the
duplicate check and the insertion are one traversal, and common answer
prefixes share space.
"""

from __future__ import annotations

from ..terms import Atom, Struct, Var, deref

__all__ = ["AnswerTrie"]

_VAR = 0
_ATOM = 1
_NUM = 2
_STRUCT = 3


def _flatten(term):
    """Full preorder token string; variables become (VAR, index)."""
    tokens = []
    varmap = {}
    stack = [term]
    while stack:
        t = deref(stack.pop())
        if isinstance(t, Var):
            index = varmap.get(id(t))
            if index is None:
                index = len(varmap)
                varmap[id(t)] = index
            tokens.append((_VAR, index))
        elif isinstance(t, Struct):
            tokens.append((_STRUCT, t.name, len(t.args)))
            stack.extend(reversed(t.args))
        elif isinstance(t, Atom):
            tokens.append((_ATOM, t.name))
        else:
            tokens.append((_NUM, type(t).__name__, t))
    return tokens


def _rebuild(tokens):
    """Reconstruct a term from a token string produced by ``_flatten``.

    Iterative: struct tokens open a frame holding the functor and the
    args collected so far; leaf values close frames as arities fill up.
    """
    from ..terms import mkatom

    variables = {}
    stack = []  # (name, arity, parts) of structs awaiting arguments
    for token in tokens:
        tag = token[0]
        if tag == _STRUCT:
            stack.append((token[1], token[2], []))
            continue
        if tag == _VAR:
            value = variables.get(token[1])
            if value is None:
                value = Var()
                variables[token[1]] = value
        elif tag == _ATOM:
            value = mkatom(token[1])
        else:
            value = token[2]
        while True:
            if not stack:
                return value
            name, arity, parts = stack[-1]
            parts.append(value)
            if len(parts) < arity:
                break
            stack.pop()
            value = Struct(name, parts)
    raise ValueError("truncated answer token string")


class _Node:
    __slots__ = ("children", "is_answer")

    def __init__(self):
        self.children = {}
        self.is_answer = False


class AnswerTrie:
    """Answers stored as trie paths; insertion doubles as the dup check."""

    __slots__ = ("root", "count", "_order")

    def __init__(self):
        self.root = _Node()
        self.count = 0
        self._order = []  # token strings in insertion order

    def insert(self, term):
        """Insert ``term``; True when it is a *new* answer.

        A single traversal both checks for a variant duplicate and
        stores the answer — the integration the paper describes.
        """
        tokens = _flatten(term)
        node = self.root
        for token in tokens:
            child = node.children.get(token)
            if child is None:
                child = _Node()
                node.children[token] = child
            node = child
        if node.is_answer:
            return False
        node.is_answer = True
        self.count += 1
        self._order.append(tokens)
        return True

    def __contains__(self, term):
        tokens = _flatten(term)
        node = self.root
        for token in tokens:
            node = node.children.get(token)
            if node is None:
                return False
        return node.is_answer

    def __len__(self):
        return self.count

    def answer(self, index):
        """The ``index``-th answer (fresh variables) in insertion order."""
        return _rebuild(self._order[index])

    def answers(self):
        """All answers in insertion order, rebuilt with fresh variables."""
        return [_rebuild(tokens) for tokens in self._order]

    def node_count(self):
        """Trie node count — the space metric of the tables ablation."""
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total
