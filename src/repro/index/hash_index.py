"""Hash-based clause indexing (section 4.5 of the paper).

XSB supports hash indexes on any argument, on combinations of up to
three arguments, and any number of distinct indexes per predicate, e.g.::

    :- index(p/5, [1, 2, 3+5]).

Retrieval uses the first index in the declaration whose key arguments
are all instantiated.  All hashing uses only the *outer functor symbol*
of an argument, exactly as the paper specifies, so ``f(a)`` and
``f(b)`` hash alike under ``f/1``.

Clauses whose indexed argument is a variable match every key; they live
in a catch-all bucket that is merged back in source order on lookup.
"""

from __future__ import annotations

from ..errors import TypeError_
from ..terms import Atom, Struct, Var, deref

__all__ = ["outer_symbol", "IndexSpec", "HashIndex", "IndexPlan"]

_ANY = object()  # marks arguments whose outer symbol is an unbound variable


def outer_symbol(term):
    """The hash key of a term: its outer functor symbol.

    Returns ``_ANY`` (a private sentinel) for unbound variables so that
    callers can distinguish "not indexable" from real symbols.
    """
    term = deref(term)
    if isinstance(term, Var):
        return _ANY
    if isinstance(term, Atom):
        return ("a", term.name)
    if isinstance(term, Struct):
        return ("s", term.name, len(term.args))
    return ("n", type(term).__name__, term)


def is_any(key):
    return key is _ANY


def _raw_symbol(term):
    """Internal hash key of a term: like :func:`outer_symbol` but without
    the type-tag wrapper, so atoms key by their (interned) name string
    and numbers by themselves — no tuple allocation per probe.

    Dropping the tag admits hash collisions between equal-hashing
    values of different types (``1``/``1.0``/``True``); colliding
    entries merely share a bucket, and the candidate lists buckets feed
    are supersets filtered exactly by head matching, so this is safe.
    """
    term = deref(term)
    if isinstance(term, Var):
        return _ANY
    if isinstance(term, Atom):
        return term.name
    if isinstance(term, Struct):
        return (term.name, len(term.args))
    return term


class IndexSpec:
    """One index over a field set, e.g. ``3+5`` -> positions (3, 5)."""

    __slots__ = ("positions",)

    def __init__(self, positions):
        positions = tuple(positions)
        if not 1 <= len(positions) <= 3:
            raise TypeError_("index on 1..3 fields", positions)
        self.positions = positions

    def key_of_args(self, args):
        """Combined key for a retrieval; None when any field is unbound."""
        parts = []
        for pos in self.positions:
            key = outer_symbol(args[pos - 1])
            if key is _ANY:
                return None
            parts.append(key)
        return tuple(parts)

    def __repr__(self):
        return "+".join(str(p) for p in self.positions)


class HashIndex:
    """A single hash index over one :class:`IndexSpec`.

    Entries are ``(sequence, payload)`` pairs; lookups merge the key
    bucket with the catch-all (variable) bucket in sequence order so
    clause-selection order is preserved.

    ``bucket_count`` exists for fidelity with the paper's "the size of
    the hash table is specifiable": Python dicts resize themselves, so
    the value is recorded (and reported by ``stats``) rather than used.

    Merged candidate lists are memoized per key: repeated retrievals
    with the same bound pattern (the common case inside a tabled
    fixpoint, where the same calls recur) reuse one list instead of
    re-merging and re-sorting the key bucket with the catch-all bucket
    on every call.  Any mutation invalidates the memo, so the logical
    update view is unchanged — lists already handed out are snapshots,
    exactly as the freshly-built lists were before.
    """

    __slots__ = (
        "spec",
        "buckets",
        "catch_all",
        "bucket_count",
        "_cache",
        "_single",
    )

    def __init__(self, spec, bucket_count=0):
        self.spec = spec
        self.buckets = {}
        self.catch_all = []
        self.bucket_count = bucket_count
        self._cache = {}
        # Zero-based field offset for the overwhelmingly common
        # single-field index, so probes skip the multi-field loop.
        positions = spec.positions
        self._single = positions[0] - 1 if len(positions) == 1 else None

    def _key_of(self, args):
        """Bucket key for ``args``; None when any key field is unbound.

        Uses raw symbols (:func:`_raw_symbol`) rather than the public
        tagged form — private to this index, so only internal
        consistency matters.
        """
        single = self._single
        if single is not None:
            key = _raw_symbol(args[single])
            return None if key is _ANY else key
        parts = []
        for pos in self.spec.positions:
            sym = _raw_symbol(args[pos - 1])
            if sym is _ANY:
                return None
            parts.append(sym)
        return tuple(parts)

    def insert(self, seq, head_args, payload, front=False):
        """Index one clause (``front`` supports ``asserta``)."""
        key = self._key_of(head_args)
        if key is None:
            # A catch-all clause is merged into every key's candidates.
            self._cache.clear()
            target = self.catch_all
        else:
            self._cache.pop(key, None)
            target = self.buckets.setdefault(key, [])
        entry = (seq, payload)
        if front:
            target.insert(0, entry)
        else:
            target.append(entry)

    def remove(self, seq):
        """Remove the clause with the given sequence number everywhere."""
        self._cache.clear()
        self.catch_all[:] = [e for e in self.catch_all if e[0] != seq]
        for bucket in self.buckets.values():
            bucket[:] = [e for e in bucket if e[0] != seq]

    def applicable(self, call_args):
        """True when all key fields are bound in this retrieval."""
        return self._key_of(call_args) is not None

    def lookup(self, call_args):
        """Candidate payloads in clause order, or None if not applicable."""
        key = self._key_of(call_args)
        if key is None:
            return None
        result = self._cache.get(key)
        if result is None:
            bucket = self.buckets.get(key)
            catch_all = self.catch_all
            if bucket is None:
                result = [payload for _, payload in catch_all]
            elif not catch_all:
                result = [payload for _, payload in bucket]
            else:
                merged = sorted(bucket + catch_all, key=lambda entry: entry[0])
                result = [payload for _, payload in merged]
            self._cache[key] = result
        return result

    def stats(self):
        sizes = [len(b) for b in self.buckets.values()]
        return {
            "spec": repr(self.spec),
            "keys": len(self.buckets),
            "catch_all": len(self.catch_all),
            "max_bucket": max(sizes, default=0),
            "declared_buckets": self.bucket_count,
        }


class IndexPlan:
    """The ordered list of indexes declared for one predicate.

    Retrieval walks the declaration order and uses the *first* index
    whose key fields are all bound — the semantics of
    ``:- index(p/5,[1,2,3+5])`` described in the paper.
    """

    __slots__ = ("arity", "indexes")

    def __init__(self, arity, specs=None, bucket_count=0):
        self.arity = arity
        if specs is None:
            specs = [IndexSpec((1,))] if arity >= 1 else []
        self.indexes = [HashIndex(spec, bucket_count) for spec in specs]

    def insert(self, seq, head_args, payload, front=False):
        for index in self.indexes:
            index.insert(seq, head_args, payload, front=front)

    def remove(self, seq):
        for index in self.indexes:
            index.remove(seq)

    def lookup(self, call_args):
        """Payloads via the first applicable index; None if none applies."""
        for index in self.indexes:
            result = index.lookup(call_args)
            if result is not None:
                return result
        return None

    def rebuild(self, entries):
        """Re-index from scratch from ``(seq, head_args, payload)`` triples."""
        for index in self.indexes:
            index.buckets.clear()
            index.catch_all.clear()
            index._cache.clear()
        for seq, head_args, payload in entries:
            self.insert(seq, head_args, payload)
