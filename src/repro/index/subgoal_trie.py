"""Trie index on call patterns (section 4.5).

"Tabled subgoals require indexing since the action taken for a subgoal
depends on whether it has been previously called during an
evaluation."  XSB's default is a first-argument hash; this module
provides the trie alternative the later XSB literature made standard:
the subgoal's full preorder symbol string (variables numbered by first
occurrence, so lookup *is* the variant check) keyed into a
discrimination net whose leaves carry the subgoal frames.

The engine selects between the canonical-key dict (the default — a
hash on the whole variant pattern) and this trie with
``Engine(subgoal_index="trie")``; the tables ablation compares them.
"""

from __future__ import annotations

from .answer_trie import _flatten

__all__ = ["SubgoalTrie"]


class _Node:
    __slots__ = ("children", "frame")

    def __init__(self):
        self.children = {}
        self.frame = None


class SubgoalTrie:
    """Maps subgoal variants to frames via one trie traversal."""

    __slots__ = ("root", "count")

    def __init__(self):
        self.root = _Node()
        self.count = 0

    def lookup(self, term):
        """The frame of a variant of ``term``, or None."""
        node = self.root
        for token in _flatten(term):
            node = node.children.get(token)
            if node is None:
                return None
        return node.frame

    def insert(self, term, frame):
        """Store ``frame`` under the variant pattern of ``term``.

        A single traversal both locates the variant (check) and creates
        the path (insert); returns the previously stored frame when the
        variant already existed (in which case nothing is replaced).
        """
        node = self.root
        for token in _flatten(term):
            child = node.children.get(token)
            if child is None:
                child = _Node()
                node.children[token] = child
            node = child
        if node.frame is not None:
            return node.frame
        node.frame = frame
        self.count += 1
        return None

    def remove(self, term):
        """Delete the entry for ``term``'s variant (tcut/abandon path)."""
        node = self.root
        path = []
        for token in _flatten(term):
            child = node.children.get(token)
            if child is None:
                return False
            path.append((node, token))
            node = child
        if node.frame is None:
            return False
        node.frame = None
        self.count -= 1
        # prune empty branches bottom-up
        for parent, token in reversed(path):
            child = parent.children[token]
            if child.frame is None and not child.children:
                del parent.children[token]
            else:
                break
        return True

    def frames(self):
        """All stored frames (no particular order)."""
        out = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.frame is not None:
                out.append(node.frame)
            stack.extend(node.children.values())
        return out

    def clear(self):
        self.root = _Node()
        self.count = 0

    def __len__(self):
        return self.count

    def node_count(self):
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.children.values())
        return total
