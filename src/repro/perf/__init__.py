"""Engine statistics — the observability layer of the SLG hot path."""

from .counters import STATISTIC_KEYS, EngineStats

__all__ = ["EngineStats", "STATISTIC_KEYS"]
