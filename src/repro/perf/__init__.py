"""Engine statistics — the observability layer of the SLG hot path."""

from .counters import STATISTIC_KEYS, EngineStats, StoreStats

__all__ = ["EngineStats", "StoreStats", "STATISTIC_KEYS"]
