"""Engine-level event counters (the analog of XSB's ``statistics/2``).

XSB treats engine instrumentation as first class: table-space usage and
SLG scheduling events are observable from the language, which is how
engine optimizations are demonstrated rather than asserted.  This
module is the single place those counters live.

Design constraints:

* **Zero-cost when disabled.**  The machine caches ``engine.stats`` in
  a local at the start of every run — ``None`` when statistics are off
  — so disabled counting costs exactly one ``is not None`` test on the
  (few, coarse) counting sites and nothing on term-level kernels.
* **One plain attribute increment when enabled.**  No locks, no dict
  lookups, no callables: ``stats.subgoal_hits += 1`` on an
  ``__slots__`` instance.

The counters:

``subgoal_hits`` / ``subgoal_misses``
    Variant check-ins of tabled calls that found / did not find an
    existing subgoal frame (section 4.5's call-pattern index at work;
    the hit rate is the memo benefit).
``answers_inserted`` / ``duplicate_answers``
    New answers copied to table space vs. answers suppressed by the
    duplicate check (tracked by the table space itself; mirrored into
    ``snapshot`` for one-stop reporting).
``ground_answers``
    Answers that were inserted ground — these take the no-copy fast
    path on every later consumption.
``suspensions`` / ``resumptions``
    SLG consumers that ran out of answers on an incomplete table, and
    scheduling events that woke one up with unconsumed answers.
``completions``
    Subgoal frames marked complete (counted per frame, so one SCC
    completing counts once per member).
``clause_candidates`` / ``clause_matches``
    Clauses returned by the index for resolution attempts vs. heads
    that actually matched; the gap is wasted ``match_head`` work and
    the quantity clause indexing exists to shrink.
``hybrid_subgoals`` / ``hybrid_fallbacks``
    New tabled subgoals routed through the set-at-a-time magic-set +
    semi-naive evaluator (:mod:`repro.engine.hybrid`) vs. subgoals
    that failed a hybrid precondition (non-datalog SCC, builtin or
    negation in a body, non-ground structured call argument) and fell
    back to tuple-at-a-time SLG resolution.
``hybrid_answers``
    Answers bulk-installed into table space by the hybrid route (these
    skip the per-answer variant check — the fixpoint already
    deduplicated them — and are all ground, so they are also counted
    in ``ground_answers``).
``hybrid_iterations``
    Semi-naive delta iterations run on behalf of hybrid subgoals (the
    set-at-a-time analog of consumer resumptions).
``clauses_compiled``
    Clause templates lowered to specialized Python closures by the
    clause compiler (:mod:`repro.engine.compile`) — counted once per
    closure built, eager batch compilation included.
``compiled_hits`` / ``compiled_fallbacks``
    Clause-head matches dispatched through a *specialized* compiled
    kernel (fused fact match, argument-register head, builtin
    superinstruction) vs. through the generic fallback closure, which
    is behaviorally identical to the template path.  Their sum equals
    the compiled share of ``clause_matches``; the fallback count is
    the quantity shape specialization exists to shrink.
``fused_fact_matches``
    The subset of ``compiled_hits`` served by the fused ground-fact
    kernel: head matched register-against-row with no slot array, no
    term construction and no trailing beyond variable bindings.
``objcache_hits`` / ``objcache_misses``
    ``Engine.consult_file`` calls served from the hashed compiled-
    program cache (:mod:`repro.storage.objcache` — the section 4.6
    object-file load path, skipping lexer, parser, clause compiler
    and per-clause index maintenance) vs. consults that compiled from
    source.
``objcache_writes``
    Cache entries written after a successful cold consult (every miss
    that completes without error writes one, so hits are transparent
    from the second consult on).
``objcache_invalid``
    Cache entries found corrupt, truncated, or carrying a stale
    magic/format version: each is silently discarded and recompiled
    from source (also counted as a miss).
``load_bulk_facts`` / ``load_bulk_batches``
    Ground facts installed through the set-at-a-time bulk path
    (``Engine.bulk_add_facts`` / ``storage.textio.bulk_load_formatted``)
    and the number of batches; each batch costs one database probe,
    one mutation stamp and one index build however many facts it
    carries.
``incr_deltas`` / ``incr_flushes``
    Typed per-predicate update deltas recorded by assert/retract/bulk
    ingest while incremental table maintenance
    (:mod:`repro.engine.incremental`) is on, and the number of
    query-boundary flushes that drained a non-empty delta set.
``incr_tables_invalidated`` / ``incr_tables_kept``
    Completed tables a flush marked stale because the analysis
    registry's call graph reaches a changed predicate, vs. completed
    tables that kept their ``valid`` stamp because the affected-table
    closure proved them independent of every change.
``incr_tables_repaired`` / ``incr_tables_abolished``
    Invalidated tables repaired in place through the semi-naive delta
    machinery (DRed over-deletion + re-derivation for retracts,
    delta-driven insertion for asserts) with their answers bulk
    re-installed, vs. tables dropped by a *targeted* abolish (never
    global) because their predicate leaves the datalog-safe fragment,
    depends through negation, or saw a structural (rule-level) change.
``incr_rows_inserted`` / ``incr_rows_deleted``
    Net fact rows applied to incremental materializations by delta
    insertion and DRed deletion.
``incr_rederived``
    Over-deleted tuples put back by the DRed re-derivation pass (each
    had an alternative derivation not using a deleted fact).

The ``store_*`` keys are aggregated over every live
:class:`~repro.store.TupleStore` the engine owns (predicate fact
stores, table answer stores, hybrid plan relations) rather than
counted here: each store carries its own :class:`StoreStats`, and
``Engine.statistics()`` sums them at report time — see the key list
below.

The ``trace_*`` / ``profile_*`` keys likewise report the state of the
observability layer (:mod:`repro.obs`): buffered and evicted trace
events, profiled subgoal count, and total profiled self time in
nanoseconds — all zero while tracing/profiling are off.

The ``metrics_*`` keys report the query-level metrics registry
(:mod:`repro.obs.metrics`): root query spans closed, total stage spans
recorded, and distinct histogram series — all zero while metrics are
off (``REPRO_METRICS`` unset).  The distributions themselves are not
statistics keys; read them through ``Engine.metrics_snapshot()`` or
the ``write_metrics/2`` exposition builtin.
"""

from __future__ import annotations

__all__ = ["EngineStats", "StoreStats", "STATISTIC_KEYS"]

_FIELDS = (
    "subgoal_hits",
    "subgoal_misses",
    "ground_answers",
    "suspensions",
    "resumptions",
    "completions",
    "clause_candidates",
    "clause_matches",
    "hybrid_subgoals",
    "hybrid_fallbacks",
    "hybrid_answers",
    "hybrid_iterations",
    "clauses_compiled",
    "compiled_hits",
    "compiled_fallbacks",
    "fused_fact_matches",
    "objcache_hits",
    "objcache_misses",
    "objcache_writes",
    "objcache_invalid",
    "load_bulk_facts",
    "load_bulk_batches",
    "incr_deltas",
    "incr_flushes",
    "incr_tables_invalidated",
    "incr_tables_kept",
    "incr_tables_repaired",
    "incr_tables_abolished",
    "incr_rows_inserted",
    "incr_rows_deleted",
    "incr_rederived",
)

# Keys accepted by statistics/2.  The table-space keys (answers,
# space) are provided by TableSpace.statistics(), the store_* keys by
# summing per-store StoreStats blocks, the trace_*/profile_* keys by
# the observability layer (:mod:`repro.obs`), the analysis_* keys by
# the clause database's analysis registry
# (:mod:`repro.analysis.registry`); all are merged in
# Engine.statistics().  The reporting order — what ``statistics/0``
# prints and an unbound ``statistics(K, V)`` backtracks through — is
# deterministic *sorted* order, so adding a counter can never silently
# reshuffle downstream diffs of statistics dumps.
STATISTIC_KEYS = tuple(sorted(_FIELDS + (
    "analysis_cache_hits",
    "analysis_cache_misses",
    "analysis_invalidations",
    "analysis_scc_count",
    "analysis_strata_count",
    "answers_inserted",
    "duplicate_answers",
    "subgoals_created",
    "subgoals",
    "completed",
    "answers_stored",
    "space_live",
    "space_peak",
    "store_count",
    "store_rows",
    "store_probes",
    "store_scans",
    "store_index_builds",
    "trace_events",
    "trace_dropped",
    "profile_subgoals",
    "profile_self_ns",
    "metrics_queries",
    "metrics_spans",
    "metrics_histograms",
)))


class StoreStats:
    """Per-:class:`~repro.store.TupleStore` access counters.

    ``probes``
        Indexed lookups served through :meth:`TupleStore.probe` (the
        hash-join and fact-selection path).  Compiled join plans
        capture index dicts directly and bypass ``probe``, so this
        counts the probe *API*, not every hash lookup in the process.
    ``scans``
        Full-relation scans served through ``probe`` with no bound
        positions — the retrievals indexing exists to avoid.
    ``index_builds``
        Indexes materialized from existing rows (on-demand builds and
        rebuilds after a backend reorganization); incremental index
        maintenance on insert is not counted.
    """

    __slots__ = ("probes", "scans", "index_builds")

    def __init__(self):
        self.probes = 0
        self.scans = 0
        self.index_builds = 0

    def __repr__(self):
        return (
            f"<StoreStats probes={self.probes} scans={self.scans} "
            f"builds={self.index_builds}>"
        )


class EngineStats:
    """Mutable counter block; one per :class:`~repro.engine.Engine`."""

    __slots__ = _FIELDS + ("enabled",)

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.reset()

    def reset(self):
        for field in _FIELDS:
            setattr(self, field, 0)
        return self

    def snapshot(self):
        """Plain dict of the machine-level counters."""
        return {field: getattr(self, field) for field in _FIELDS}

    def __repr__(self):
        inner = ", ".join(f"{f}={getattr(self, f)}" for f in _FIELDS)
        state = "on" if self.enabled else "off"
        return f"<EngineStats {state} {inner}>"
