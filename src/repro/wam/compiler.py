"""Clause-to-byte-code compiler.

Each clause compiles to a flat instruction list; a predicate compiles
to its clause list plus a first-argument switch table (the WAM's
``switch_on_constant``), which the emulator consults before starting a
try chain.  Nested structures are flattened through frame slots used
as the WAM's S registers.
"""

from __future__ import annotations

from ..errors import TypeError_
from ..terms import Atom, Struct, Var, deref
from .instructions import (
    BUILTIN,
    CALL,
    GET_CONSTANT,
    GET_STRUCTURE,
    GET_VALUE,
    GET_VARIABLE,
    PROCEED,
    PUT_CONSTANT,
    PUT_STRUCTURE,
    PUT_VALUE,
    PUT_VARIABLE,
    UNIFY_CONSTANT,
    UNIFY_VALUE,
    UNIFY_VARIABLE,
)

__all__ = ["CompiledClause", "CompiledPredicate", "compile_predicate",
           "compile_clause_code", "compile_query", "BUILTIN_PREDS"]

BUILTIN_PREDS = {
    ("is", 2),
    ("<", 2),
    (">", 2),
    ("=<", 2),
    (">=", 2),
    ("=:=", 2),
    ("=\\=", 2),
    ("=", 2),
    ("true", 0),
    ("fail", 0),
}


class CompiledClause:
    """Byte code plus the frame size it needs."""

    __slots__ = ("code", "nslots", "source")

    def __init__(self, code, nslots, source=None):
        self.code = code
        self.nslots = nslots
        self.source = source


class CompiledPredicate:
    """All clauses of one predicate plus the first-argument switch."""

    __slots__ = ("name", "arity", "clauses", "switch", "var_clauses")

    def __init__(self, name, arity, clauses, switch, var_clauses):
        self.name = name
        self.arity = arity
        self.clauses = clauses
        self.switch = switch  # first-arg symbol -> [clause index]
        self.var_clauses = var_clauses  # indices of clauses with var arg1

    def candidates(self, first_arg_symbol):
        """Clause indices to try for a call (None symbol = unbound)."""
        if first_arg_symbol is None or self.arity == 0:
            return range(len(self.clauses))
        return self.switch.get(first_arg_symbol, self.var_clauses)

    @property
    def indicator(self):
        return f"{self.name}/{self.arity}"


class _Compiler:
    def __init__(self):
        self.slots = {}
        self.code = []
        self.next_slot = 0

    def slot_for(self, var, out_is_new=None):
        ref = self.slots.get(id(var))
        if ref is None:
            ref = self.next_slot
            self.next_slot += 1
            self.slots[id(var)] = ref
            if out_is_new is not None:
                out_is_new.append(True)
        elif out_is_new is not None:
            out_is_new.append(False)
        return ref

    def temp_slot(self):
        ref = self.next_slot
        self.next_slot += 1
        return ref

    # -- head compilation ------------------------------------------------------

    def compile_head_arg(self, term, areg):
        term = deref(term)
        if isinstance(term, Var):
            new = []
            slot = self.slot_for(term, new)
            op = GET_VARIABLE if new[0] else GET_VALUE
            self.code.append((op, slot, areg))
        elif isinstance(term, Struct):
            sslot = self.temp_slot()
            self.code.append(
                (GET_STRUCTURE, term.name, len(term.args), areg, sslot)
            )
            self.compile_structure_args(term, sslot)
        else:
            const = term if not isinstance(term, Atom) else term
            self.code.append((GET_CONSTANT, const, areg))

    def compile_structure_args(self, struct, sslot):
        """unify_* for each argument; nested structures recurse through
        fresh slots captured with unify_variable."""
        nested = []
        for index, arg in enumerate(struct.args):
            arg = deref(arg)
            if isinstance(arg, Var):
                new = []
                slot = self.slot_for(arg, new)
                op = UNIFY_VARIABLE if new[0] else UNIFY_VALUE
                self.code.append((op, slot, sslot, index))
            elif isinstance(arg, Struct):
                slot = self.temp_slot()
                self.code.append((UNIFY_VARIABLE, slot, sslot, index))
                nested.append((arg, slot))
            else:
                self.code.append((UNIFY_CONSTANT, arg, sslot, index))
        for struct_arg, slot in nested:
            inner = self.temp_slot()
            # the captured cell must itself match the nested structure
            self.code.append(
                (GET_STRUCTURE, struct_arg.name, len(struct_arg.args), ("slot", slot), inner)
            )
            self.compile_structure_args(struct_arg, inner)

    # -- body compilation --------------------------------------------------------

    def compile_body_arg(self, term, areg):
        term = deref(term)
        if isinstance(term, Var):
            new = []
            slot = self.slot_for(term, new)
            op = PUT_VARIABLE if new[0] else PUT_VALUE
            self.code.append((op, slot, areg))
        elif isinstance(term, Struct):
            slot = self.build_structure(term)
            self.code.append((PUT_VALUE, slot, areg))
        else:
            self.code.append((PUT_CONSTANT, term, areg))

    def build_structure(self, struct):
        """Build a compound bottom-up into a slot; returns the slot."""
        arg_slots = []
        for arg in struct.args:
            arg = deref(arg)
            if isinstance(arg, Struct):
                arg_slots.append(("slot", self.build_structure(arg)))
            elif isinstance(arg, Var):
                new = []
                slot = self.slot_for(arg, new)
                arg_slots.append(("var", slot, new[0]))
            else:
                arg_slots.append(("const", arg))
        sslot = self.temp_slot()
        self.code.append(
            (PUT_STRUCTURE, struct.name, len(struct.args), None, sslot)
        )
        for index, spec in enumerate(arg_slots):
            kind = spec[0]
            if kind == "slot":
                self.code.append((UNIFY_VALUE, spec[1], sslot, index))
            elif kind == "var":
                op = UNIFY_VARIABLE if spec[2] else UNIFY_VALUE
                self.code.append((op, spec[1], sslot, index))
            else:
                self.code.append((UNIFY_CONSTANT, spec[1], sslot, index))
        return sslot


def _goal_parts(term):
    term = deref(term)
    if isinstance(term, Struct):
        return term.name, term.args
    if isinstance(term, Atom):
        return term.name, ()
    raise TypeError_("callable literal", term)


def compile_clause_code(head_args, body_literals, source=None):
    """Compile one clause given its head args and body literal terms."""
    compiler = _Compiler()
    for areg, arg in enumerate(head_args):
        compiler.compile_head_arg(arg, areg)
    for literal in body_literals:
        name, args = _goal_parts(literal)
        for areg, arg in enumerate(args):
            compiler.compile_body_arg(arg, areg)
        key = (name, len(args))
        opcode = BUILTIN if key in BUILTIN_PREDS else CALL
        compiler.code.append((opcode, name, len(args)))
    compiler.code.append((PROCEED,))
    return CompiledClause(compiler.code, compiler.next_slot, source=source)


def compile_predicate(name, arity, clause_terms):
    """Compile a predicate from clause terms (``H`` or ``H :- B``)."""
    from ..engine.clause import decompose_clause
    from ..index.hash_index import outer_symbol

    clauses = []
    switch = {}
    var_clauses = []
    for clause_term in clause_terms:
        head, body = decompose_clause(clause_term)
        head = deref(head)
        head_args = head.args if isinstance(head, Struct) else ()
        compiled = compile_clause_code(head_args, body, source=clause_term)
        index = len(clauses)
        clauses.append(compiled)
        if arity >= 1:
            symbol = outer_symbol(head_args[0])
            if isinstance(deref(head_args[0]), Var):
                var_clauses.append(index)
            else:
                switch.setdefault(symbol, []).append(index)
    # merge var clauses into every constant bucket, preserving order
    if var_clauses:
        for symbol, bucket in switch.items():
            merged = sorted(set(bucket) | set(var_clauses))
            switch[symbol] = merged
    return CompiledPredicate(name, arity, clauses, switch, var_clauses)


def compile_query(goal_terms):
    """Compile a query body.

    Returns ``(CompiledClause, named, prefill)``: ``named`` maps source
    variable names to frame slots so the caller can read answers, and
    ``prefill`` is the number of leading slots the emulator must
    initialize with fresh variables before running the code (query
    variables are referenced by value since the caller owns them).
    """
    compiler = _Compiler()
    named = {}
    for literal in goal_terms:
        _, args = _goal_parts(literal)
        for arg in args:
            _collect_named(arg, compiler, named)
    prefill = compiler.next_slot
    for literal in goal_terms:
        name, args = _goal_parts(literal)
        for areg, arg in enumerate(args):
            compiler.compile_body_arg(arg, areg)
        key = (name, len(args))
        opcode = BUILTIN if key in BUILTIN_PREDS else CALL
        compiler.code.append((opcode, name, len(args)))
    compiler.code.append((PROCEED,))
    return CompiledClause(compiler.code, compiler.next_slot), named, prefill


def compile_query_term(goal_term):
    """Compile a (possibly comma-conjoined) goal term — see
    :func:`compile_query`."""
    literals = []
    _flatten_conj(goal_term, literals)
    return compile_query(literals)


def _flatten_conj(term, out):
    term = deref(term)
    if isinstance(term, Struct) and term.name == "," and len(term.args) == 2:
        _flatten_conj(term.args[0], out)
        _flatten_conj(term.args[1], out)
    else:
        out.append(term)


def _collect_named(term, compiler, named):
    term = deref(term)
    if isinstance(term, Var):
        slot = compiler.slot_for(term)
        if term.name and term.name != "_":
            named[term.name] = slot
    elif isinstance(term, Struct):
        for arg in term.args:
            _collect_named(arg, compiler, named)
