"""The byte-code instruction set.

Instructions are plain tuples ``(opcode, operand...)`` for cheap
dispatch and trivial serialization.  The set follows the WAM [24] with
one structural simplification: ``get_structure``/``put_structure``
pre-build the compound with fresh variables when needed, so the
``unify_*``/``set_*`` instructions always run against an existing
structure's argument cells (no read/write mode flag); this is
behaviourally equivalent and keeps the emulator loop small.
"""

from __future__ import annotations

__all__ = [
    "GET_CONSTANT",
    "GET_VARIABLE",
    "GET_VALUE",
    "GET_STRUCTURE",
    "UNIFY_CONSTANT",
    "UNIFY_VARIABLE",
    "UNIFY_VALUE",
    "PUT_CONSTANT",
    "PUT_VARIABLE",
    "PUT_VALUE",
    "PUT_STRUCTURE",
    "CALL",
    "PROCEED",
    "BUILTIN",
    "NAMES",
    "disassemble",
]

# head argument matching
GET_CONSTANT = 0  # (op, const, areg)
GET_VARIABLE = 1  # (op, slot, areg)
GET_VALUE = 2  # (op, slot, areg)
GET_STRUCTURE = 3  # (op, name, arity, areg, sslot)  -> S register in frame

# structure argument matching/filling, relative to an S slot
UNIFY_CONSTANT = 4  # (op, const, sslot, index)
UNIFY_VARIABLE = 5  # (op, slot, sslot, index)
UNIFY_VALUE = 6  # (op, slot, sslot, index)

# body argument loading
PUT_CONSTANT = 7  # (op, const, areg)
PUT_VARIABLE = 8  # (op, slot, areg)
PUT_VALUE = 9  # (op, slot, areg)
PUT_STRUCTURE = 10  # (op, name, arity, areg, sslot)

# control
CALL = 11  # (op, name, arity)
PROCEED = 12  # (op,)
BUILTIN = 13  # (op, name, arity)  — is/2, comparisons, =/2

NAMES = {
    GET_CONSTANT: "get_constant",
    GET_VARIABLE: "get_variable",
    GET_VALUE: "get_value",
    GET_STRUCTURE: "get_structure",
    UNIFY_CONSTANT: "unify_constant",
    UNIFY_VARIABLE: "unify_variable",
    UNIFY_VALUE: "unify_value",
    PUT_CONSTANT: "put_constant",
    PUT_VARIABLE: "put_variable",
    PUT_VALUE: "put_value",
    PUT_STRUCTURE: "put_structure",
    CALL: "call",
    PROCEED: "proceed",
    BUILTIN: "builtin",
}


def disassemble(code):
    """Human-readable listing of one clause's code."""
    lines = []
    for pc, instruction in enumerate(code):
        op = instruction[0]
        operands = ", ".join(repr(x) for x in instruction[1:])
        lines.append(f"{pc:4d}  {NAMES.get(op, op):<16} {operands}")
    return "\n".join(lines)
