"""A WAM byte-code compiler and emulator for static definite code.

The paper stresses that XSB "is compiled to a lower level than is
usual with database systems" (section 2) and credits its speed to the
WAM execution model.  The main engine (:mod:`repro.engine`) realizes
that with compiled clause templates; this subpackage goes all the way
down: clauses are compiled to an explicit get/put/unify/call
instruction set, executed by a register machine with environments,
choice points and a trail.

It serves three purposes:

* an instruction-level model of the (non-tabled part of the) SLG-WAM,
  exercised by its own test suite;
* the *object file* format of section 4.6: compiled predicates are
  serialized and reload without parsing or clause compilation, which
  is what makes object-file loading ~12x faster than read+assert
  (benchmarked in ``benchmarks/bench_load_times.py``);
* an ablation tier for the instruction-dispatch cost discussion.
"""

from .compiler import compile_predicate, compile_query, compile_query_term
from .emulator import WamMachine
from .instructions import disassemble
from .objfile import load_object_file, save_object_file

__all__ = [
    "compile_predicate",
    "compile_query",
    "compile_query_term",
    "WamMachine",
    "disassemble",
    "save_object_file",
    "load_object_file",
]
