"""Byte-code object files (section 4.6).

"Static code is translated by the XSB compiler into object files,
which contain SLG-WAM byte-code.  Since object files contain
precompiled code, loading an object file is about 12x faster than
loading through the formatted read and assert."

An object file here is the serialized compiled form of one or more
predicates: loading skips tokenizing, parsing, clause compilation and
index construction — it only reconstructs the in-memory code records —
which is where the order-of-magnitude win over read+assert comes from
(measured by ``benchmarks/bench_load_times.py``).

Two serialized forms live here:

* *object files* (``save_object_file``/``load_object_file``) — the
  WAM tier's compiled predicates, as above;
* *engine cache entries* (``save_engine_cache``/``load_engine_cache``)
  — the engine tier's analog: one consult's recorded event stream
  (declarations, load-time goals, compiled clause batches; see
  :class:`repro.lang.reader.ProgramReader`), serialized so
  ``Engine.consult_file`` can replay a previously compiled program
  without lexing, parsing or compiling anything
  (:mod:`repro.storage.objcache` keys the entries by source hash).
"""

from __future__ import annotations

import os
import pickle

from ..errors import StorageError
from .compiler import CompiledClause, CompiledPredicate

__all__ = [
    "save_object_file",
    "load_object_file",
    "save_engine_cache",
    "load_engine_cache",
    "FactClause",
    "MAGIC",
    "CACHE_MAGIC",
    "FORMAT_VERSION",
]

MAGIC = b"XSBOBJ"
CACHE_MAGIC = b"XSBWAMC"
FORMAT_VERSION = 2

_ATOM = "a"
_NUM = "n"


def _is_fact_block(pred):
    """True when every clause is a ground fact over atomic constants.

    Such predicates — the extensional database, i.e. the bulk of what
    object files exist to load quickly — are stored as raw data rows;
    their byte code is materialized lazily on first execution.  This
    is what makes object-file loading an order of magnitude faster
    than any per-fact path.
    """
    from ..terms import Atom

    from .instructions import GET_CONSTANT, PROCEED

    for clause in pred.clauses:
        if isinstance(clause, FactClause):
            continue
        code = clause.code
        if clause.nslots != 0 or len(code) != pred.arity + 1:
            return False
        if code[-1][0] != PROCEED:
            return False
        for instruction in code[:-1]:
            if instruction[0] != GET_CONSTANT:
                return False
            const = instruction[1]
            if not isinstance(const, (Atom, int, float, str)):
                return False
    return True


def _encode_fact_rows(pred):
    from ..terms import Atom

    rows = []
    for clause in pred.clauses:
        if isinstance(clause, FactClause):
            rows.append(clause.row)
            continue
        row = []
        for instruction in clause.code[:-1]:
            const = instruction[1]
            if isinstance(const, Atom):
                row.append((_ATOM, const.name))
            else:
                row.append((_NUM, const))
        rows.append(tuple(row))
    return rows


class FactClause:
    """A fact whose byte code is built on first execution.

    Loading an object file only unpickles the raw rows and creates
    these thin records; the get/proceed code appears when (and if) the
    fact is first tried, like demand-paged code.
    """

    __slots__ = ("row", "_code")

    nslots = 0
    source = None

    def __init__(self, row):
        self.row = row
        self._code = None

    @property
    def code(self):
        code = self._code
        if code is None:
            from ..terms import mkatom

            from .instructions import GET_CONSTANT, PROCEED

            code = [
                (
                    GET_CONSTANT,
                    mkatom(value) if tag == _ATOM else value,
                    areg,
                )
                for areg, (tag, value) in enumerate(self.row)
            ]
            code.append((PROCEED,))
            self._code = code
        return code


def save_object_file(path, predicates):
    """Write compiled predicates to an object file.

    ``predicates`` is an iterable of :class:`CompiledPredicate`.
    """
    payload = []
    for pred in predicates:
        if pred.arity >= 1 and _is_fact_block(pred):
            payload.append(
                {
                    "name": pred.name,
                    "arity": pred.arity,
                    "fact_rows": _encode_fact_rows(pred),
                }
            )
            continue
        payload.append(
            {
                "name": pred.name,
                "arity": pred.arity,
                "clauses": [
                    (clause.code, clause.nslots) for clause in pred.clauses
                ],
                "switch": pred.switch,
                "var_clauses": pred.var_clauses,
            }
        )
    with open(path, "wb") as handle:
        handle.write(MAGIC)
        handle.write(bytes([FORMAT_VERSION]))
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    return len(payload)


def save_engine_cache(path, events):
    """Serialize one consult's recorded event stream atomically.

    Clause batches are stored as ``(name, head_args, body, nslots)``
    skeleton tuples — the live Clause objects keep their seq/source
    untouched, and skeleton terms (Atoms intern through ``mkatom`` on
    unpickling, SlotRefs are plain slot records) round-trip by
    construction.  The write goes through a temp file + ``os.replace``
    so a crashed writer can never leave a truncated entry behind.
    """
    payload = []
    for event in events:
        if event[0] == "c":
            payload.append((
                "c",
                [
                    (c.name, c.head_args, c.body, c.nslots)
                    for c in event[1]
                ],
            ))
        else:
            payload.append(event)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(CACHE_MAGIC)
        handle.write(bytes([FORMAT_VERSION]))
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return len(payload)


def load_engine_cache(path):
    """Load a consult-cache entry back into a replayable event stream.

    Raises :class:`~repro.errors.StorageError` on a bad magic or a
    stale format version; unpickling errors propagate as-is (the
    consult cache treats any of them as "entry invalid, recompile").
    """
    from ..engine.clause import Clause

    with open(path, "rb") as handle:
        magic = handle.read(len(CACHE_MAGIC))
        if magic != CACHE_MAGIC:
            raise StorageError(f"{path}: not an engine cache entry")
        version = handle.read(1)
        if not version or version[0] != FORMAT_VERSION:
            raise StorageError(f"{path}: unsupported cache format")
        payload = pickle.load(handle)
    events = []
    for event in payload:
        if event[0] == "c":
            events.append((
                "c",
                [
                    Clause(name, head_args, body, nslots)
                    for name, head_args, body, nslots in event[1]
                ],
            ))
        else:
            events.append(event)
    return events


def load_object_file(path):
    """Load an object file; returns a list of CompiledPredicate."""
    with open(path, "rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise StorageError(f"{path}: not an object file")
        version = handle.read(1)
        if not version or version[0] != FORMAT_VERSION:
            raise StorageError(f"{path}: unsupported object format")
        payload = pickle.load(handle)
    predicates = []
    for entry in payload:
        rows = entry.get("fact_rows")
        if rows is not None:
            clauses = [FactClause(row) for row in rows]
            switch = {}
            for index, row in enumerate(rows):
                tag, value = row[0]
                key = (
                    ("a", value)
                    if tag == _ATOM
                    else ("n", type(value).__name__, value)
                )
                switch.setdefault(key, []).append(index)
            predicates.append(
                CompiledPredicate(
                    entry["name"], entry["arity"], clauses, switch, []
                )
            )
            continue
        clauses = [
            CompiledClause(code, nslots) for code, nslots in entry["clauses"]
        ]
        predicates.append(
            CompiledPredicate(
                entry["name"],
                entry["arity"],
                clauses,
                entry["switch"],
                entry["var_clauses"],
            )
        )
    return predicates
