"""The byte-code emulator: a register machine with trail and choice points.

Machine state mirrors the WAM: argument registers ``X``, a per-clause
frame (environment), a continuation (kept as an immutable chain so
choice points can capture it), a choice-point stack and a trail.
First-argument indexing consults the predicate's switch table before
starting a try chain, exactly like ``switch_on_constant``.
"""

from __future__ import annotations

from ..engine.builtins import arith_eval
from ..errors import ExistenceError
from ..index.hash_index import outer_symbol
from ..terms import Struct, Trail, Var, deref, unify
from .instructions import (
    BUILTIN,
    CALL,
    GET_CONSTANT,
    GET_STRUCTURE,
    GET_VALUE,
    GET_VARIABLE,
    PROCEED,
    PUT_CONSTANT,
    PUT_STRUCTURE,
    PUT_VALUE,
    PUT_VARIABLE,
    UNIFY_CONSTANT,
    UNIFY_VALUE,
    UNIFY_VARIABLE,
)

__all__ = ["WamMachine"]

_HALT = ("halt",)

_ARITH_TESTS = {
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
}


class _ChoicePoint:
    __slots__ = ("trail_mark", "xregs", "cont", "pred", "candidates", "pos")

    def __init__(self, trail_mark, xregs, cont, pred, candidates, pos):
        self.trail_mark = trail_mark
        self.xregs = xregs
        self.cont = cont
        self.pred = pred
        self.candidates = candidates
        self.pos = pos


class WamMachine:
    """Executes compiled predicates (see :mod:`repro.wam.compiler`)."""

    def __init__(self, program=None):
        # program: (name, arity) -> CompiledPredicate
        self.program = dict(program or {})
        self.trail = Trail()
        self.instructions_executed = 0

    def define(self, predicate):
        self.program[(predicate.name, predicate.arity)] = predicate

    # -- execution ---------------------------------------------------------------

    def solve(self, query, named=None, prefill=0):
        """Run a compiled query; yields once per solution.

        ``query`` is a :class:`CompiledClause` from ``compile_query``;
        ``named``/``prefill`` are its companions.  While suspended at a
        yield, answers are readable through ``self.answer(named)``.
        """
        trail = self.trail
        base_mark = trail.mark()
        xregs = [None] * 8
        frame = [Var() for _ in range(prefill)]
        frame.extend(None for _ in range(query.nslots - prefill))
        self._query_frame = frame
        cpstack = []
        code = query.code
        pc = 0
        cont = _HALT

        def backtrack():
            nonlocal code, pc, cont, frame
            while cpstack:
                cp = cpstack[-1]
                trail.undo_to(cp.trail_mark)
                if cp.pos >= len(cp.candidates):
                    cpstack.pop()
                    continue
                clause = cp.pred.clauses[cp.candidates[cp.pos]]
                cp.pos += 1
                if cp.pos >= len(cp.candidates):
                    cpstack.pop()  # trust: last alternative
                for i, value in enumerate(cp.xregs):
                    xregs[i] = value
                cont = cp.cont
                frame = [None] * clause.nslots
                code = clause.code
                pc = 0
                return True
            return False

        try:
            while True:
                instruction = code[pc]
                pc += 1
                op = instruction[0]
                self.instructions_executed += 1

                if op == GET_CONSTANT:
                    cell = deref(xregs[instruction[2]])
                    if isinstance(cell, Var):
                        cell.ref = instruction[1]
                        trail.push(cell)
                    elif not _const_eq(cell, instruction[1]):
                        if not backtrack():
                            return
                elif op == GET_VARIABLE:
                    frame[instruction[1]] = xregs[instruction[2]]
                elif op == GET_VALUE:
                    if not unify(frame[instruction[1]], xregs[instruction[2]], trail):
                        if not backtrack():
                            return
                elif op == GET_STRUCTURE:
                    _, name, arity, areg, sslot = instruction
                    cell = xregs[areg] if isinstance(areg, int) else frame[areg[1]]
                    cell = deref(cell)
                    if isinstance(cell, Var):
                        built = Struct(name, tuple(Var() for _ in range(arity)))
                        cell.ref = built
                        trail.push(cell)
                        frame[sslot] = built
                    elif (
                        isinstance(cell, Struct)
                        and cell.name == name
                        and len(cell.args) == arity
                    ):
                        frame[sslot] = cell
                    else:
                        if not backtrack():
                            return
                elif op == UNIFY_CONSTANT:
                    _, const, sslot, index = instruction
                    cell = deref(frame[sslot].args[index])
                    if isinstance(cell, Var):
                        cell.ref = const
                        trail.push(cell)
                    elif not _const_eq(cell, const):
                        if not backtrack():
                            return
                elif op == UNIFY_VARIABLE:
                    _, slot, sslot, index = instruction
                    frame[slot] = frame[sslot].args[index]
                elif op == UNIFY_VALUE:
                    _, slot, sslot, index = instruction
                    if not unify(frame[slot], frame[sslot].args[index], trail):
                        if not backtrack():
                            return
                elif op == PUT_CONSTANT:
                    xregs[instruction[2]] = instruction[1]
                elif op == PUT_VARIABLE:
                    fresh = Var()
                    frame[instruction[1]] = fresh
                    xregs[instruction[2]] = fresh
                elif op == PUT_VALUE:
                    xregs[instruction[2]] = frame[instruction[1]]
                elif op == PUT_STRUCTURE:
                    _, name, arity, _unused, sslot = instruction
                    frame[sslot] = Struct(
                        name, tuple(Var() for _ in range(arity))
                    )
                elif op == CALL:
                    _, name, arity = instruction
                    pred = self.program.get((name, arity))
                    if pred is None:
                        raise ExistenceError(f"{name}/{arity}")
                    while arity > len(xregs):
                        xregs.append(None)
                    symbol = None
                    if arity >= 1:
                        first = deref(xregs[0])
                        if not isinstance(first, Var):
                            symbol = outer_symbol(first)
                    candidates = list(pred.candidates(symbol))
                    if not candidates:
                        if not backtrack():
                            return
                        continue
                    new_cont = (code, pc, frame, cont)
                    if len(candidates) > 1:
                        cpstack.append(
                            _ChoicePoint(
                                trail.mark(),
                                tuple(xregs[:arity]),
                                new_cont,
                                pred,
                                candidates,
                                1,
                            )
                        )
                    clause = pred.clauses[candidates[0]]
                    frame = [None] * clause.nslots
                    code = clause.code
                    pc = 0
                    cont = new_cont
                elif op == BUILTIN:
                    _, name, arity = instruction
                    if not self._builtin(name, arity, xregs, trail):
                        if not backtrack():
                            return
                elif op == PROCEED:
                    if cont is _HALT:
                        yield True
                        if not backtrack():
                            return
                        continue
                    code, pc, frame, cont = cont
                else:
                    raise RuntimeError(f"bad opcode {op}")
        finally:
            trail.undo_to(base_mark)

    def _builtin(self, name, arity, xregs, trail):
        if name == "true":
            return True
        if name == "fail":
            return False
        if name == "=":
            return unify(xregs[0], xregs[1], trail)
        if name == "is":
            return unify(xregs[0], arith_eval(xregs[1]), trail)
        test = _ARITH_TESTS.get(name)
        if test is not None:
            return test(arith_eval(xregs[0]), arith_eval(xregs[1]))
        raise ExistenceError(f"wam builtin {name}/{arity}")

    def answer(self, named):
        """Read the current bindings of a suspended solve()."""
        from ..terms import resolve

        return {
            name: resolve(self._query_frame[slot])
            for name, slot in named.items()
        }

    def run_query(self, query, named, prefill):
        """Drain a query; returns the list of answer dicts (resolved
        copies safe to keep)."""
        from ..terms import copy_term

        out = []
        for _ in self.solve(query, named, prefill):
            out.append(
                {
                    name: copy_term(self._query_frame[slot])
                    for name, slot in named.items()
                }
            )
        return out


def _const_eq(cell, const):
    from ..terms import Atom

    if isinstance(cell, Atom):
        return isinstance(const, Atom) and cell.name == const.name
    return type(cell) is type(const) and cell == const
