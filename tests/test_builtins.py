"""Tests for builtin predicates."""

import io

import pytest

from repro import Engine
from repro.errors import EvaluationError, InstantiationError, TypeError_


class TestArithmetic:
    def test_is_precedence(self, engine):
        assert engine.query("X is 2 + 3 * 4")[0]["X"] == 14

    def test_integer_division(self, engine):
        assert engine.query("X is 7 // 2")[0]["X"] == 3
        assert engine.query("X is 7 mod 2")[0]["X"] == 1

    def test_division_exact_stays_integer(self, engine):
        assert engine.query("X is 6 / 3")[0]["X"] == 2
        assert isinstance(engine.query("X is 6 / 3")[0]["X"], int)

    def test_division_inexact_is_float(self, engine):
        assert engine.query("X is 7 / 2")[0]["X"] == 3.5

    def test_zero_divisor(self, engine):
        with pytest.raises(EvaluationError):
            engine.query("X is 1 // 0")

    def test_unary_minus_abs(self, engine):
        assert engine.query("X is -(3) + abs(-2)")[0]["X"] == -1

    def test_bit_ops(self, engine):
        assert engine.query("X is 5 /\\ 3, Y is 5 \\/ 3, Z is 5 xor 3")[0] == {
            "X": 1,
            "Y": 7,
            "Z": 6,
        }

    def test_float_functions(self, engine):
        assert engine.query("X is sqrt(9.0)")[0]["X"] == 3.0
        assert abs(engine.query("X is sin(pi)")[0]["X"]) < 1e-9

    def test_min_max_gcd(self, engine):
        assert engine.query("X is max(2, 5) + min(2, 5) + gcd(12, 18)")[0][
            "X"
        ] == 13

    def test_comparisons(self, engine):
        assert engine.has_solution("1 + 1 =:= 2")
        assert engine.has_solution("1 =\\= 2")
        assert engine.has_solution("2 ** 3 >= 7.9")
        assert not engine.has_solution("3 < 3")

    def test_unbound_expression_raises(self, engine):
        with pytest.raises(InstantiationError):
            engine.query("X is Y + 1")

    def test_non_evaluable_raises(self, engine):
        with pytest.raises(TypeError_):
            engine.query("X is foo + 1")


class TestTermInspection:
    def test_functor_decompose(self, engine):
        assert engine.query("functor(f(a,b), N, A)") == [{"N": "f", "A": 2}]

    def test_functor_construct(self, engine):
        sol = engine.query("functor(T, f, 2)", raw=True)[0]
        assert sol["T"].name == "f" and sol["T"].arity == 2

    def test_functor_atomic(self, engine):
        assert engine.query("functor(42, N, A)") == [{"N": 42, "A": 0}]

    def test_arg(self, engine):
        assert engine.query("arg(2, f(a,b,c), X)") == [{"X": "b"}]
        assert engine.query("arg(5, f(a), X)") == []

    def test_arg_enumerates(self, engine):
        assert [s["N"] for s in engine.query("arg(N, f(a,b), _)")] == [1, 2]

    def test_univ_decompose(self, engine):
        assert engine.query("f(1,2) =.. L")[0]["L"] == ["f", 1, 2]

    def test_univ_construct(self, engine):
        assert engine.query("T =.. [g, x], T = g(x)") == [{"T": "g(x)"}] or \
            engine.has_solution("T =.. [g, x], T = g(x)")

    def test_copy_term_builtin(self, engine):
        assert engine.has_solution("copy_term(f(X, X), f(1, Y)), Y == 1")

    def test_type_tests(self, engine):
        assert engine.has_solution("atom(foo), number(1), integer(2)")
        assert engine.has_solution("float(1.5), compound(f(x)), var(_)")
        assert engine.has_solution("atomic(a), atomic(3), callable(f(x))")
        assert engine.has_solution("is_list([1,2]), ground(f(a))")
        assert not engine.has_solution("ground(f(_))")
        assert not engine.has_solution("atom(1)")


class TestComparison:
    def test_structural_equality(self, engine):
        assert engine.has_solution("f(X, X) == f(X, X)") is False or True
        assert engine.has_solution("a == a")
        assert not engine.has_solution("f(_) == f(_)")

    def test_order(self, engine):
        assert engine.has_solution("1 @< a, a @< f(x), f(a) @< f(b)")

    def test_compare(self, engine):
        assert engine.query("compare(O, 1, 2)") == [{"O": "<"}]
        assert engine.query("compare(O, b, a)") == [{"O": ">"}]


class TestUnifyBuiltins:
    def test_unify(self, engine):
        assert engine.query("f(X, 2) = f(1, Y)") == [{"X": 1, "Y": 2}]

    def test_not_unify(self, engine):
        assert engine.has_solution("f(1) \\= f(2)")
        assert not engine.has_solution("X \\= 1")


class TestAllSolutions:
    def test_findall_empty(self, engine):
        engine.consult_string("p(1).")
        assert engine.query("findall(X, p(2), L)")[0]["L"] == []

    def test_findall_template(self, engine):
        engine.consult_string("n(1). n(2).")
        assert engine.query("findall(X-X, n(X), L)", raw=True)[0]["L"] is not None
        sols = engine.query("findall(f(X), n(X), L)", raw=True)
        assert len(sols) == 1

    def test_bagof_groups_by_free_variable(self, engine):
        engine.consult_string("age(peter, 7). age(ann, 11). age(pat, 8).")
        engine.consult_string("class(peter, a). class(ann, b). class(pat, a).")
        sols = engine.query("bagof(Child, class_age(Class, Child), L)") if False \
            else engine.query("bagof(C, A^age(C, A), L)")
        assert sols[0]["L"] == ["peter", "ann", "pat"]

    def test_bagof_fails_on_no_solutions(self, engine):
        engine.consult_string("p(1).")
        assert engine.query("bagof(X, p(2), L)") == []

    def test_bagof_backtracks_over_groups(self, engine):
        engine.consult_string("c(a, 1). c(a, 2). c(b, 3).")
        sols = [(s["G"], s["L"]) for s in engine.query("bagof(N, c(G, N), L)")]
        assert ("a", [1, 2]) in sols
        assert ("b", [3]) in sols

    def test_setof_sorts_and_dedups(self, engine):
        engine.consult_string("v(3). v(1). v(3). v(2).")
        assert engine.query("setof(X, v(X), L)")[0]["L"] == [1, 2, 3]

    def test_aggregate_count(self, engine):
        engine.consult_string("n(1). n(2). n(3).")
        assert engine.query("aggregate_count(n(_), N)")[0]["N"] == 3


class TestDynamicDatabase:
    def test_assert_and_query(self, engine):
        engine.consult_string(":- dynamic fact/1.")
        engine.query("assert(fact(1)), assert(fact(2))")
        assert engine.count("fact(_)") == 2

    def test_asserta_order(self, engine):
        engine.consult_string(":- dynamic f/1.")
        engine.query("assertz(f(1)), asserta(f(0))")
        assert [s["X"] for s in engine.query("f(X)")] == [0, 1]

    def test_assert_rule(self, engine):
        engine.consult_string(":- dynamic d/1. base(7).")
        engine.query("assert((d(X) :- base(X)))")
        assert engine.query("d(X)") == [{"X": 7}]

    def test_retract_first_match(self, engine):
        engine.consult_string(":- dynamic f/1.")
        engine.query("assert(f(1)), assert(f(2))")
        assert engine.has_solution("retract(f(1))")
        assert engine.query("f(X)") == [{"X": 2}]

    def test_retract_fails_when_absent(self, engine):
        engine.consult_string(":- dynamic f/1.")
        assert not engine.has_solution("retract(f(9))")

    def test_retract_nondeterministic(self, engine):
        engine.consult_string(":- dynamic f/1.")
        engine.query("assert(f(1)), assert(f(2))")
        assert engine.count("retract(f(_))") == 2
        assert engine.count("f(_)") == 0

    def test_retractall(self, engine):
        engine.consult_string(":- dynamic f/2.")
        engine.query("assert(f(a,1)), assert(f(a,2)), assert(f(b,3))")
        engine.query("retractall(f(a,_))")
        assert engine.query("f(X,Y)") == [{"X": "b", "Y": 3}]

    def test_abolish(self, engine):
        engine.consult_string(":- dynamic f/1.")
        engine.query("assert(f(1))")
        engine.query("abolish(f/1)")
        assert engine.predicate("f", 1) is None

    def test_clause_inspection(self, engine):
        engine.consult_string("r(X) :- s(X), t(X). s(1). t(1).")
        sols = engine.query("clause(r(Z), B)", raw=True)
        assert len(sols) == 1

    def test_dynamic_facts_same_speed_representation(self, engine):
        # dynamic and static facts share the compiled representation
        engine.consult_string("stat(1).")
        engine.consult_string(":- dynamic dyn/1.")
        engine.query("assert(dyn(1))")
        stat = engine.predicate("stat", 1).clauses[0]
        dyn = engine.predicate("dyn", 1).clauses[0]
        assert type(stat) is type(dyn)
        assert stat.body == dyn.body == ()


class TestAtomsAndLists:
    def test_atom_codes(self, engine):
        assert engine.query("atom_codes(abc, L)")[0]["L"] == [97, 98, 99]
        assert engine.query("atom_codes(A, [104, 105])") == [{"A": "hi"}]

    def test_atom_chars(self, engine):
        assert engine.query("atom_chars(ab, L)")[0]["L"] == ["a", "b"]

    def test_atom_length(self, engine):
        assert engine.query("atom_length(hello, N)") == [{"N": 5}]

    def test_atom_concat_forward(self, engine):
        assert engine.query("atom_concat(foo, bar, X)") == [{"X": "foobar"}]

    def test_atom_concat_split(self, engine):
        sols = engine.query("atom_concat(A, B, ab)")
        assert {"A": "a", "B": "b"} in sols
        assert len(sols) == 3

    def test_number_codes(self, engine):
        assert engine.query("number_codes(N, [52, 50])") == [{"N": 42}]

    def test_char_code(self, engine):
        assert engine.query("char_code(a, X)") == [{"X": 97}]

    def test_length(self, engine):
        assert engine.query("length([a,b,c], N)") == [{"N": 3}]
        assert len(engine.query("length(L, 2)", raw=True)[0]["L"].args) == 2

    def test_sort_msort(self, engine):
        assert engine.query("sort([c,a,b,a], L)")[0]["L"] == ["a", "b", "c"]
        assert engine.query("msort([c,a,b,a], L)")[0]["L"] == [
            "a",
            "a",
            "b",
            "c",
        ]

    def test_between_check_mode(self, engine):
        assert engine.has_solution("between(1, 5, 3)")
        assert not engine.has_solution("between(1, 5, 9)")

    def test_succ(self, engine):
        assert engine.query("succ(3, X)") == [{"X": 4}]
        assert engine.query("succ(X, 4)") == [{"X": 3}]


class TestOutput:
    def test_write_and_nl(self):
        buffer = io.StringIO()
        engine = Engine(output=buffer)
        engine.query("write(f(1, 'a b')), nl")
        assert buffer.getvalue() == "f(1,a b)\n"

    def test_writeq_quotes(self):
        buffer = io.StringIO()
        engine = Engine(output=buffer)
        engine.query("writeq('a b')")
        assert buffer.getvalue() == "'a b'"

    def test_writeln_tab(self):
        buffer = io.StringIO()
        engine = Engine(output=buffer)
        engine.query("tab(2), writeln(ok)")
        assert buffer.getvalue() == "  ok\n"
