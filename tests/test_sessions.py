"""The SharedKB/Session split: cross-session table reuse, locking
discipline, session-local predicates, and the thread-safety satellites
(swap-pop store removal, locked metrics/tracer).
"""

import threading

import pytest

from repro import Engine
from repro.engine import RWLock, Session, SharedKB
from repro.errors import ReproError
from repro.obs.metrics import merge_snapshots
from repro.store.tuplestore import MemoryTupleStore

PATH_PROGRAM = """
:- table path/2.
path(X,Y) :- edge(X,Y).
path(X,Y) :- edge(X,Z), path(Z,Y).
edge(1,2). edge(2,3). edge(3,4).
"""


# ---------------------------------------------------------------------------
# SharedKB / Session basics
# ---------------------------------------------------------------------------

def test_engine_is_a_session_over_a_shared_kb():
    engine = Engine()
    assert isinstance(engine, Session)
    assert isinstance(engine.kb, SharedKB)
    assert engine.db is engine.kb.db
    assert engine.tables is engine.kb.tables


def test_sibling_sessions_share_clauses_and_answers():
    engine = Engine()
    engine.consult_string(PATH_PROGRAM)
    other = engine.session()
    assert other.kb is engine.kb
    assert other.sid != engine.sid
    mine = {(s["X"], s["Y"]) for s in engine.query("path(X, Y)")}
    theirs = {(s["X"], s["Y"]) for s in other.query("path(X, Y)")}
    assert mine == theirs
    assert len(mine) == 6


def test_kb_session_registry_and_repr():
    engine = Engine()
    kb = engine.kb
    assert engine in kb.sessions()
    before = kb.sessions_active()
    extra = engine.session()
    assert kb.sessions_active() == before + 1
    assert f"#{extra.sid}" in repr(extra)
    assert "SharedKB" in repr(kb)


# ---------------------------------------------------------------------------
# RWLock
# ---------------------------------------------------------------------------

def test_rwlock_reentrant_read_and_write():
    lock = RWLock()
    lock.acquire_read()
    lock.acquire_read()
    assert lock.read_held()
    lock.release_read()
    lock.release_read()
    assert not lock.read_held()
    lock.acquire_write()
    lock.acquire_write()
    assert lock.write_held()
    lock.release_write()
    lock.release_write()
    assert not lock.write_held()


def test_rwlock_writer_may_read():
    lock = RWLock()
    lock.acquire_write()
    lock.acquire_read()
    lock.release_read()
    lock.release_write()


def test_rwlock_read_to_write_upgrade_raises():
    lock = RWLock()
    lock.acquire_read()
    with pytest.raises(RuntimeError, match="read->write upgrade"):
        lock.acquire_write()
    lock.release_read()


def test_rwlock_blocks_writer_while_read_held():
    lock = RWLock()
    lock.acquire_read()
    acquired = threading.Event()

    def writer():
        lock.acquire_write()
        acquired.set()
        lock.release_write()

    thread = threading.Thread(target=writer, daemon=True)
    thread.start()
    assert not acquired.wait(0.1)
    lock.release_read()
    assert acquired.wait(2)
    thread.join()


# ---------------------------------------------------------------------------
# Cross-session completed-table reuse
# ---------------------------------------------------------------------------

def test_second_session_variant_checkin_does_zero_slg_work():
    """The exact-pin test from the issue: once session A completed the
    table, session B's variant check-in is one probe — a shared hit,
    no subgoal creation, no resolution."""
    engine = Engine()
    engine.consult_string(PATH_PROGRAM)
    assert engine.query("path(1, X)")  # A evaluates and completes

    other = engine.session()
    answers = {s["X"] for s in other.query("path(1, X)")}
    assert answers == {2, 3, 4}
    stats = other.stats
    assert stats.table_hit_shared == 1
    assert stats.subgoal_hits == 1
    assert stats.subgoal_misses == 0


def test_own_completed_table_hit_is_not_counted_as_shared():
    engine = Engine()
    engine.consult_string(PATH_PROGRAM)
    engine.query("path(1, X)")
    engine.stats.reset()
    engine.query("path(1, X)")
    assert engine.stats.subgoal_hits == 1
    assert engine.stats.table_hit_shared == 0


def test_shared_hit_ratio_and_gauges():
    engine = Engine(metrics=True)
    engine.consult_string(PATH_PROGRAM)
    engine.query("path(1, X)")
    other = engine.session(metrics=True)
    other.query("path(1, X)")
    kb = engine.kb
    assert kb.shared_hit_ratio() > 0
    snap = other.metrics_snapshot()
    assert snap["gauges"]["sessions_active"] == kb.sessions_active()
    assert snap["gauges"]["shared_hit_ratio"] == kb.shared_hit_ratio()
    from repro.obs.metrics import render_prometheus

    text = render_prometheus(snap)
    assert "repro_sessions_active 2" in text
    assert "repro_shared_hit_ratio" in text


def test_statistics_expose_shared_and_session_counters():
    engine = Engine()
    engine.consult_string(PATH_PROGRAM)
    stats = engine.statistics()
    assert "table_hit_shared" in stats
    assert "store_removes" in stats
    assert stats["sessions_active"] >= 1


# ---------------------------------------------------------------------------
# Write discipline in concurrent mode
# ---------------------------------------------------------------------------

def test_concurrent_mutation_inside_query_raises():
    engine = Engine()
    engine.consult_string(":- dynamic d/1.\nd(1). d(2).")
    engine.kb.enable_concurrency()
    iterator = engine.query_iter("d(X)")
    next(iterator)
    with pytest.raises((ReproError, RuntimeError), match="running query"):
        engine.add_fact("d", 3)
    iterator.close()
    engine.add_fact("d", 3)  # fine once the read lock is released
    assert engine.count("d(X)") == 3


def test_concurrent_mutations_serialize_with_queries():
    engine = Engine(unknown="fail")
    engine.consult_string(":- dynamic d/1.")
    engine.kb.enable_concurrency()
    errors = []

    def mutate(base):
        try:
            for i in range(25):
                engine.session().add_fact("d", base + i)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    readers = []

    def read():
        try:
            session = engine.session()
            for _ in range(25):
                readers.append(session.count("d(X)"))
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [
        threading.Thread(target=mutate, args=(100,)),
        threading.Thread(target=mutate, args=(200,)),
        threading.Thread(target=read),
        threading.Thread(target=read),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert engine.count("d(X)") == 50
    assert all(0 <= n <= 50 for n in readers)


def test_mutation_invalidates_shared_tables_for_all_sessions():
    engine = Engine()
    engine.consult_string(
        ":- table reach/1.\n:- dynamic edge/2.\n"
        "reach(Y) :- edge(1, Y).\nedge(1, 2)."
    )
    other = engine.session()
    assert {s["Y"] for s in other.query("reach(Y)")} == {2}
    engine.add_fact("edge", 1, 9)
    if engine.incremental is None:
        # pre-incremental contract: stale until the wholesale drop
        engine.abolish_all_tables()
    assert {s["Y"] for s in other.query("reach(Y)")} == {2, 9}
    assert {s["Y"] for s in engine.query("reach(Y)")} == {2, 9}


# ---------------------------------------------------------------------------
# Session-local predicates
# ---------------------------------------------------------------------------

def test_local_dynamic_is_invisible_to_other_sessions():
    engine = Engine(unknown="fail")
    engine.consult_string("shared(1).")
    mine = engine.session()
    mine.local_dynamic("scratch", 1)
    mine.run_update("assertz(scratch(7))")
    assert mine.count("scratch(X)") == 1
    assert mine.count("shared(X)") == 1  # shared still visible
    other = engine.session()
    assert other.count("scratch(X)") == 0
    assert ("scratch", 1) not in engine.kb.db.predicates


def test_local_dynamic_cannot_shadow_shared_predicate():
    engine = Engine()
    engine.consult_string("shared(1).")
    session = engine.session()
    with pytest.raises(ReproError, match="shadow"):
        session.local_dynamic("shared", 1)


def test_local_dynamic_trades_shared_tables_for_private():
    engine = Engine()
    engine.consult_string(PATH_PROGRAM)
    session = engine.session()
    assert session.tables_shared
    session.local_dynamic("scratch", 1)
    assert not session.tables_shared
    assert session.tables is not engine.kb.tables
    # private tables still answer correctly, without polluting shared
    assert {s["X"] for s in session.query("path(1, X)")} == {2, 3, 4}


def test_private_tables_invalidate_on_shared_mutation():
    engine = Engine()
    engine.consult_string(
        ":- table reach/1.\n:- dynamic edge/2.\n"
        "reach(Y) :- edge(1, Y).\nedge(1, 2)."
    )
    session = engine.session()
    session.local_dynamic("scratch", 1)
    assert {s["Y"] for s in session.query("reach(Y)")} == {2}
    engine.add_fact("edge", 1, 5)
    assert {s["Y"] for s in session.query("reach(Y)")} == {2, 5}


# ---------------------------------------------------------------------------
# Satellite: swap-pop MemoryTupleStore removal
# ---------------------------------------------------------------------------

def test_memory_store_remove_keeps_list_identity_and_rows():
    store = MemoryTupleStore("t", 2)
    rows_obj = store.rows
    for i in range(10):
        store.add((i, i * 10))
    assert store.remove((4, 40))
    assert store.rows is rows_obj  # compiled plans capture this list
    assert len(store) == 9
    assert (4, 40) not in store
    assert set(store) == {(i, i * 10) for i in range(10) if i != 4}
    assert not store.remove((4, 40))  # already gone
    assert store.stats.removes == 1


def test_memory_store_remove_updates_indexes():
    store = MemoryTupleStore("t", 2)
    for i in range(8):
        store.add((i % 2, i))
    store.ensure_index((0,))
    assert store.remove((0, 4))
    assert sorted(store.probe((0,), (0,))) == [(0, 0), (0, 2), (0, 6)]
    assert sorted(store.probe((0,), (1,))) == [(1, 1), (1, 3), (1, 5), (1, 7)]


def test_memory_store_interleaved_add_remove_matches_set_oracle():
    import random

    rng = random.Random(1234)
    store = MemoryTupleStore("t", 1)
    oracle = set()
    for _ in range(2000):
        value = rng.randrange(60)
        row = (value,)
        if rng.random() < 0.4 and oracle:
            victim = (rng.choice(sorted(oracle))[0],)
            assert store.remove(victim) == (victim in oracle)
            oracle.discard(victim)
        else:
            assert store.add(row) == (row not in oracle)
            oracle.add(row)
        if not rng.randrange(100):
            assert set(store) == oracle
            assert len(store) == len(oracle)
    assert set(store) == oracle


def test_warm_incremental_repair_drives_store_removes():
    """Warm DRed repair deletes rows in place — the swap-pop path —
    and the removals surface in the merged statistics."""
    import os

    if os.environ.get("REPRO_INCREMENTAL", "").lower() in ("0", "false", "off"):
        pytest.skip("incremental maintenance disabled")
    engine = Engine()
    engine.consult_string(
        ":- table path/2.\n:- dynamic edge/2.\n"
        "path(X,Y) :- edge(X,Y).\npath(X,Y) :- edge(X,Z), path(Z,Y).\n"
        "edge(a,b). edge(b,c)."
    )
    assert engine.count("path(a, X)") == 2
    assert engine.run_update("assertz(edge(c, d))")
    assert engine.count("path(a, X)") == 3   # cold repair: builds the mat
    assert engine.run_update("retract(edge(c, d))")
    assert engine.count("path(a, X)") == 2   # warm DRed: rows removed
    stats = engine.statistics()
    assert stats["incr_rows_deleted"] >= 1
    assert stats["store_removes"] >= 1


# ---------------------------------------------------------------------------
# Satellite: thread-safe metrics / tracer
# ---------------------------------------------------------------------------

def test_metrics_registry_concurrent_increments_are_exact():
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    threads = [
        threading.Thread(
            target=lambda: [registry.inc("hits") for _ in range(5000)]
        )
        for _ in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.snapshot()["counters"]["hits"] == 40000


def test_tracer_concurrent_appends_account_for_every_event():
    from repro.obs.trace import Tracer

    tracer = Tracer(capacity=256)

    class FakeFrame:
        seq = 0
        indicator = "f/0"

    def record():
        for _ in range(2000):
            tracer.event("subgoal_hit", FakeFrame())

    threads = [threading.Thread(target=record) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert tracer.total == 12000
    assert len(tracer.events()) == 256
    assert tracer.dropped == 12000 - 256


def test_merge_snapshots_associative_across_concurrent_workers():
    """Worker registries filled from threads, then merged in two
    different association orders — totals must agree exactly."""
    engine = Engine(metrics=True)
    engine.consult_string(PATH_PROGRAM)
    engine.kb.enable_concurrency()
    workers = [engine.session(metrics=True) for _ in range(3)]

    def run(session, count):
        for _ in range(count):
            session.query("path(1, X)")

    threads = [
        threading.Thread(target=run, args=(session, 20 + 5 * i))
        for i, session in enumerate(workers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snaps = [session.metrics_snapshot() for session in workers]
    left = merge_snapshots(merge_snapshots(snaps[0], snaps[1]), snaps[2])
    right = merge_snapshots(snaps[0], merge_snapshots(snaps[1], snaps[2]))
    assert left["counters"] == right["counters"]
    assert left["histograms"] == right["histograms"]
    assert left["counters"]["queries"] == 20 + 25 + 30
    total = left["histograms"]["query_latency_ns"]["count"]
    assert total == 75
