"""Tests for HiLog encoding, specialization, and HiLog queries."""

from repro import Engine
from repro.hilog import hilog_encode, specialize_batch
from repro.hilog.specialize import specialized_name
from repro.lang import parse_term, term_to_str
from repro.terms import is_variant


class TestEncoding:
    def test_declared_symbol_encoded(self):
        term = parse_term("h(a)")
        encoded = hilog_encode(term, {"h"})
        assert encoded.name == "apply"
        assert term_to_str(encoded, hilog_notation=False) == "apply(h,a)"

    def test_undeclared_symbol_untouched(self):
        term = parse_term("h(a)")
        assert hilog_encode(term, {"other"}) is term

    def test_nested_encoding(self):
        term = parse_term("p(h(a), g(h(b)))")
        encoded = hilog_encode(term, {"h"})
        assert encoded.name == "p"
        assert encoded.args[0].name == "apply"
        assert encoded.args[1].args[0].name == "apply"

    def test_clause_connectives_transparent(self):
        term = parse_term("x :- h(a), \\+ h(b)")
        encoded = hilog_encode(term, {"h"})
        assert encoded.name == ":-"
        assert encoded.args[1].name == ","
        assert encoded.args[1].args[0].name == "apply"

    def test_atom_positions_not_encoded(self):
        # the atom h as an argument stays an atom (it names the set)
        term = parse_term("benefits(john, h)")
        encoded = hilog_encode(term, {"h"})
        assert encoded.args[1].name == "h"

    def test_empty_declarations_is_identity(self):
        term = parse_term("f(g(h))")
        assert hilog_encode(term, set()) is term


class TestSpecialization:
    PAPER = [
        "apply(path(Graph),X,Y) :- apply(Graph,X,Y)",
        "apply(path(Graph),X,Y) :- apply(path(Graph),X,Z), apply(Graph,Z,Y)",
    ]

    def test_paper_transformation(self):
        clauses = [parse_term(c) for c in self.PAPER]
        out = specialize_batch(clauses)
        rendered = [term_to_str(t, hilog_notation=False) for t in out]
        name = specialized_name("path", 1)
        # bridge present
        assert any(
            t.startswith("apply(path(") and name in t for t in rendered
        )
        # recursive call specialized in the body
        recursive = [t for t in rendered if t.count(name) == 2]
        assert recursive

    def test_no_compound_functors_no_change(self):
        clauses = [parse_term("apply(p, a, b)"), parse_term("q(1)")]
        out = specialize_batch(clauses)
        assert [term_to_str(a) for a in out] == [
            term_to_str(c) for c in clauses
        ]

    def test_report_groups(self):
        clauses = [parse_term(c) for c in self.PAPER]
        report = []
        specialize_batch(clauses, report=report)
        assert report == [(3, specialized_name("path", 1), 3)]

    def test_variable_functor_calls_preserved(self):
        clauses = [parse_term(c) for c in self.PAPER]
        out = specialize_batch(clauses)
        rendered = " ".join(term_to_str(t, hilog_notation=False) for t in out)
        assert "apply(Graph" in rendered or "apply(_G" in rendered


class TestHiLogQueries:
    GRAPH = """
    :- hilog g1, g2.
    g1(a,b). g1(b,c).
    g2(b,c). g2(c,d).
    """

    def test_variable_predicate_query(self, engine):
        engine.consult_string(self.GRAPH + "\nhas(x1, g1). has(x2, g2).\n")
        sols = engine.query("has(x1, P), P(X, Y)")
        assert ("a", "b") in [(s["X"], s["Y"]) for s in sols]

    def test_set_intersection_from_paper(self, engine):
        engine.consult_string(
            self.GRAPH
            + """
        :- hilog intersect_2.
        intersect_2(S1,S2)(X,Y) :- S1(X,Y), S2(X,Y).
        """
        )
        sols = engine.query("intersect_2(g1, g2)(X, Y)")
        assert [(s["X"], s["Y"]) for s in sols] == [("b", "c")]

    def test_set_union_from_paper(self, engine):
        engine.consult_string(
            self.GRAPH
            + """
        :- hilog union_2.
        union_2(S1,S2)(X,Y) :- S1(X,Y).
        union_2(S1,S2)(X,Y) :- S2(X,Y).
        """
        )
        assert len(engine.query("union_2(g1, g2)(X, Y)")) == 4

    def _tabled_path(self, hilog_specialize):
        engine = Engine(hilog_specialize=hilog_specialize)
        engine.consult_string(
            """
            :- hilog edges.
            :- table apply/3.
            path(G)(X,Y) :- G(X,Y).
            path(G)(X,Y) :- path(G)(X,Z), G(Z,Y).
            edges(1,2). edges(2,3). edges(3,1).
            """
        )
        return engine

    def test_tabled_hilog_path_with_specialization(self):
        engine = self._tabled_path(True)
        assert sorted(s["Y"] for s in engine.query("path(edges)(1,Y)")) == [
            1,
            2,
            3,
        ]
        assert engine.predicate(specialized_name("path", 1), 3) is not None

    def test_tabled_hilog_path_without_specialization(self):
        engine = self._tabled_path(False)
        assert sorted(s["Y"] for s in engine.query("path(edges)(1,Y)")) == [
            1,
            2,
            3,
        ]
        assert engine.predicate(specialized_name("path", 1), 3) is None

    def test_hilog_and_first_order_coexist(self, engine):
        engine.consult_string(
            """
            :- hilog h.
            h(1). h(2).
            p(1). p(2).
            """
        )
        assert engine.count("h(X)") == 2  # via apply/2
        assert engine.count("p(X)") == 2  # plain first-order
        assert engine.predicate("apply", 2) is not None
        assert engine.predicate("p", 1) is not None
