"""The hybrid set-at-a-time route: analysis, fallback, invalidation.

Every test here constructs its engine explicitly with ``hybrid=True``
(or ``False`` for contrast) so the suite is independent of the
``REPRO_HYBRID`` environment override used by CI's second tier-1 run.
"""

import pytest

from repro import Engine
from repro.errors import ExistenceError


PATH_LEFT = """
:- table path/2.
path(X,Y) :- edge(X,Y).
path(X,Y) :- path(X,Z), edge(Z,Y).
"""


def hybrid_engine(text="", **kwargs):
    engine = Engine(hybrid=True, **kwargs)
    if text:
        engine.consult_string(text)
    return engine


class TestRouting:
    def test_left_recursive_cycle(self):
        engine = hybrid_engine(PATH_LEFT + "edge(a,b). edge(b,c). edge(c,a).")
        assert sorted(s["X"] for s in engine.query("path(a, X)")) == [
            "a", "b", "c"
        ]
        assert engine.statistics()["hybrid_subgoals"] == 1

    def test_matches_slg_on_mutual_recursion(self):
        program = """
        :- table even/1.
        :- table odd/1.
        even(0).
        even(X) :- nxt(Y, X), odd(Y).
        odd(X) :- nxt(Y, X), even(Y).
        """
        facts = " ".join(f"nxt({i},{i + 1})." for i in range(10))
        answers = {}
        for flag in (True, False):
            engine = Engine(hybrid=flag)
            engine.consult_string(program + facts)
            answers[flag] = sorted(s["X"] for s in engine.query("even(X)"))
        assert answers[True] == answers[False] == [0, 2, 4, 6, 8, 10]

    def test_bound_call_filters(self):
        engine = hybrid_engine(PATH_LEFT + "edge(a,b). edge(b,c).")
        assert engine.has_solution("path(a, c)")
        assert not engine.has_solution("path(c, a)")

    def test_repeated_variable_call(self):
        engine = hybrid_engine(PATH_LEFT + "edge(a,b). edge(b,a). edge(b,c).")
        # path(X, X): only nodes on the a<->b cycle close back on
        # themselves; the repeated variable is honored by filtering.
        assert sorted(s["X"] for s in engine.query("path(X, X)")) == ["a", "b"]

    def test_facts_only_tabled_predicate(self):
        engine = hybrid_engine(":- table e/2. e(1,2). e(1,3). e(2,4).")
        assert sorted(s["X"] for s in engine.query("e(1, X)")) == [2, 3]
        stats = engine.statistics()
        assert stats["hybrid_subgoals"] == 1
        assert stats["hybrid_iterations"] == 0  # bulk selection, no fixpoint

    def test_ground_struct_call_argument(self):
        engine = hybrid_engine(
            ":- table labels/2. labels(n(1), a). labels(n(2), b)."
        )
        assert engine.query("labels(n(1), L)") == [{"L": "a"}]

    def test_empty_completed_table(self):
        engine = hybrid_engine(PATH_LEFT + "edge(a,b).")
        assert engine.query("path(b, X)") == []
        stats = engine.statistics()
        assert stats["hybrid_subgoals"] == 1
        # The frame exists, is complete and empty: tnot can use it.
        assert stats["completed"] == stats["subgoals"]

    def test_arity_zero_tabled_predicate(self):
        engine = hybrid_engine(":- table won/0. won :- flag(yes). flag(yes).")
        assert engine.has_solution("won")
        assert engine.statistics()["hybrid_subgoals"] == 1

    def test_trie_answer_store_mode(self):
        engine = hybrid_engine(
            PATH_LEFT + "edge(a,b). edge(b,c). edge(c,a).",
            answer_store="trie",
        )
        assert len(engine.query("path(a, X)")) == 3
        assert engine.statistics()["hybrid_subgoals"] == 1


class TestFallback:
    """Anything outside the datalog-safe fragment falls back to SLG —
    same answers, ``hybrid_fallbacks`` counts the event."""

    def _check(self, program, goal, expected_key, expected):
        engine = hybrid_engine(program)
        answers = sorted(s[expected_key] for s in engine.query(goal))
        assert answers == expected
        stats = engine.statistics()
        assert stats["hybrid_subgoals"] == 0
        assert stats["hybrid_fallbacks"] >= 1

    def test_builtin_in_body(self):
        self._check(
            """
            :- table big/1.
            big(X) :- num(X), X > 1.
            num(1). num(2). num(3).
            """,
            "big(X)", "X", [2, 3],
        )

    def test_arithmetic_in_body(self):
        self._check(
            """
            :- table double/2.
            double(X, Y) :- num(X), Y is X * 2.
            num(1). num(2).
            """,
            "double(X, Y)", "Y", [2, 4],
        )

    def test_negation_in_scc(self):
        engine = hybrid_engine(
            """
            :- table win/1.
            win(X) :- move(X, Y), tnot(win(Y)).
            move(1,2). move(2,3).
            """
        )
        # 3 has no move (lost), so 2 wins and 1 loses.
        assert not engine.has_solution("win(1)")
        assert engine.has_solution("win(2)")
        stats = engine.statistics()
        assert stats["hybrid_subgoals"] == 0
        assert stats["hybrid_fallbacks"] >= 1

    def test_builtin_deep_in_scc(self):
        # The offending literal sits two predicates below the tabled
        # call; the reachability walk still finds it.
        self._check(
            """
            :- table top/1.
            top(X) :- mid(X).
            mid(X) :- leaf(X), X > 0.
            leaf(1). leaf(2).
            """,
            "top(X)", "X", [1, 2],
        )

    def test_nonground_fact(self):
        engine = hybrid_engine(":- table r/1. r(g(X)). r(a).")
        assert len(engine.query("r(Y)")) == 2
        assert engine.statistics()["hybrid_fallbacks"] >= 1

    def test_struct_building_rule(self):
        # f(X) in the head synthesizes structure bottom-up: rejected.
        engine = hybrid_engine(
            ":- table wrap/2. wrap(X, f(X)) :- item(X). item(1)."
        )
        assert engine.query("wrap(1, W)", raw=True) != []
        assert engine.statistics()["hybrid_fallbacks"] >= 1

    def test_partially_bound_call_argument(self):
        engine = hybrid_engine(
            ":- table labels/2. labels(n(1), a). labels(n(2), b)."
        )
        # n(Z) is neither ground nor free: the call falls back but the
        # plan itself stays valid for later fully-free calls.
        assert len(engine.query("labels(n(Z), L)")) == 2
        stats = engine.statistics()
        assert stats["hybrid_fallbacks"] == 1
        engine.reset_statistics()
        assert len(engine.query("labels(M, L)")) == 2
        assert engine.statistics()["hybrid_fallbacks"] == 0

    def test_undefined_reachable_predicate_errors(self):
        engine = hybrid_engine(":- table p/1. p(X) :- q(X).")
        with pytest.raises(ExistenceError):
            engine.query("p(X)")

    def test_undefined_reachable_predicate_fails_when_configured(self):
        engine = hybrid_engine(":- table p/1. p(X) :- q(X).", unknown="fail")
        assert engine.query("p(X)") == []
        assert engine.statistics()["hybrid_subgoals"] == 1


class TestInvalidation:
    def test_assert_invalidates_plan(self):
        engine = hybrid_engine(PATH_LEFT + ":- dynamic(edge/2). edge(a,b).")
        assert len(engine.query("path(a, X)")) == 1
        engine.query("assertz(edge(b,c))")
        engine.abolish_all_tables()
        assert sorted(s["X"] for s in engine.query("path(a, X)")) == ["b", "c"]
        assert engine.statistics()["hybrid_subgoals"] == 2

    def test_retract_invalidates_plan(self):
        engine = hybrid_engine(
            ":- table e/2. :- dynamic(e/2). e(1,2). e(1,3)."
        )
        assert len(engine.query("e(1, X)")) == 2
        assert engine.has_solution("retract(e(1,3))")
        engine.abolish_all_tables()
        assert engine.query("e(1, X)") == [{"X": 2}]

    def test_defining_missing_predicate_invalidates(self):
        engine = hybrid_engine(PATH_LEFT, unknown="fail")
        # edge/2 is undefined: the plan treats it as empty.
        assert engine.query("path(a, X)") == []
        engine.query("assertz(edge(a,b))")
        engine.abolish_all_tables()
        assert engine.query("path(a, X)") == [{"X": "b"}]

    def test_unrelated_assert_keeps_plan(self):
        engine = hybrid_engine(PATH_LEFT + "edge(a,b).")
        engine.query("path(a, X)")
        plan_before = engine.db.analysis.plan_for("path", 2)
        assert plan_before is not None
        engine.query("assertz(unrelated(1))")
        engine.abolish_all_tables()
        engine.query("path(a, X)")
        assert engine.db.analysis.plan_for("path", 2) is plan_before

    def test_variant_subgoals_share_plan(self):
        engine = hybrid_engine(PATH_LEFT + "edge(a,b). edge(b,c).")
        engine.query("path(a, X)")
        engine.query("path(b, X)")
        engine.query("path(X, Y)")
        stats = engine.statistics()
        # Three distinct call patterns, one cached analysis.
        assert stats["hybrid_subgoals"] == 3


class TestFlag:
    def test_env_var_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_HYBRID", "0")
        engine = Engine()
        assert engine.hybrid is False
        monkeypatch.setenv("REPRO_HYBRID", "off")
        assert Engine().hybrid is False
        monkeypatch.setenv("REPRO_HYBRID", "1")
        assert Engine().hybrid is True

    def test_explicit_flag_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HYBRID", "0")
        assert Engine(hybrid=True).hybrid is True

    def test_disabled_engine_never_routes(self):
        engine = Engine(hybrid=False)
        engine.consult_string(PATH_LEFT + "edge(a,b).")
        engine.query("path(a, X)")
        stats = engine.statistics()
        assert stats["hybrid_subgoals"] == 0
        assert stats["hybrid_fallbacks"] == 0


class TestTransparency:
    def test_tnot_sees_hybrid_completed_table(self):
        engine = hybrid_engine(
            PATH_LEFT
            + """
            edge(a,b).
            unreachable(X, Y) :- node(X), node(Y), tnot(path(X, Y)).
            node(a). node(b).
            """
        )
        pairs = sorted(
            (s["X"], s["Y"]) for s in engine.query("unreachable(X, Y)")
        )
        assert pairs == [("a", "a"), ("b", "a"), ("b", "b")]
        assert engine.statistics()["hybrid_subgoals"] >= 1

    def test_answers_survive_backtracking(self):
        engine = hybrid_engine(PATH_LEFT + "edge(a,b). edge(b,c).")
        # Consume the same completed table from two call sites in one
        # conjunction; the bulk-installed terms must behave like any
        # stored ground answers under unification and backtracking.
        rows = engine.query("path(a, X), path(X, Y)")
        assert sorted((s["X"], s["Y"]) for s in rows) == [("b", "c")]

    def test_mixed_rules_and_facts_predicate(self):
        # path/2 has its own facts *and* rules: the facts go through
        # the $edb alias so they stay a bulk relation under the magic
        # rewrite.
        engine = hybrid_engine(
            PATH_LEFT + "path(z, z0). edge(a,b). edge(b,c)."
        )
        answers = sorted(s["X"] for s in engine.query("path(a, X)"))
        assert answers == ["b", "c"]
        assert sorted(s["X"] for s in engine.query("path(z, X)")) == ["z0"]
        assert engine.statistics()["hybrid_subgoals"] == 2
