"""Edge cases and failure injection for the machine and the engine."""

import pytest

from repro import Engine
from repro.errors import (
    EvaluationError,
    ExistenceError,
    InstantiationError,
    NonStratifiedError,
    TablingError,
    TypeError_,
)


class TestErrorRecovery:
    """Errors must leave the engine in a clean, reusable state."""

    def test_engine_usable_after_existence_error(self, engine):
        engine.consult_string("p(1).")
        with pytest.raises(ExistenceError):
            engine.query("p(X), ghost(X)")
        assert len(engine.trail) == 0
        assert engine.query("p(X)") == [{"X": 1}]

    def test_engine_usable_after_arithmetic_error(self, engine):
        engine.consult_string("p(1). p(0).")
        with pytest.raises(EvaluationError):
            engine.query("p(X), Y is 1 // X")  # fails on X = 0
        assert len(engine.trail) == 0
        assert engine.count("p(_)") == 2

    def test_tables_clean_after_error_mid_tabling(self, engine):
        engine.consult_string(
            """
            :- table t/1.
            t(X) :- n(X), check(X).
            check(X) :- X > 0.
            check(oops) :- boom.
            n(1). n(oops).
            """
        )
        with pytest.raises((TypeError_, ExistenceError)):
            engine.query("t(X)")
        # the incomplete table was reclaimed; retrying raises again
        # rather than returning a half-computed table
        with pytest.raises((TypeError_, ExistenceError)):
            engine.query("t(X)")
        stats = engine.table_statistics()
        assert stats["completed"] == stats["subgoals"]

    def test_nonstratified_error_cleanup(self, engine):
        engine.consult_string(":- table s/0. s :- tnot(s).")
        for _ in range(2):
            with pytest.raises(NonStratifiedError):
                engine.query("s")
        assert len(engine.trail) == 0


class TestCutEdgeCases:
    def test_cut_inside_if_then_else_condition_is_local(self, engine):
        engine.consult_string("n(1). n(2).")
        # cut inside the condition does not kill the else branch
        sols = engine.query("(n(X), X > 1, ! -> R = big ; R = small)")
        assert sols == [{"X": 2, "R": "big"}]

    def test_cut_in_disjunction_cuts_clause(self, engine):
        engine.consult_string(
            "n(1). n(2). d(X) :- (n(X), ! ; n(X))."
        )
        assert engine.query("d(X)") == [{"X": 1}]

    def test_double_cut(self, engine):
        engine.consult_string("n(1). n(2). f(X) :- n(X), !, !.")
        assert engine.query("f(X)") == [{"X": 1}]

    def test_cut_then_fail(self, engine):
        engine.consult_string("n(1). n(2). g :- n(2), !, fail. g.")
        assert not engine.has_solution("g")

    def test_tcut_noop_when_table_shared(self):
        from repro import Engine

        # hybrid=False: the scenario needs t/1 to still be *incomplete*
        # when tcut runs; the hybrid route would complete it instantly,
        # making tcut a legal plain cut.
        engine = Engine(hybrid=False)
        engine.consult_string(
            """
            :- table t/1.
            t(X) :- t(X).
            t(1). t(2).
            use(X) :- t(X), tcut.
            """
        )
        # t/1 consumes itself (a suspended consumer exists): tcut must
        # be a no-op, so both answers survive and the table completes
        answers = sorted(s["X"] for s in engine.query("use(X)"))
        assert answers == [1, 2]


class TestNegationEdgeCases:
    def test_deep_tnot_nesting(self, engine):
        # a chain win game nests subordinate runs ~depth deep
        engine.consult_string(
            ":- table win/1. win(X) :- move(X,Y), tnot(win(Y))."
        )
        depth = 60
        for i in range(depth):
            engine.add_fact("move", i, i + 1)
        # terminal position `depth` loses; win(i) iff (depth - i) is odd
        assert engine.has_solution(f"win({depth - 1})")
        assert not engine.has_solution(f"win({depth - 2})")
        assert engine.has_solution("win(1)") == ((depth - 1) % 2 == 1)

    def test_tnot_completed_table_reused(self, engine):
        engine.consult_string(
            """
            :- table q/1.
            q(1).
            p(X) :- n(X), tnot(q(X)).
            n(1). n(2).
            """
        )
        assert [s["X"] for s in engine.query("p(X)")] == [2]
        created = engine.tables.subgoals_created
        assert [s["X"] for s in engine.query("p(X)")] == [2]
        # both q(1) and q(2) tables were reused, not recreated
        assert engine.tables.subgoals_created == created

    def test_e_tnot_after_complete_table(self, engine):
        engine.consult_string(":- table q/1. q(1).")
        engine.query("q(X)")  # completes q(X); q(1)/q(2) still fresh
        assert not engine.has_solution("e_tnot(q(1))")
        assert engine.has_solution("e_tnot(q(2))")

    def test_naf_inside_findall(self, engine):
        engine.consult_string("p(1). p(2). q(1).")
        sols = engine.once("findall(X, (p(X), \\+ q(X)), L)")
        assert sols["L"] == [2]

    def test_double_negation(self, engine):
        engine.consult_string(":- table q/1. q(1).")
        # tnot is not idempotent syntax; use nested predicates
        engine.consult_string(
            ":- table notq/1. notq(X) :- val(X), tnot(q(X)).\n"
            "val(1). val(2).\n"
            ":- table nn/1. nn(X) :- val(X), tnot(notq(X))."
        )
        assert [s["X"] for s in engine.query("nn(X)")] == [1]


class TestVariantSubtleties:
    def test_repeated_variables_distinct_tables(self, engine):
        engine.consult_string(":- table r/2. r(X, Y). r(X, X).")
        engine.query("r(A, B)")
        engine.query("r(A, A)")
        assert engine.table_statistics()["subgoals"] == 2
        # r(A,A) has both clauses matching; 1 distinct answer variant
        assert engine.count("r(A, A)") == 1

    def test_nonground_answers(self, engine):
        engine.consult_string(":- table g/2. g(X, f(X)). g(a, b).")
        sols = engine.query("g(A, B)", raw=True)
        assert len(sols) == 2

    def test_answer_variant_dedup_not_instance_dedup(self, engine):
        # f(X) and f(a) are different answers (not variants)
        engine.consult_string(":- table h/1. h(f(X)). h(f(a)).")
        assert engine.count("h(Z)") == 2


class TestDeepAndWide:
    def test_long_chain_tabled(self, engine):
        engine.consult_string(
            ":- table p/2. p(X,Y) :- e(X,Y). p(X,Y) :- p(X,Z), e(Z,Y)."
        )
        n = 2000
        for i in range(1, n):
            engine.add_fact("e", i, i + 1)
        assert engine.count("p(1, X)") == n - 1

    def test_wide_disjunction(self, engine):
        body = " ; ".join(f"X = {i}" for i in range(50))
        engine.consult_string(f"w(X) :- ({body}).")
        assert engine.count("w(X)") == 50

    def test_many_solutions_streamed(self, engine):
        engine.add_facts("n", [(i,) for i in range(500)])
        count = 0
        for _ in engine.query_iter("n(_)"):
            count += 1
        assert count == 500

    def test_conjunction_depth(self, engine):
        engine.consult_string("t(1).")
        goal = ", ".join(["t(1)"] * 200)
        assert engine.has_solution(goal)


class TestDynamicUpdatesDuringQueries:
    def test_assert_during_enumeration_snapshot(self, engine):
        engine.consult_string(":- dynamic n/1.")
        engine.add_facts("n", [(1,), (2,)])
        seen = []
        for solution in engine.query_iter("n(X)"):
            seen.append(solution["X"])
            if len(seen) == 1:
                engine.query("assert(n(99))")
        # the running enumeration used its candidate snapshot
        assert seen[:2] == [1, 2]
        assert engine.count("n(99)") == 1

    def test_retract_does_not_break_running_query(self, engine):
        engine.consult_string(":- dynamic n/1.")
        engine.add_facts("n", [(1,), (2,), (3,)])
        seen = []
        for solution in engine.query_iter("n(X)"):
            seen.append(solution["X"])
            if len(seen) == 1:
                engine.query("retract(n(3))")
        assert 1 in seen and 2 in seen


class TestInstantiationChecks:
    def test_call_unbound(self, engine):
        with pytest.raises(InstantiationError):
            engine.query("call(G)")

    def test_is_unbound_rhs(self, engine):
        with pytest.raises(InstantiationError):
            engine.query("X is Y")

    def test_retract_unbound(self, engine):
        with pytest.raises(InstantiationError):
            engine.query("retract(X)")

    def test_number_goal_rejected(self, engine):
        with pytest.raises(TypeError_):
            engine.run_goal(42)
