"""The concurrent query service: protocol, ops, admission control,
both front doors, and serial equivalence under one worker.
"""

import asyncio
import json
import socket
import threading

import pytest

from repro import Engine
from repro.server import (
    QueryService,
    decode_request,
    default_workers,
    encode_response,
    serve_async,
    serve_tcp,
)

PROGRAM = """
:- table path/2.
path(X,Y) :- edge(X,Y).
path(X,Y) :- edge(X,Z), path(Z,Y).
edge(1,2). edge(2,3). edge(3,4).
:- dynamic d/1.
"""


def make_engine():
    engine = Engine()
    engine.consult_string(PROGRAM)
    return engine


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

def test_decode_bare_goal_is_a_query():
    assert decode_request("path(1, X)\n") == {"op": "query", "goal": "path(1, X)"}


def test_decode_json_object_passes_through():
    request = decode_request('{"op": "ping"}\n')
    assert request == {"op": "ping"}


def test_decode_blank_line_is_none():
    assert decode_request("   \n") is None


def test_decode_object_without_op_raises():
    with pytest.raises(ValueError):
        decode_request('{"goal": "p(X)"}')


def test_encode_response_is_one_json_line():
    line = encode_response({"ok": True, "count": 2})
    assert line.endswith("\n")
    assert json.loads(line) == {"ok": True, "count": 2}


# ---------------------------------------------------------------------------
# QueryService ops
# ---------------------------------------------------------------------------

def test_service_query_answers():
    with QueryService(make_engine(), workers=2) as service:
        sid = service.open_session()
        response = service.handle(sid, {"op": "query", "goal": "path(1, X)"})
        assert response["ok"]
        assert response["answers"] == [{"X": 2}, {"X": 3}, {"X": 4}]
        assert response["count"] == 3


def test_service_query_limit():
    with QueryService(make_engine(), workers=1) as service:
        sid = service.open_session()
        response = service.handle(
            sid, {"op": "query", "goal": "path(X, Y)", "limit": 2}
        )
        assert response["count"] == 2


def test_service_update_is_visible_to_other_sessions():
    with QueryService(make_engine(), workers=2) as service:
        writer = service.open_session()
        reader = service.open_session()
        assert service.handle(
            writer, {"op": "update", "goal": "assertz(d(7))"}
        )["ok"]
        response = service.handle(reader, {"op": "query", "goal": "d(X)"})
        assert response["answers"] == [{"X": 7}]


def test_service_assert_and_consult():
    with QueryService(make_engine(), workers=1) as service:
        sid = service.open_session()
        assert service.handle(sid, {"op": "assert", "clause": "d(1)."})["ok"]
        assert service.handle(
            sid, {"op": "consult", "text": "d(2). d(3)."}
        )["ok"]
        response = service.handle(sid, {"op": "query", "goal": "d(X)"})
        assert response["count"] == 3


def test_service_local_predicate_stays_private():
    with QueryService(make_engine(), workers=2) as service:
        a = service.open_session()
        b = service.open_session()
        response = service.handle(
            a, {"op": "local", "name": "scratch", "arity": 1}
        )
        assert response["ok"] and not response["shared_tables"]
        assert service.handle(
            a, {"op": "update", "goal": "assertz(scratch(1))"}
        )["ok"]
        assert service.handle(
            a, {"op": "query", "goal": "scratch(X)"}
        )["count"] == 1
        other = service.handle(b, {"op": "query", "goal": "scratch(X)"})
        assert not other["ok"]  # undefined for everyone else


def test_service_error_response_shape():
    with QueryService(make_engine(), workers=1) as service:
        sid = service.open_session()
        response = service.handle(sid, {"op": "query", "goal": "nope(X)"})
        assert response == {
            "ok": False,
            "error": "repro_error",
            "message": response["message"],
        }
        assert "nope/1" in response["message"]
        assert service.handle(sid, {"op": "frobnicate"})["error"] == "unknown_op"
        missing = service.handle(sid, {"op": "update"})  # no "goal" field
        assert missing["error"] == "bad_request"
        assert "'goal'" in missing["message"]


def test_service_statistics_metrics_sessions_ping():
    with QueryService(make_engine(), workers=1) as service:
        sid = service.open_session()
        service.handle(sid, {"op": "query", "goal": "path(1, X)"})
        stats = service.handle(sid, {"op": "statistics"})
        assert stats["ok"] and "subgoal_misses" in stats["statistics"]
        metrics = service.handle(sid, {"op": "metrics"})
        assert metrics["snapshot"]["counters"]["queries"] >= 1
        sessions = service.handle(sid, {"op": "sessions"})
        assert any(row["sid"] == sid for row in sessions["sessions"])
        assert service.handle(sid, {"op": "ping"})["pong"]


def test_service_close_op_removes_session():
    service = QueryService(make_engine(), workers=1)
    sid = service.open_session()
    assert service.handle(sid, {"op": "close"})["closed"] == sid
    response = service.handle(sid, {"op": "ping"})
    assert response["error"] == "no_session"
    service.close()


# ---------------------------------------------------------------------------
# Admission control and shutdown
# ---------------------------------------------------------------------------

SLOW_PROGRAM = """
mklist(0, []) :- !.
mklist(N, [N|T]) :- M is N - 1, mklist(M, T).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
slow :- mklist(120, L), nrev(L, _).
"""


def test_service_rejects_past_max_pending():
    engine = Engine()
    engine.consult_string(SLOW_PROGRAM)
    service = QueryService(engine, workers=1, max_pending=1, session_cap=1)
    a = service.open_session()
    b = service.open_session()
    slow = service.submit(a, {"op": "query", "goal": "slow"})
    rejected = service.submit(b, {"op": "ping"})
    response = rejected.result()
    assert response["error"] == "overloaded"
    assert slow.result()["ok"]
    assert service.handle(b, {"op": "ping"})["ok"]  # slot freed
    service.close()


def test_service_per_session_cap():
    engine = Engine()
    engine.consult_string(SLOW_PROGRAM)
    service = QueryService(engine, workers=1, max_pending=8, session_cap=1)
    sid = service.open_session()
    slow = service.submit(sid, {"op": "query", "goal": "slow"})
    rejected = service.submit(sid, {"op": "ping"}).result()
    assert rejected["error"] == "overloaded"
    assert "session" in rejected["message"]
    assert slow.result()["ok"]
    service.close()


def test_service_graceful_close_drains_accepted_work():
    engine = Engine()
    engine.consult_string(SLOW_PROGRAM)
    service = QueryService(engine, workers=2)
    sid = service.open_session()
    futures = [
        service.submit(sid, {"op": "query", "goal": "slow"})
        for _ in range(3)
    ]
    service.close(wait=True)
    done = [f.result() for f in futures]
    assert all(r["ok"] or r["error"] == "overloaded" for r in done)
    assert any(r["ok"] for r in done)
    after = service.submit(sid, {"op": "ping"}).result()
    assert after["error"] in ("closed", "no_session")


def test_default_workers_env(monkeypatch):
    monkeypatch.setenv("REPRO_SERVER_WORKERS", "3")
    assert default_workers() == 3
    monkeypatch.setenv("REPRO_SERVER_WORKERS", "0")
    with pytest.raises(ValueError):
        default_workers()
    monkeypatch.delenv("REPRO_SERVER_WORKERS")
    assert default_workers() >= 1


# ---------------------------------------------------------------------------
# Serial equivalence: one worker == serial engine
# ---------------------------------------------------------------------------

def test_single_worker_service_matches_serial_engine():
    goals = ["path(1, X)", "path(X, Y)", "path(2, X)", "d(X)", "path(3, X)"]
    serial = make_engine()
    serial.consult_string("d(5). d(6).")
    expected = [serial.query(goal) for goal in goals]

    engine = make_engine()
    engine.consult_string("d(5). d(6).")
    with QueryService(engine, workers=1) as service:
        sids = [service.open_session() for _ in range(4)]
        responses = []
        for i, goal in enumerate(goals):
            responses.append(
                service.handle(sids[i % 4], {"op": "query", "goal": goal})
            )
    for response, answers in zip(responses, expected):
        assert response["ok"]
        assert response["answers"] == answers


# ---------------------------------------------------------------------------
# TCP front door
# ---------------------------------------------------------------------------

def tcp_client(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")
    return sock, stream


def test_tcp_round_trip():
    with serve_tcp(make_engine(), workers=2) as server:
        sock, stream = tcp_client(server.port)
        hello = json.loads(stream.readline())
        assert hello["ok"] and hello["hello"] == "repro"
        stream.write("path(1, X)\n")
        stream.flush()
        response = json.loads(stream.readline())
        assert response["answers"] == [{"X": 2}, {"X": 3}, {"X": 4}]
        stream.write('{"op": "close"}\n')
        stream.flush()
        assert json.loads(stream.readline())["ok"]
        sock.close()


def test_tcp_many_clients_share_tables():
    engine = make_engine()
    with serve_tcp(engine, workers=4) as server:
        results = []
        errors = []

        def client():
            try:
                sock, stream = tcp_client(server.port)
                stream.readline()  # hello
                stream.write("path(1, X)\n")
                stream.flush()
                results.append(json.loads(stream.readline())["count"])
                sock.close()
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert results == [3] * 8
    # at least one of the eight served from another session's table
    assert engine.kb.shared_hit_ratio() > 0


def test_tcp_bad_request_line():
    with serve_tcp(make_engine(), workers=1) as server:
        sock, stream = tcp_client(server.port)
        stream.readline()
        stream.write('{"no_op": 1}\n')
        stream.flush()
        response = json.loads(stream.readline())
        assert response["error"] == "bad_request"
        sock.close()


# ---------------------------------------------------------------------------
# asyncio front door
# ---------------------------------------------------------------------------

def test_async_round_trip():
    async def scenario():
        server = await serve_async(make_engine(), workers=2)
        try:
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            hello = json.loads(await reader.readline())
            assert hello["ok"]
            writer.write(b'{"op": "query", "goal": "path(1, X)"}\n')
            await writer.drain()
            response = json.loads(await reader.readline())
            assert response["count"] == 3
            writer.write(b'{"op": "close"}\n')
            await writer.drain()
            assert json.loads(await reader.readline())["ok"]
            writer.close()
        finally:
            await server.close()

    asyncio.run(scenario())


def test_async_concurrent_connections():
    async def scenario():
        server = await serve_async(make_engine(), workers=4)

        async def client():
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            await reader.readline()
            writer.write(b"path(X, Y)\n")
            await writer.drain()
            response = json.loads(await reader.readline())
            writer.close()
            return response["count"]

        try:
            counts = await asyncio.gather(*[client() for _ in range(6)])
            assert counts == [6] * 6
        finally:
            await server.close()

    asyncio.run(scenario())
