"""Tests for the relational store: pages, buffer, locks, WAL, executor."""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError, TransactionError
from repro.relstore import BufferPool, HeapFile, LockManager, LockMode, Page, RelStore
from repro.relstore.btree import BPlusTree
from repro.relstore.plans import Filter, Project, SeqScan, evaluate_expr
from repro.relstore.rowcodec import decode_row, encode_row
from repro.relstore.wire import decode_rows, encode_rows, roundtrip


class TestRowCodec:
    def test_roundtrip_types(self):
        row = (42, -7, 3.25, "hello", "")
        assert decode_row(encode_row(row)) == row

    def test_unicode(self):
        row = ("naïve Σ",)
        assert decode_row(encode_row(row)) == row

    def test_unsupported_value(self):
        with pytest.raises(StorageError):
            encode_row(([1, 2],))

    @given(
        st.tuples(
            st.integers(-(2**40), 2**40),
            st.text(max_size=20),
            st.floats(allow_nan=False, allow_infinity=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_prop_roundtrip(self, row):
        assert decode_row(encode_row(row)) == row


class TestPages:
    def test_insert_and_materialize(self):
        page = Page(0)
        slot = page.insert((1, "a"))
        assert page.get_row(slot) == (1, "a")
        assert page.dirty

    def test_full_page_rejects(self):
        from repro.relstore.pages import ROWS_PER_PAGE

        page = Page(0)
        for i in range(ROWS_PER_PAGE):
            page.insert((i,))
        with pytest.raises(StorageError):
            page.insert((99,))

    def test_page_serialization_roundtrip(self):
        page = Page(3)
        page.insert((1, "x"))
        page.insert((2, "y"))
        restored = Page.deserialize(3, page.serialize())
        assert restored.all_rows() == [(1, "x"), (2, "y")]

    def test_heap_file_on_disk(self):
        path = tempfile.mktemp(suffix=".heap")
        try:
            heap = HeapFile(path)
            page = heap.append_page()
            page.insert((5, "v"))
            heap.write_page(page)
            heap2 = HeapFile(path)
            assert heap2.page_count == 1
            assert heap2.read_page(0).get_row(0) == (5, "v")
        finally:
            os.unlink(path)

    def test_out_of_range_page(self):
        heap = HeapFile()
        with pytest.raises(StorageError):
            heap.read_page(0)


class TestBufferPool:
    def test_hit_miss_accounting(self):
        heap = HeapFile()
        pool = BufferPool(heap, capacity=2)
        pool.new_page()
        pool.fetch(0)
        assert pool.hits == 1 and pool.misses == 0

    def test_lru_eviction_writes_dirty(self):
        heap = HeapFile()
        pool = BufferPool(heap, capacity=2)
        p0 = pool.new_page()
        p0.insert((1,))
        pool.new_page()
        pool.new_page()  # evicts page 0 (dirty -> written back)
        assert pool.evictions >= 1
        assert pool.fetch(0).get_row(0) == (1,)


class TestBPlusTree:
    def test_search_insert(self):
        tree = BPlusTree()
        for key in range(200):
            tree.insert(key, (0, key))
        assert tree.search(123) == [(0, 123)]
        assert tree.search(999) == []
        assert tree.height > 1  # actually split

    def test_duplicate_keys_accumulate(self):
        tree = BPlusTree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        assert tree.search(5) == ["a", "b"]

    def test_range_scan(self):
        tree = BPlusTree()
        for key in range(0, 100, 2):
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(10, 20)]
        assert got == [10, 12, 14, 16, 18, 20]

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_prop_search_finds_all_inserted(self, keys):
        tree = BPlusTree()
        for i, key in enumerate(keys):
            tree.insert(key, i)
        for i, key in enumerate(keys):
            assert i in tree.search(key)

    @given(st.lists(st.integers(0, 500), min_size=1, max_size=200, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_prop_range_scan_sorted_complete(self, keys):
        tree = BPlusTree()
        for key in keys:
            tree.insert(key, key)
        got = [k for k, _ in tree.range_scan(min(keys), max(keys))]
        assert got == sorted(keys)


class TestLocks:
    def test_shared_locks_compatible(self):
        store = RelStore()
        store.create_table("t", 1)
        t1 = store.transaction()
        t2 = store.transaction()
        store.locks.acquire(t1, ("t", 0), LockMode.SHARED)
        store.locks.acquire(t2, ("t", 0), LockMode.SHARED)
        store.commit(t1)
        store.commit(t2)

    def test_exclusive_conflicts(self):
        store = RelStore()
        store.create_table("t", 1)
        t1 = store.transaction()
        t2 = store.transaction()
        store.locks.acquire(t1, ("t", 0), LockMode.EXCLUSIVE)
        with pytest.raises(TransactionError):
            store.locks.acquire(t2, ("t", 0), LockMode.SHARED)
        store.commit(t1)
        store.abort(t2)

    def test_two_phase_violation(self):
        store = RelStore()
        store.create_table("t", 1)
        txn = store.transaction()
        store.locks.acquire(txn, ("t", 0), LockMode.SHARED)
        store.commit(txn)  # releases
        with pytest.raises(TransactionError):
            store.locks.acquire(txn, ("t", 1), LockMode.SHARED)


class TestTransactions:
    def test_insert_select(self):
        store = RelStore()
        store.create_table("t", 2)
        with store.transaction() as txn:
            store.insert(txn, "t", (1, "a"))
            store.insert(txn, "t", (2, "b"))
        with store.transaction() as txn:
            assert store.select(txn, "t", 0, 2) == [(2, "b")]

    def test_operation_outside_txn_rejected(self):
        store = RelStore()
        store.create_table("t", 1)
        txn = store.transaction()
        store.commit(txn)
        with pytest.raises(TransactionError):
            store.insert(txn, "t", (1,))

    def test_arity_checked(self):
        store = RelStore()
        store.create_table("t", 2)
        with pytest.raises(StorageError):
            with store.transaction() as txn:
                store.insert(txn, "t", (1,))

    def test_abort_on_exception(self):
        store = RelStore()
        store.create_table("t", 1)
        with pytest.raises(ValueError):
            with store.transaction() as txn:
                store.insert(txn, "t", (1,))
                raise ValueError("boom")
        # the txn aborted; locks are free for others
        with store.transaction() as txn:
            store.insert(txn, "t", (2,))

    def test_recovery_replays_committed_only(self):
        store = RelStore()
        store.create_table("t", 1)
        with store.transaction() as txn:
            store.insert(txn, "t", (1,))
        doomed = store.transaction()
        store.insert(doomed, "t", (2,))
        store.abort(doomed)
        fresh = RelStore()
        fresh.create_table("t", 1)
        store.recover_into(fresh)
        with fresh.transaction() as txn:
            assert fresh.scan(txn, "t") == [(1,)]


class TestExecutor:
    def setup_method(self):
        self.store = RelStore()
        self.store.create_table("r", 2, index_on=0)
        self.store.create_table("s", 2, index_on=0)
        with self.store.transaction() as txn:
            for i in range(10):
                self.store.insert(txn, "r", (i, f"r{i}"))
                self.store.insert(txn, "s", (i % 5, f"s{i}"))

    def test_join_results(self):
        with self.store.transaction() as txn:
            rows = self.store.join(txn, "r", 0, "s", 0)
        assert len(rows) == 10  # keys 0..4 match twice each
        for row in rows:
            assert row[0] == row[2]

    def test_seq_scan_and_filter(self):
        with self.store.transaction() as txn:
            scan = SeqScan(self.store, txn, "r")
            filtered = Filter(scan, ("lt", ("col", 0), ("const", 3)))
            rows = list(filtered)
        assert sorted(r[0] for r in rows) == [0, 1, 2]

    def test_project(self):
        with self.store.transaction() as txn:
            scan = SeqScan(self.store, txn, "r")
            projected = Project(scan, [("col", 1)])
            rows = list(projected)
        assert ("r3",) in rows

    def test_expression_evaluation(self):
        row = (3, "x", 3)
        assert evaluate_expr(("eq", ("col", 0), ("col", 2)), row)
        assert not evaluate_expr(("lt", ("col", 0), ("const", 3)), row)
        assert evaluate_expr(
            ("and", ("le", ("col", 0), ("const", 3)),
             ("eq", ("col", 1), ("const", "x"))),
            row,
        )

    def test_wire_roundtrip(self):
        with self.store.transaction() as txn:
            rows = self.store.join(txn, "r", 0, "s", 0)
        assert roundtrip(rows) == rows

    def test_wire_packets_framed(self):
        rows = [(i, f"v{i}") for i in range(100)]
        packets = encode_rows(rows)
        assert len(packets) > 1  # framed into multiple packets
        assert decode_rows(packets) == rows

    def test_disk_backed_store(self):
        directory = tempfile.mkdtemp()
        store = RelStore(directory=directory)
        store.create_table("t", 2)
        with store.transaction() as txn:
            for i in range(100):
                store.insert(txn, "t", (i, f"v{i}"))
        with store.transaction() as txn:
            assert store.select(txn, "t", 0, 55) == [(55, "v55")]
        assert os.path.exists(os.path.join(directory, "t.heap"))
        assert os.path.exists(os.path.join(directory, "wal.log"))

    def test_nested_tuple_rows_round_trip_through_pages(self):
        # Frozen compound terms are nested tuples; the shared row codec
        # gives them an on-page form, so they survive the heap.
        store = RelStore()
        store.create_table("t", 2)
        row = (1, ("f", "a", (".", 2, "[]")))
        with store.transaction() as txn:
            store.insert(txn, "t", row)
        with store.transaction() as txn:
            assert store.scan(txn, "t") == [row]

    def test_drop_table(self):
        store = RelStore()
        store.create_table("t", 1)
        with store.transaction() as txn:
            store.insert(txn, "t", (1,))
        store.drop_table("t")
        with pytest.raises(StorageError):
            store.drop_table("t")
        store.create_table("t", 1)
        with store.transaction() as txn:
            assert store.scan(txn, "t") == []
