"""Tests for the byte-code compiler, emulator and object files."""

import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExistenceError, StorageError
from repro.lang import parse_term, parse_terms
from repro.terms import Var, deref
from repro.wam import (
    WamMachine,
    compile_predicate,
    compile_query_term,
    disassemble,
    load_object_file,
    save_object_file,
)
from repro.wam.compiler import compile_clause_code
from repro.wam.instructions import (
    CALL,
    GET_CONSTANT,
    GET_STRUCTURE,
    PROCEED,
    PUT_VALUE,
)


def run(machine, text):
    return machine.run_query(*compile_query_term(parse_term(text)))


def machine_for(name, arity, program_text):
    machine = WamMachine()
    machine.define(compile_predicate(name, arity, parse_terms(program_text)))
    return machine


class TestCompiler:
    def test_fact_code_shape(self):
        clause = compile_clause_code(parse_term("f(a, 1)").args, [])
        ops = [i[0] for i in clause.code]
        assert ops == [GET_CONSTANT, GET_CONSTANT, PROCEED]

    def test_rule_has_call(self):
        term = parse_term("p(X) :- q(X)")
        clause = compile_clause_code(
            (term.args[0].args[0],), [term.args[1]]
        )
        assert CALL in [i[0] for i in clause.code]

    def test_nested_structures_flattened(self):
        clause = compile_clause_code(parse_term("p(f(g(a)))").args, [])
        structure_ops = [
            i for i in clause.code if i[0] == GET_STRUCTURE
        ]
        assert len(structure_ops) == 2  # f/1 and the nested g/1

    def test_disassemble_readable(self):
        clause = compile_clause_code(parse_term("p(X, X)").args, [])
        listing = disassemble(clause.code)
        assert "get_variable" in listing and "get_value" in listing

    def test_switch_on_first_argument(self):
        pred = compile_predicate(
            "e", 2, parse_terms("e(a, 1). e(b, 2). e(a, 3). e(X, 0).")
        )
        from repro.index.hash_index import outer_symbol
        from repro.terms import mkatom

        candidates = list(pred.candidates(outer_symbol(mkatom("a"))))
        # two a-clauses plus the variable clause
        assert candidates == [0, 2, 3]
        assert list(pred.candidates(None)) == [0, 1, 2, 3]


class TestEmulator:
    def test_facts(self):
        m = machine_for("e", 2, "e(1, 2). e(2, 3).")
        assert run(m, "e(1, X)") == [{"X": 2}]
        assert run(m, "e(9, X)") == []

    def test_conjunction_and_backtracking(self):
        m = machine_for("n", 1, "n(1). n(2). n(3).")
        answers = run(m, "n(X), n(Y), X < Y")
        assert len(answers) == 3

    def test_recursion(self):
        m = WamMachine()
        m.define(compile_predicate("e", 2, parse_terms("e(1,2). e(2,3).")))
        m.define(
            compile_predicate(
                "p",
                2,
                parse_terms("p(X,Y) :- e(X,Y). p(X,Y) :- e(X,Z), p(Z,Y)."),
            )
        )
        assert sorted(a["Y"] for a in run(m, "p(1, Y)")) == [2, 3]

    def test_append_both_modes(self):
        m = machine_for(
            "app", 3, "app([],L,L). app([H|T],L,[H|R]) :- app(T,L,R)."
        )
        forward = run(m, "app([1,2],[3],R)")
        assert len(forward) == 1
        splits = run(m, "app(X, Y, [1,2,3])")
        assert len(splits) == 4

    def test_structure_building_in_body(self):
        m = machine_for("w", 2, "w(X, f(g(X), 2)).")
        answers = run(m, "w(7, R)")
        assert str(answers[0]["R"]) == "f(g(7),2)"

    def test_repeated_variables(self):
        m = machine_for("same", 2, "same(X, X).")
        assert run(m, "same(f(1), f(1))") == [{}]
        assert run(m, "same(f(1), f(2))") == []

    def test_arithmetic_builtins(self):
        m = machine_for("n", 1, "n(3). n(4).")
        answers = run(m, "n(X), Y is X * X, Y >= 10")
        assert [a["Y"] for a in answers] == [16]

    def test_unify_builtin(self):
        m = machine_for("n", 1, "n(1).")
        assert run(m, "n(X), X = 1") == [{"X": 1}]

    def test_undefined_predicate(self):
        m = WamMachine()
        with pytest.raises(ExistenceError):
            run(m, "ghost(1)")

    def test_trail_restored_after_run(self):
        m = machine_for("n", 1, "n(1). n(2).")
        run(m, "n(X)")
        assert len(m.trail) == 0

    def test_instruction_counter(self):
        m = machine_for("n", 1, "n(1).")
        before = m.instructions_executed
        run(m, "n(X)")
        assert m.instructions_executed > before


class TestObjectFiles:
    def test_roundtrip_rules(self):
        pred = compile_predicate(
            "p", 2, parse_terms("p(X,Y) :- q(X,Y). p(a,b).")
        )
        path = tempfile.mktemp(suffix=".xwam")
        try:
            save_object_file(path, [pred])
            loaded = load_object_file(path)[0]
            assert loaded.name == "p" and loaded.arity == 2
            m = WamMachine()
            m.define(loaded)
            m.define(compile_predicate("q", 2, parse_terms("q(1,2).")))
            assert run(m, "p(1, Y)") == [{"Y": 2}]
            assert run(m, "p(a, Y)")[0]["Y"].name == "b"
        finally:
            os.unlink(path)

    def test_fact_block_roundtrip(self):
        pred = compile_predicate(
            "e", 2, parse_terms("e(1, a). e(2, b). e(3, c).")
        )
        path = tempfile.mktemp(suffix=".xwam")
        try:
            save_object_file(path, [pred])
            loaded = load_object_file(path)[0]
            from repro.wam.objfile import FactClause

            assert all(isinstance(c, FactClause) for c in loaded.clauses)
            m = WamMachine()
            m.define(loaded)
            assert run(m, "e(2, X)")[0]["X"].name == "b"
            assert len(run(m, "e(X, Y)")) == 3
        finally:
            os.unlink(path)

    def test_fact_block_resaves(self):
        """A loaded fact block can be saved again (round-trip twice)."""
        pred = compile_predicate("e", 1, parse_terms("e(1). e(2)."))
        p1, p2 = tempfile.mktemp(), tempfile.mktemp()
        try:
            save_object_file(p1, [pred])
            loaded = load_object_file(p1)[0]
            save_object_file(p2, [loaded])
            again = load_object_file(p2)[0]
            m = WamMachine({("e", 1): again})
            assert len(run(m, "e(X)")) == 2
        finally:
            os.unlink(p1)
            os.unlink(p2)

    def test_bad_magic_rejected(self):
        path = tempfile.mktemp()
        try:
            with open(path, "wb") as handle:
                handle.write(b"NOTANOBJ")
            with pytest.raises(StorageError):
                load_object_file(path)
        finally:
            os.unlink(path)


class TestAgainstMainEngine:
    """The WAM backend and the template engine must agree."""

    PROGRAM = """
    e(1,2). e(2,3). e(3,4). e(2,5).
    p(X,Y) :- e(X,Y).
    p(X,Y) :- e(X,Z), p(Z,Y).
    """

    def test_path_answers_agree(self):
        from repro import Engine

        engine = Engine()
        engine.consult_string(self.PROGRAM)
        expected = sorted(s["Y"] for s in engine.query("p(1, Y)"))

        m = WamMachine()
        m.define(
            compile_predicate(
                "e", 2, parse_terms("e(1,2). e(2,3). e(3,4). e(2,5).")
            )
        )
        m.define(
            compile_predicate(
                "p",
                2,
                parse_terms(
                    "p(X,Y) :- e(X,Y). p(X,Y) :- e(X,Z), p(Z,Y)."
                ),
            )
        )
        got = sorted(a["Y"] for a in run(m, "p(1, Y)"))
        assert got == expected

    @given(
        st.lists(
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_prop_fact_queries_agree(self, edges):
        from repro import Engine

        engine = Engine(unknown="fail")
        engine.add_facts("e", edges)
        text = "\n".join(f"e({a},{b})." for a, b in edges)
        m = machine_for("e", 2, text)
        for probe in range(1, 6):
            expected = sorted(s["X"] for s in engine.query(f"e({probe}, X)"))
            got = sorted(a["X"] for a in run(m, f"e({probe}, X)"))
            assert got == expected
