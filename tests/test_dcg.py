"""Tests for definite clause grammar translation and phrase/2,3."""

import pytest

from repro import Engine
from repro.lang import parse_term, term_to_str
from repro.lang.dcg import is_dcg_rule, translate_dcg


class TestTranslation:
    def test_detects_dcg(self):
        assert is_dcg_rule(parse_term("s --> np, vp"))
        assert not is_dcg_rule(parse_term("s :- np, vp"))

    def test_nonterminal_gets_two_args(self):
        clause = translate_dcg(parse_term("s --> np, vp"))
        head = clause.args[0]
        assert head.name == "s" and len(head.args) == 2

    def test_arguments_preserved(self):
        clause = translate_dcg(parse_term("num(X) --> digit(X)"))
        head = clause.args[0]
        assert head.name == "num" and len(head.args) == 3

    def test_terminal_list_becomes_unification(self):
        clause = translate_dcg(parse_term("det --> [the]"))
        body = clause.args[1]
        assert body.name == "="

    def test_brace_goal_passes_through(self):
        clause = translate_dcg(parse_term("d(X) --> [X], {X > 0}"))
        text = term_to_str(clause)
        assert "X > 0" in text


GRAMMAR = """
s --> np, vp.
np --> det, noun.
vp --> verb, np.
vp --> verb.
det --> [the].
det --> [a].
noun --> [cat].
noun --> [dog].
verb --> [sees].
verb --> [chases].
"""


class TestGrammarExecution:
    @pytest.fixture
    def grammar(self):
        engine = Engine()
        engine.consult_string(GRAMMAR)
        return engine

    def test_recognize_sentence(self, grammar):
        assert grammar.has_solution(
            "phrase(s, [the, cat, sees, a, dog])"
        )

    def test_reject_bad_sentence(self, grammar):
        assert not grammar.has_solution("phrase(s, [cat, the, sees])")
        assert not grammar.has_solution("phrase(s, [the, cat])")

    def test_generate_sentences(self, grammar):
        sentences = grammar.query("phrase(s, S)")
        texts = [s["S"] for s in sentences]
        assert ["the", "cat", "sees"] in texts
        # np = 2 dets x 2 nouns = 4; vp = 2 verbs x (4 nps + bare) = 10
        assert len(texts) == 40

    def test_phrase_with_rest(self, grammar):
        sols = grammar.query("phrase(np, [the, dog, sees, a, cat], R)")
        assert sols[0]["R"] == ["sees", "a", "cat"]

    def test_arguments_thread_through(self):
        engine = Engine()
        engine.consult_string(
            """
            digits([D|T]) --> digit(D), digits(T).
            digits([D]) --> digit(D).
            digit(D) --> [D], { D >= 0'0, D =< 0'9 }.
            """
        )
        sols = engine.query('phrase(digits(L), "42")')
        assert sols and sols[0]["L"] == [52, 50]

    def test_disjunction_in_body(self):
        engine = Engine()
        engine.consult_string("ab --> [a] ; [b].")
        assert engine.has_solution("phrase(ab, [a])")
        assert engine.has_solution("phrase(ab, [b])")
        assert not engine.has_solution("phrase(ab, [c])")

    def test_recursive_grammar_counts(self):
        engine = Engine()
        engine.consult_string(
            """
            as(0) --> [].
            as(N) --> [a], as(M), { N is M + 1 }.
            """
        )
        sols = engine.query("phrase(as(N), [a, a, a])")
        assert sols == [{"N": 3}]

    def test_negative_lookahead(self):
        engine = Engine()
        engine.consult_string(
            """
            word([C|T]) --> letter(C), word(T).
            word([C]) --> letter(C), \\+ letter(_).
            letter(C) --> [C], { C >= 0'a, C =< 0'z }.
            """
        )
        # \+ letter(_) succeeds at end of input or before a non-letter
        assert engine.has_solution('phrase(word(W), "abc")')
