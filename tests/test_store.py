"""The unified relation-storage layer (repro.store).

One suite exercises the TupleStore protocol over both backends — the
tuned in-memory store and the paged relstore adapter — plus the shared
ground-term ↔ row codec and the store-level engine statistics.
"""

import pytest

from repro import Engine
from repro.errors import StorageError
from repro.store import (
    MAX_INDEX_COLUMNS,
    MAX_TERM_DEPTH,
    FreezeError,
    MemoryTupleStore,
    backend_name,
    decode_row,
    encode_row,
    freeze_term,
    make_store,
    parse_field,
    thaw_value,
)
from repro.terms import Atom, Struct, Var, mkatom

BACKENDS = ["memory", "relstore", "disk"]


@pytest.fixture(params=BACKENDS)
def store(request):
    return make_store("t", 3, backend=request.param)


# --------------------------------------------------------------------------
# protocol: insertion, dedup, ordering
# --------------------------------------------------------------------------

def test_add_dedups_and_reports_newness(store):
    assert store.add((1, 2, 3)) is True
    assert store.add((1, 2, 3)) is False
    assert store.add((1, 2, 4)) is True
    assert len(store) == 2
    assert (1, 2, 3) in store
    assert (9, 9, 9) not in store


def test_iteration_preserves_insertion_order(store):
    rows = [(3, "c", 1), (1, "a", 2), (2, "b", 3), (1, "a", 2)]
    for row in rows:
        store.add(row)
    assert list(store) == [(3, "c", 1), (1, "a", 2), (2, "b", 3)]


def test_add_many_counts_only_new_rows(store):
    store.add((1, 1, 1))
    added = store.add_many([(1, 1, 1), (2, 2, 2), (2, 2, 2), (3, 3, 3)])
    assert added == 2
    assert len(store) == 3


def test_remove_updates_membership_and_probes(store):
    store.add_many([(1, "a", 1), (1, "b", 2), (2, "a", 3)])
    store.ensure_index((0,))
    assert store.remove((1, "a", 1)) is True
    assert store.remove((1, "a", 1)) is False
    assert (1, "a", 1) not in store
    assert list(store.probe((0,), (1,))) == [(1, "b", 2)]


# --------------------------------------------------------------------------
# protocol: indexes and probes
# --------------------------------------------------------------------------

def test_single_column_probe(store):
    store.add_many([(1, "a", 10), (2, "b", 20), (1, "c", 30)])
    store.ensure_index((0,))
    assert sorted(store.probe((0,), (1,))) == [(1, "a", 10), (1, "c", 30)]
    assert list(store.probe((0,), (9,))) == []


def test_joint_column_probe(store):
    store.add_many([(1, "a", 10), (1, "a", 20), (1, "b", 10), (2, "a", 10)])
    store.ensure_index((0, 1))
    assert sorted(store.probe((0, 1), (1, "a"))) == [(1, "a", 10), (1, "a", 20)]


def test_three_column_probe(store):
    store.add_many([(1, "a", 10), (1, "a", 20)])
    store.ensure_index((0, 1, 2))
    assert list(store.probe((0, 1, 2), (1, "a", 20))) == [(1, "a", 20)]


def test_multiple_simultaneous_indexes(store):
    store.add_many([(1, "a", 10), (2, "a", 20), (1, "b", 20)])
    store.ensure_index((0,))
    store.ensure_index((1,))
    store.ensure_index((0, 1))
    assert sorted(store.probe((1,), ("a",))) == [(1, "a", 10), (2, "a", 20)]
    assert list(store.probe((0, 1), (1, "b"))) == [(1, "b", 20)]
    store.add((2, "b", 30))
    # Every installed index sees the later insert.
    assert (2, "b", 30) in list(store.probe((0,), (2,)))
    assert (2, "b", 30) in list(store.probe((1,), ("b",)))
    assert list(store.probe((0, 1), (2, "b"))) == [(2, "b", 30)]


def test_empty_positions_probe_is_a_full_scan(store):
    store.add_many([(1, 1, 1), (2, 2, 2)])
    assert list(store.probe((), ())) == [(1, 1, 1), (2, 2, 2)]


def test_ensure_index_enforces_column_cap(store):
    with pytest.raises(ValueError):
        store.ensure_index(())
    with pytest.raises(ValueError):
        store.ensure_index((0, 1, 2, 3))
    with pytest.raises(ValueError):
        store.ensure_index((0, 0))
    assert MAX_INDEX_COLUMNS == 3


# --------------------------------------------------------------------------
# protocol: clear, generation stamps, stats, copy
# --------------------------------------------------------------------------

def test_clear_empties_in_place_and_keeps_indexes_serviceable(store):
    store.add_many([(1, "a", 1), (2, "b", 2)])
    store.ensure_index((0,))
    store.clear()
    assert len(store) == 0
    assert list(store) == []
    store.add((3, "c", 3))
    assert list(store.probe((0,), (3,))) == [(3, "c", 3)]


def test_clear_preserves_memory_container_identity():
    # Compiled join plans capture the live index dicts, so clear()
    # must empty them rather than replace them.
    store = MemoryTupleStore("t", 2)
    store.add_many([(1, 2), (3, 4)])
    index = store.index_for((0,))
    rows, members = store.rows, store.tuples
    store.clear()
    assert store.rows is rows and store.tuples is members
    assert store.indexes[(0,)] is index and index == {}
    store.add((5, 6))
    assert index == {(5,): [(5, 6)]}


def test_generation_bumps_only_on_destructive_ops(store):
    start = store.generation
    store.add((1, 1, 1))
    store.add_many([(2, 2, 2)])
    assert store.generation == start
    store.remove((1, 1, 1))
    assert store.generation == start + 1
    store.clear()
    assert store.generation == start + 2


def test_stats_count_probes_scans_and_builds(store):
    store.add_many([(1, "a", 1), (2, "b", 2)])
    # Column 1 is never pre-indexed by any backend (the relstore
    # adapter builds a leading-column index at construction).
    store.ensure_index((1,))
    builds = store.stats.index_builds
    assert builds >= 1
    store.probe((1,), ("a",))
    store.probe((1,), ("b",))
    store.probe((), ())
    assert store.stats.probes == 2
    assert store.stats.scans == 1
    store.ensure_index((1,))
    assert store.stats.index_builds == builds


def test_copy_is_fully_independent(store):
    store.add_many([(1, "a", 1), (2, "b", 2)])
    store.ensure_index((0,))
    clone = store.copy()
    clone.add((3, "c", 3))
    store.remove((1, "a", 1))
    assert list(store) == [(2, "b", 2)]
    assert list(clone) == [(1, "a", 1), (2, "b", 2), (3, "c", 3)]
    assert list(store.probe((0,), (1,))) == []
    assert list(clone.probe((0,), (1,))) == [(1, "a", 1)]


def test_add_keyed_dedups_by_caller_key():
    # The SLG answer store keys membership by canonical answer key so
    # 1 and 1.0 (equal as Python values) stay distinct answers.
    store = MemoryTupleStore("ans", None)
    assert store.add_keyed("k-int", (1,)) is True
    assert store.add_keyed("k-float", (1.0,)) is True
    assert store.add_keyed("k-int", (1,)) is False
    assert store.rows == [(1,), (1.0,)]


# --------------------------------------------------------------------------
# make_store / backend selection
# --------------------------------------------------------------------------

def test_make_store_rejects_unknown_backend():
    with pytest.raises(ValueError):
        make_store("t", 2, backend="papyrus")


def test_backend_name_honours_environment(monkeypatch):
    monkeypatch.delenv("REPRO_TUPLESTORE", raising=False)
    assert backend_name() == "memory"
    monkeypatch.setenv("REPRO_TUPLESTORE", "relstore")
    assert backend_name() == "relstore"
    assert type(make_store("t", 1)).__name__ == "RelStoreTupleStore"


# --------------------------------------------------------------------------
# the shared codec
# --------------------------------------------------------------------------

def test_freeze_term_value_domain():
    assert freeze_term(mkatom("a")) == "a"
    assert freeze_term(7) == 7
    assert freeze_term(2.5) == 2.5
    assert freeze_term(Struct("f", (mkatom("a"), 1))) == ("f", "a", 1)
    # [1, 2] as ./2 cells
    lst = Struct(".", (1, Struct(".", (2, mkatom("[]")))))
    assert freeze_term(lst) == (".", 1, (".", 2, "[]"))


def test_freeze_term_follows_bound_variables():
    var = Var()
    var.ref = Struct("f", (3,))
    assert freeze_term(var) == ("f", 3)


def test_freeze_term_rejects_unbound_and_deep():
    with pytest.raises(FreezeError):
        freeze_term(Var())
    deep = mkatom("x")
    for _ in range(MAX_TERM_DEPTH + 1):
        deep = Struct("f", (deep,))
    with pytest.raises(FreezeError):
        freeze_term(deep)


def test_thaw_inverts_freeze():
    term = Struct("f", (mkatom("a"), 1, Struct("g", (2.5,))))
    frozen = freeze_term(term)
    thawed = thaw_value(frozen)
    assert isinstance(thawed, Struct)
    assert freeze_term(thawed) == frozen
    assert thaw_value("a") == Atom("a")
    assert thaw_value(7) == 7


def test_parse_field_shapes():
    assert parse_field("42") == 42
    assert parse_field("-3") == -3
    assert parse_field("2.5") == 2.5
    assert parse_field("-1e3") == -1000.0
    assert parse_field(".5") == 0.5
    assert parse_field("abc") == "abc"
    assert parse_field("12ab") == "12ab"
    assert parse_field("-") == "-"
    assert parse_field("") == ""


def test_row_codec_round_trips_nested_tuples():
    row = (1, 2.5, "atom", ("f", "a", (".", 1, "[]")))
    assert decode_row(encode_row(row)) == row


def test_row_codec_rejects_bools_and_opaque_values():
    with pytest.raises(StorageError):
        encode_row((True,))
    with pytest.raises(StorageError):
        encode_row((object(),))


# --------------------------------------------------------------------------
# engine-level store statistics
# --------------------------------------------------------------------------

def test_engine_statistics_expose_store_counters():
    engine = Engine()
    engine.consult_string(
        ":- table path/2.\n"
        "edge(1, 2). edge(2, 3).\n"
        "path(X, Y) :- edge(X, Y).\n"
        "path(X, Y) :- path(X, Z), edge(Z, Y).\n"
    )
    assert engine.count("path(1, X)") == 2
    stats = engine.statistics()
    for key in ("store_count", "store_rows", "store_probes",
                "store_scans", "store_index_builds"):
        assert isinstance(stats[key], int)
    assert stats["store_count"] > 0
    assert stats["store_rows"] > 0
